//! Cross-crate property tests: invariants that hold across subsystem
//! boundaries for arbitrary seeds and scales.

use hetsyslog::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every frame the stream generator emits parses back losslessly, for
    /// any seed and rate.
    #[test]
    fn stream_frames_always_parse(seed in 0u64..500, rate in 10.0f64..1000.0) {
        let stream = StreamGenerator::new(StreamConfig {
            seed,
            base_rate: rate,
            ..StreamConfig::default()
        });
        for tm in stream.take(40) {
            let frame = tm.to_frame();
            let parsed = parse(&frame).expect("stream frame must parse");
            prop_assert_eq!(parsed.hostname.as_deref(), Some(tm.message.node.as_str()));
            prop_assert_eq!(parsed.message, tm.message.text);
        }
    }

    /// The corpus generator keeps Table 2's dominance ordering for every
    /// seed: Unimportant > Thermal > every other class.
    #[test]
    fn corpus_imbalance_shape(seed in 0u64..200) {
        let corpus = generate_corpus(&CorpusConfig {
            scale: 0.004,
            seed,
            min_per_class: 4,
        });
        let count = |c: Category| corpus.iter().filter(|m| m.category == c).count();
        let unimportant = count(Category::Unimportant);
        let thermal = count(Category::ThermalIssue);
        prop_assert!(unimportant > thermal);
        for c in [
            Category::HardwareIssue,
            Category::IntrusionDetection,
            Category::MemoryIssue,
            Category::SshConnection,
            Category::SlurmIssue,
            Category::UsbDevice,
        ] {
            prop_assert!(thermal > count(c), "thermal must dominate {c}");
        }
    }

    /// Bucket assignment of a corpus then re-finding every message never
    /// misses: everything is within threshold of its own bucket.
    #[test]
    fn bucket_store_total_coverage(seed in 0u64..100) {
        let corpus = generate_corpus(&CorpusConfig {
            scale: 0.001,
            seed,
            min_per_class: 3,
        });
        let mut store = BucketStore::new(BucketingConfig::default());
        for m in &corpus {
            store.assign(&m.text);
        }
        for m in &corpus {
            prop_assert!(store.find(&m.text).is_some(), "message lost: {}", m.text);
        }
    }

    /// Training on any seeded corpus slice yields a classifier whose
    /// training accuracy beats the majority-class baseline.
    #[test]
    fn classifier_beats_majority_baseline(seed in 0u64..50) {
        let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
            scale: 0.002,
            seed,
            min_per_class: 6,
        }));
        let clf = TraditionalPipeline::train(
            FeatureConfig::default(),
            Box::new(ComplementNaiveBayes::new(Default::default())),
            &corpus,
        );
        let texts: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
        let preds = clf.classify_batch(&texts);
        let correct = preds
            .iter()
            .zip(&corpus)
            .filter(|(p, (_, c))| p.category == *c)
            .count();
        let mut class_counts = [0usize; 8];
        for (_, c) in &corpus {
            class_counts[c.index()] += 1;
        }
        let majority = *class_counts.iter().max().unwrap();
        prop_assert!(
            correct > majority,
            "classifier ({correct}) no better than majority vote ({majority})"
        );
    }

    /// Micro-batch partition invariance: splitting a frame stream into
    /// batches of any size and feeding each batch through
    /// `MonitorService::ingest_frames` yields outcome-for-outcome the same
    /// result as the scalar parse-then-`ingest` path — for batch sizes 1,
    /// 7 and 64, with parse failures and prefiltered noise in the mix.
    #[test]
    fn batched_ingest_partition_invariant(seed in 0u64..40, n in 30usize..150) {
        let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
            scale: 0.001,
            seed: 42,
            min_per_class: 4,
        }));
        let clf = std::sync::Arc::new(TraditionalPipeline::train(
            FeatureConfig::default(),
            Box::new(ComplementNaiveBayes::new(Default::default())),
            &corpus,
        ));

        // Frame stream with an unparseable (empty) frame every 11th slot.
        let stream = StreamGenerator::new(StreamConfig { seed, ..StreamConfig::default() });
        let frames: Vec<String> = stream
            .take(n)
            .enumerate()
            .map(|(i, tm)| if i % 11 == 10 { String::new() } else { tm.to_frame() })
            .collect();

        // Scalar reference: parse each frame, then per-message ingest.
        // Project each outcome to (message text, category) — `None`
        // category covers both prefiltered and unparseable frames, which
        // are distinguished by the text being `None`.
        let scalar_svc = MonitorService::new(clf.clone())
            .with_prefilter(NoiseFilter::train(3, &corpus));
        let scalar: Vec<(Option<String>, Option<Category>)> = frames
            .iter()
            .map(|f| match parse(f) {
                Ok(msg) => {
                    let category = scalar_svc.ingest(&msg.message).map(|p| p.category);
                    (Some(msg.message), category)
                }
                Err(_) => (None, None),
            })
            .collect();

        for batch in [1usize, 7, 64] {
            let svc = MonitorService::new(clf.clone())
                .with_prefilter(NoiseFilter::train(3, &corpus));
            let mut outcomes = Vec::with_capacity(frames.len());
            for chunk in frames.chunks(batch) {
                let texts: Vec<&str> = chunk.iter().map(|f| f.as_str()).collect();
                outcomes.extend(svc.ingest_frames(&texts));
            }
            prop_assert_eq!(outcomes.len(), frames.len());
            for (outcome, expected) in outcomes.into_iter().zip(&scalar) {
                let got = match outcome {
                    FrameOutcome::Classified { message, prediction } => {
                        (Some(message.message), Some(prediction.category))
                    }
                    FrameOutcome::Prefiltered { message } => (Some(message.message), None),
                    FrameOutcome::ParseError => (None, None),
                };
                prop_assert_eq!(&got, expected, "batch size {} diverged", batch);
            }
            // The per-category counters agree with the scalar service too.
            prop_assert_eq!(svc.stats().per_category, scalar_svc.stats().per_category);
            prop_assert_eq!(svc.stats().prefiltered, scalar_svc.stats().prefiltered);
        }
    }

    /// The monitor service's counters always reconcile: total = prefiltered
    /// + classified.
    #[test]
    fn monitor_counters_reconcile(seed in 0u64..50, n in 20usize..120) {
        let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
            scale: 0.001,
            seed: 42,
            min_per_class: 4,
        }));
        let clf = std::sync::Arc::new(TraditionalPipeline::train(
            FeatureConfig::default(),
            Box::new(ComplementNaiveBayes::new(Default::default())),
            &corpus,
        ));
        let service = MonitorService::new(clf).with_prefilter(NoiseFilter::train(3, &corpus));
        let stream = StreamGenerator::new(StreamConfig { seed, ..StreamConfig::default() });
        for tm in stream.take(n) {
            let _ = service.ingest(&tm.message.text);
        }
        let stats = service.stats();
        prop_assert_eq!(stats.total, n as u64);
        let classified: u64 = stats.per_category.iter().sum();
        prop_assert_eq!(stats.prefiltered + classified, n as u64);
    }
}
