//! Shape assertions for every reproduced table/figure, at test-friendly
//! scale. These are the claims EXPERIMENTS.md makes, frozen as CI.

use hetsyslog::prelude::*;

fn corpus() -> Vec<(String, Category)> {
    datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 14,
    }))
}

/// Table 1: each category's top TF-IDF tokens carry the paper's signature
/// vocabulary.
#[test]
fn table1_signature_tokens_reproduce() {
    let corpus = corpus();
    let mut pipeline = FeaturePipeline::new(FeatureConfig::default());
    let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
    pipeline.fit(&messages);
    let t1 = pipeline.table1(&corpus, 5);

    let tokens_of = |c: Category| -> Vec<String> {
        t1[c.index()]
            .tokens
            .iter()
            .map(|(t, _)| t.clone())
            .collect()
    };
    let expect_any = |c: Category, candidates: &[&str]| {
        let got = tokens_of(c);
        assert!(
            candidates
                .iter()
                .filter(|w| got.contains(&w.to_string()))
                .count()
                >= 2,
            "{c}: top tokens {got:?} missing paper signature {candidates:?}"
        );
    };
    // Paper Table 1 signatures (lemmatized on our side).
    expect_any(
        Category::ThermalIssue,
        &[
            "temperature",
            "throttle",
            "sensor",
            "cpu",
            "processor",
            "threshold",
        ],
    );
    expect_any(
        Category::SshConnection,
        &["close", "preauth", "connection", "port", "user"],
    );
    expect_any(
        Category::UsbDevice,
        &["usb", "device", "hub", "number", "new"],
    );
    expect_any(
        Category::MemoryIssue,
        &["size", "real_memory", "low", "memory", "node"],
    );
    expect_any(
        Category::SlurmIssue,
        &["version", "update", "slurm", "please", "node"],
    );
    expect_any(
        Category::IntrusionDetection,
        &["root", "session", "user", "start", "boot"],
    );
    expect_any(
        Category::HardwareIssue,
        &["timestamp", "sync", "clock", "system", "event"],
    );
}

/// Table 2: the scaled class balance is exact and Slurm-floor protected.
#[test]
fn table2_distribution_reproduces() {
    let config = CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 14,
    };
    let corpus = generate_corpus(&config);
    for &c in &Category::ALL {
        let count = corpus.iter().filter(|m| m.category == c).count();
        let expected = ((c.paper_count() as f64 * 0.01).round() as usize).max(14);
        assert_eq!(count, expected, "{c}");
    }
}

/// Table 3: modeled LLM costs keep the paper's ordering and magnitudes.
#[test]
fn table3_latency_calibration_reproduces() {
    use llmsim::latency::{
        LatencyModel, PAPER_GENERATED_TOKENS, PAPER_PROMPT_TOKENS, ZEROSHOT_LABELS,
        ZEROSHOT_PROMPT_TOKENS,
    };
    let f7 =
        LatencyModel::falcon_7b().inference_seconds(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
    let f40 =
        LatencyModel::falcon_40b().inference_seconds(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
    let bart =
        LatencyModel::bart_large_mnli().inference_seconds(ZEROSHOT_PROMPT_TOKENS, ZEROSHOT_LABELS);
    // Paper: 0.639 / 2.184 / 0.13359 seconds.
    assert!((f7 - 0.639).abs() / 0.639 < 0.10, "falcon-7b {f7}");
    assert!((f40 - 2.184).abs() / 2.184 < 0.10, "falcon-40b {f40}");
    assert!((bart - 0.13359).abs() / 0.13359 < 0.10, "bart {bart}");
}

/// X1: drift fractures buckets but not TF-IDF.
#[test]
fn drift_shape_reproduces() {
    use hetsyslog::datagen::{DriftConfig, DriftModel};
    let corpus = corpus();
    let mut drift = DriftModel::new(DriftConfig::default());
    let drifted: Vec<(String, Category)> =
        corpus.iter().map(|(m, c)| (drift.mutate(m), *c)).collect();

    let bucket = BucketBaseline::train(7, &corpus);
    let tfidf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    );
    let acc = |clf: &dyn TextClassifier, data: &[(String, Category)]| {
        let texts: Vec<&str> = data.iter().map(|(m, _)| m.as_str()).collect();
        clf.classify_batch(&texts)
            .iter()
            .zip(data)
            .filter(|(p, (_, c))| p.category == *c)
            .count() as f64
            / data.len() as f64
    };
    let bucket_drop = acc(&bucket, &corpus) - acc(&bucket, &drifted);
    let tfidf_drop = acc(&tfidf, &corpus) - acc(&tfidf, &drifted);
    assert!(
        bucket_drop > tfidf_drop + 0.1,
        "bucketing must lose ≥10 points more than TF-IDF (bucket {bucket_drop:.3}, tfidf {tfidf_drop:.3})"
    );
    // The orphan queue — the paper's retraining burden — is substantial.
    let orphans = drifted
        .iter()
        .filter(|(m, _)| bucket.find(m).is_none())
        .count();
    assert!(orphans as f64 > 0.2 * drifted.len() as f64);
}

/// X2: the traditional end-to-end pipeline clears Darwin's message rate;
/// every modeled LLM misses it by orders of magnitude.
#[test]
fn throughput_shape_reproduces() {
    use std::sync::Arc;
    let corpus = corpus();
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let store = Arc::new(LogStore::new());
    let ingest = ClassifyingIngest::new(store, Arc::new(MonitorService::new(clf)), 4);
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: 3,
        ..StreamConfig::default()
    })
    .take(8000)
    .map(|t| t.to_frame())
    .collect();
    let report = ingest.run(frames);
    let traditional_mph = report.messages_per_second() * 3600.0;
    assert!(
        traditional_mph > 1_000_000.0,
        "traditional pipeline too slow: {traditional_mph:.0}/hour"
    );
    let f40_mph = 3600.0 / llmsim::LatencyModel::falcon_40b().inference_seconds(420, 16);
    assert!(
        traditional_mph / f40_mph > 100.0,
        "the paper's cost gap must hold"
    );
}

/// Masked bucketing beats raw bucketing on labeling burden (the xp_ablation
/// masking study).
#[test]
fn bucket_masking_shape_reproduces() {
    let corpus = corpus();
    let masked = BucketBaseline::train(7, &corpus);
    let raw = BucketBaseline::train_raw(7, &corpus);
    assert!(
        masked.n_buckets() * 2 < raw.n_buckets(),
        "masking must at least halve the exemplar count ({} vs {})",
        masked.n_buckets(),
        raw.n_buckets()
    );
}
