//! Integration: synthetic stream → multi-threaded ingest → store →
//! queries → §4.5 monitoring views, with classification in flight.

use hetsyslog::core::service::CollectingSink;
use hetsyslog::pipeline::views::{frequency_analysis, positional_analysis, GroupBy};
use hetsyslog::prelude::*;
use std::sync::Arc;

const START: i64 = 1_697_000_000;

fn trained_classifier() -> Arc<dyn TextClassifier> {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.005,
        seed: 42,
        min_per_class: 12,
    }));
    Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ))
}

fn stream_frames(n: usize, burst_probability: f64) -> Vec<String> {
    StreamGenerator::new(StreamConfig {
        start_unix: START,
        burst_probability,
        seed: 77,
        ..StreamConfig::default()
    })
    .take(n)
    .map(|t| t.to_frame())
    .collect()
}

#[test]
fn full_ingest_and_query_roundtrip() {
    let store = Arc::new(LogStore::with_shard_seconds(60));
    let pipeline = IngestPipeline::new(store.clone(), 4).with_fallback_time(START);
    let report = pipeline.run(stream_frames(5000, 0.0));
    assert_eq!(report.ingested, 5000);
    assert_eq!(store.len(), 5000);
    assert!(
        report.free_form == 0,
        "stream frames must parse structurally"
    );

    // Term queries hit the inverted index.
    let hits = Query::range(START - 100, START + 100_000)
        .term("throttled")
        .execute(&store);
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|r| r.message.contains("throttled")));

    // Node-scoped query.
    let node = hits[0].node.clone();
    let node_hits = Query::range(START - 100, START + 100_000)
        .term("throttled")
        .on_node(&node)
        .execute(&store);
    assert!(!node_hits.is_empty());
    assert!(node_hits.iter().all(|r| r.node == node));
}

#[test]
fn classified_ingest_emits_alerts_and_views_work() {
    let sink = Arc::new(CollectingSink::new());
    let service = Arc::new(MonitorService::new(trained_classifier()).with_alert_sink(sink.clone()));
    let store = Arc::new(LogStore::with_shard_seconds(60));
    let ingest =
        ClassifyingIngest::new(store.clone(), service.clone(), 4).with_fallback_time(START);
    let report = ingest.run(stream_frames(4000, 0.002));
    assert_eq!(report.ingested, 4000);

    let stats = service.stats();
    assert_eq!(stats.total, 4000);
    // The Table 2 mix guarantees thermal traffic.
    assert!(stats.count(Category::ThermalIssue) > 0);
    assert!(stats.alerts > 0);
    assert!(!sink.is_empty());

    // Frequency view sums to the store contents in range.
    let to = START + 7200;
    let series = frequency_analysis(&store, START - 60, to, 60, GroupBy::Total);
    let counted: u64 = series.iter().flat_map(|s| s.counts.iter()).sum();
    let stored = Query::range(START - 60, to).count(&store) as u64;
    assert_eq!(counted, stored);

    // Positional view covers all racks of the topology.
    let topo = ClusterTopology::darwin_like(8, 52);
    let racks = positional_analysis(&store, &topo, START - 60, to, Category::ThermalIssue);
    assert_eq!(racks.len(), 8);
    let total_thermal: u64 = racks.iter().map(|r| r.in_category).sum();
    assert!(total_thermal > 0);
}

#[test]
fn burst_detection_fires_on_injected_bursts() {
    let store = Arc::new(LogStore::with_shard_seconds(60));
    let pipeline = IngestPipeline::new(store.clone(), 2).with_fallback_time(START);
    // A calm base load with a few injected bursts: each burst compresses
    // 50-400 messages into ~1-2 s against a ~50 msg/s background.
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        start_unix: START,
        base_rate: 50.0,
        burst_probability: 0.002,
        seed: 77,
        ..StreamConfig::default()
    })
    .take(3000)
    .map(|t| t.to_frame())
    .collect();
    pipeline.run(frames);

    let series = frequency_analysis(&store, START, START + 65, 1, GroupBy::Total);
    let bursts = series.first().map(|s| s.bursts(3.0)).unwrap_or_default();
    assert!(
        !bursts.is_empty(),
        "injected bursts must trip the §4.5.1 surge detector"
    );
}

#[test]
fn store_throughput_exceeds_darwin_load() {
    // >1M msgs/hour ≈ 280 msgs/s. The in-process pipeline should sustain
    // orders of magnitude more even in a debug-built test.
    let store = Arc::new(LogStore::new());
    let pipeline = IngestPipeline::new(store.clone(), 4).with_fallback_time(START);
    let report = pipeline.run(stream_frames(10_000, 0.0));
    assert!(
        report.messages_per_second() > 280.0,
        "pipeline too slow: {:.0} msgs/s",
        report.messages_per_second()
    );
}

#[test]
fn json_lines_roundtrip_through_store_records() {
    let store = Arc::new(LogStore::new());
    let pipeline = IngestPipeline::new(store.clone(), 2).with_fallback_time(START);
    pipeline.run(stream_frames(50, 0.0));
    let records = Query::range(START - 100, START + 100_000).execute(&store);
    for r in &records {
        let line = r.to_json();
        let back = hetsyslog::pipeline::LogRecord::from_json(&line).unwrap();
        assert_eq!(&back, r);
    }
}
