//! Determinism of the conformance experiments: a fixed seed must produce
//! byte-identical canonical JSON across repeated runs and across rayon
//! thread counts. Wall-clock fields are redacted first — everything else
//! (scores, counts, vocabulary signatures, confusion matrices) has to
//! reproduce exactly, or the goldens in `results/` could never be checked
//! exactly either.

use bench::runner::{redact_volatile, run_experiment};
use bench::ExpArgs;
use hetsyslog_core::to_canonical_json;

fn canonical(stem: &str, args: &ExpArgs) -> String {
    let out = run_experiment(stem, args).expect("known experiment stem");
    let mut value = out.value;
    redact_volatile(stem, &mut value);
    to_canonical_json(&value)
}

fn ci_args() -> ExpArgs {
    ExpArgs {
        scale: 0.01,
        seed: 42,
        json_path: None,
        flags: Vec::new(),
    }
}

#[test]
fn experiments_reproduce_across_runs_and_thread_counts() {
    let args = ci_args();
    // Repeated identical runs, default thread pool. fig3 exercises the
    // parallel gradient accumulation in logistic regression and ridge —
    // the paths where float-summation order once depended on thread count.
    for stem in ["table1_tfidf_tokens", "table2_dataset", "xp_drift", "fig3"] {
        let first = canonical(stem, &args);
        assert_eq!(
            first,
            canonical(stem, &args),
            "{stem}: two identical runs produced different canonical JSON"
        );

        // Same seed, forced single-threaded vs. forced 4 threads. Both env
        // mutations happen inside this one test so no parallel test races
        // on RAYON_NUM_THREADS.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let single = canonical(stem, &args);
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let multi = canonical(stem, &args);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(
            single, multi,
            "{stem}: canonical JSON depends on the rayon thread count"
        );
        assert_eq!(
            first, single,
            "{stem}: pinned-thread run differs from the default pool"
        );
    }
}
