//! Cross-crate integration: corpus generation → preprocessing → training →
//! evaluation, for every classifier family.

use hetsyslog::prelude::*;
use hetsyslog_core::eval::{evaluate_suite, EvalConfig};

fn corpus() -> Vec<(String, Category)> {
    datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.008,
        seed: 42,
        min_per_class: 16,
    }))
}

#[test]
fn traditional_suite_reproduces_figure3_shape() {
    let corpus = corpus();
    let mut models = paper_suite(42);
    let config = EvalConfig::default();
    let (split, evals) = evaluate_suite(&corpus, &mut models, &config);
    assert!(split.train.len() > split.test.len());
    assert_eq!(evals.len(), 8);

    for e in &evals {
        // Paper: every weighted F1 in 0.9523..0.9995. Nearest Centroid is
        // the weakest on our harder synthetic corpus; everything else must
        // clear 0.95.
        let floor = if e.report.model == "Nearest Centroid" {
            0.85
        } else {
            0.95
        };
        assert!(
            e.report.weighted_f1 >= floor,
            "{} weighted F1 {} below floor {floor}",
            e.report.model,
            e.report.weighted_f1
        );
    }

    let time_of = |name: &str| -> f64 {
        evals
            .iter()
            .find(|e| e.report.model == name)
            .map(|e| e.report.train_seconds)
            .expect("model present")
    };
    // kNN trains fastest of the iterative models; Linear SVC slowest
    // overall (both paper findings).
    assert!(time_of("kNN") < time_of("Logistic Regression"));
    assert!(time_of("Linear SVC") > time_of("Random Forest"));
    assert!(time_of("Linear SVC") > time_of("Logistic Regression"));
    // kNN pays at test time instead.
    let knn = evals.iter().find(|e| e.report.model == "kNN").unwrap();
    assert!(knn.report.test_seconds > knn.report.train_seconds);
}

#[test]
fn drop_unimportant_ablation_raises_f1() {
    let corpus = corpus();
    let base_cfg = EvalConfig::default();
    let drop_cfg = EvalConfig {
        drop_unimportant: true,
        ..EvalConfig::default()
    };
    // Probe with the two cheapest models.
    let mut m1: Vec<Box<dyn BatchClassifier>> =
        vec![Box::new(ComplementNaiveBayes::new(Default::default()))];
    let (_, base) = evaluate_suite(&corpus, &mut m1, &base_cfg);
    let mut m2: Vec<Box<dyn BatchClassifier>> =
        vec![Box::new(ComplementNaiveBayes::new(Default::default()))];
    let (_, dropped) = evaluate_suite(&corpus, &mut m2, &drop_cfg);
    assert!(
        dropped[0].report.weighted_f1 >= base[0].report.weighted_f1,
        "ablation must not lower F1: {} vs {}",
        dropped[0].report.weighted_f1,
        base[0].report.weighted_f1
    );
}

#[test]
fn unimportant_is_the_confused_category() {
    // Figure 2's qualitative finding: when any confusion exists, it
    // involves the Unimportant class.
    let corpus = corpus();
    let mut models: Vec<Box<dyn BatchClassifier>> =
        vec![Box::new(LinearSvc::new(Default::default()))];
    let (_, evals) = evaluate_suite(&corpus, &mut models, &EvalConfig::default());
    if let Some((t, p, _)) = evals[0].confusion.most_confused() {
        let unimp = Category::Unimportant.index();
        assert!(
            t == unimp || p == unimp,
            "most-confused pair ({t},{p}) does not involve Unimportant"
        );
    }
}

#[test]
fn bucket_baseline_matches_background_section() {
    let corpus = corpus();
    let baseline = BucketBaseline::train(7, &corpus);
    // The bucket economy: far fewer exemplars than messages.
    assert!(baseline.n_buckets() * 2 < corpus.len());
    // In-distribution accuracy is decent (it labeled this very corpus).
    let correct = corpus
        .iter()
        .filter(|(m, c)| baseline.classify(m).category == *c)
        .count();
    assert!(correct as f64 / corpus.len() as f64 > 0.75);
}

#[test]
fn noise_filter_precision_on_signal() {
    let corpus = corpus();
    let filter = NoiseFilter::train(3, &corpus);
    let false_positives = corpus
        .iter()
        .filter(|(_, c)| *c != Category::Unimportant)
        .filter(|(m, _)| filter.is_noise(m))
        .count();
    let signal = corpus
        .iter()
        .filter(|(_, c)| *c != Category::Unimportant)
        .count();
    // Confusable-noise families deliberately sit near real categories;
    // the filter must stay under a few percent false positives on signal.
    assert!(
        (false_positives as f64) < 0.04 * signal as f64,
        "pre-filter dropped {false_positives}/{signal} signal messages"
    );
}

#[test]
fn explanations_cite_real_tokens() {
    let corpus = corpus();
    let clf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    );
    let msg = "CPU 3 temperature above threshold cpu clock throttled";
    let p = clf.classify(msg);
    let e = p.explanation.expect("traditional pipeline always explains");
    assert!(!e.top_tokens.is_empty());
    // Every cited token must be a lemma of something in the message.
    for (token, weight) in &e.top_tokens {
        assert!(*weight > 0.0);
        assert!(
            msg.to_lowercase().contains(&token[..token.len().min(4)]),
            "explanation token {token} unrelated to message"
        );
    }
}
