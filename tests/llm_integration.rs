//! Integration: the simulated LLM stack against the taxonomy, reproducing
//! the §5.2 findings end to end.

use hetsyslog::prelude::*;
use llmsim::classifier::FailureCounters;
use llmsim::parse::{parse_response, ParseFailure};

fn corpus() -> Vec<(String, Category)> {
    datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.005,
        seed: 42,
        min_per_class: 16,
    }))
}

fn sample(corpus: &[(String, Category)], n: usize) -> Vec<(String, Category)> {
    corpus
        .iter()
        .step_by((corpus.len() / n).max(1))
        .take(n)
        .cloned()
        .collect()
}

fn accuracy(clf: &dyn TextClassifier, data: &[(String, Category)]) -> f64 {
    let texts: Vec<&str> = data.iter().map(|(m, _)| m.as_str()).collect();
    let preds = clf.classify_batch(&texts);
    preds
        .iter()
        .zip(data)
        .filter(|(p, (_, c))| p.category == *c)
        .count() as f64
        / data.len() as f64
}

#[test]
fn table3_cost_ordering_holds() {
    let corpus = corpus();
    let test = sample(&corpus, 120);
    let prompt = PromptBuilder::new();

    let f7 = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        prompt.clone(),
        Some(24),
        1,
    );
    let f40 = GenerativeLlmClassifier::new(ModelPreset::falcon_40b(), &corpus, prompt, Some(24), 1);
    let zs = ZeroShotLlmClassifier::new(&corpus);

    let acc7 = accuracy(&f7, &test);
    let acc40 = accuracy(&f40, &test);
    let acc_zs = accuracy(&zs, &test);

    let (m7, m40, mzs) = (
        f7.mean_inference_seconds(),
        f40.mean_inference_seconds(),
        zs.mean_inference_seconds(),
    );
    // Table 3 ordering: BART fastest, Falcon-40b slowest.
    assert!(mzs < m7, "zero-shot {mzs} not faster than 7b {m7}");
    assert!(m7 < m40, "7b {m7} not faster than 40b {m40}");
    // Paper magnitudes: 0.134 / 0.639 / 2.184 s — allow wide factors.
    assert!((0.05..0.35).contains(&mzs), "bart mean {mzs}");
    assert!((0.3..1.2).contains(&m7), "falcon-7b mean {m7}");
    assert!((1.0..3.5).contains(&m40), "falcon-40b mean {m40}");
    // The bigger generative model classifies better; both beat chance.
    assert!(acc40 > acc7, "40b ({acc40}) should beat 7b ({acc7})");
    assert!(acc7 > 0.3);
    assert!(acc_zs > 0.5);
}

#[test]
fn llms_are_orders_of_magnitude_slower_than_traditional() {
    let corpus = corpus();
    let test = sample(&corpus, 100);
    let texts: Vec<&str> = test.iter().map(|(m, _)| m.as_str()).collect();

    let tfidf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    );
    let t0 = std::time::Instant::now();
    let _ = tfidf.classify_batch(&texts);
    let traditional_s = t0.elapsed().as_secs_f64() / texts.len() as f64;

    let f7 = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        PromptBuilder::new(),
        Some(24),
        1,
    );
    let _ = f7.classify_batch(&texts);
    let llm_s = f7.mean_inference_seconds();

    assert!(
        llm_s > traditional_s * 100.0,
        "paper's conclusion violated: LLM {llm_s}s/msg vs traditional {traditional_s}s/msg"
    );
}

#[test]
fn failure_modes_reproduce_and_cap_mitigates() {
    let corpus = corpus();
    let test = sample(&corpus, 200);
    let texts: Vec<&str> = test.iter().map(|(m, _)| m.as_str()).collect();

    let unbounded = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        PromptBuilder::new(),
        None,
        5,
    );
    let _ = unbounded.classify_batch(&texts);
    let free: FailureCounters = unbounded.counters();
    assert!(free.novel_category > 0, "novel-category failure never seen");
    assert_eq!(free.truncated, 0, "nothing truncates without a cap");

    let capped = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        PromptBuilder::new(),
        Some(16),
        5,
    );
    let _ = capped.classify_batch(&texts);
    let c = capped.counters();
    assert!(c.truncated > 0, "cap never engaged");
    assert!(
        capped.virtual_seconds() < unbounded.virtual_seconds(),
        "the paper's max_new_tokens fix must reduce cost"
    );
}

#[test]
fn response_parsing_handles_the_papers_cases() {
    // The exact Figure 1 answer style.
    let fig1 = "The message \"Warning: Socket 2 - CPU 23 throttling\" would fall under the \
                category of \"thermal\". Throttling is a technique used to regulate…";
    assert_eq!(parse_response(fig1), Ok(Category::ThermalIssue));
    // Out-of-taxonomy generation.
    assert!(matches!(
        parse_response("Overheating Event"),
        Err(ParseFailure::NovelCategory(_))
    ));
}

#[test]
fn zero_shot_never_leaves_the_taxonomy() {
    let corpus = corpus();
    let zs = ZeroShotLlmClassifier::new(&corpus);
    for (m, _) in sample(&corpus, 150) {
        let p = zs.classify(&m);
        assert!(Category::ALL.contains(&p.category));
        assert!(p.confidence.unwrap() > 0.0);
    }
}
