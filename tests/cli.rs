//! End-to-end tests of the `hetsyslog` CLI binary: generate → train →
//! classify through real processes and files.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hetsyslog"))
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hetsyslog_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_train_classify_round_trip() {
    let dir = tmpdir("roundtrip");
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");

    let out = bin()
        .args(["generate", "--scale", "0.002", "--seed", "7", "--out"])
        .arg(&corpus)
        .output()
        .expect("generate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = std::fs::read_to_string(&corpus).unwrap().lines().count();
    assert!(lines > 300, "corpus too small: {lines}");

    let out = bin()
        .args(["train", "--model", "cnb", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&model)
        .output()
        .expect("train runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let mut child = bin()
        .args(["classify", "--model"])
        .arg(&model)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("classify spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"CPU 9 temperature above threshold clock throttled\n\
              usb 1-1: new high-speed USB device number 5 using xhci_hcd\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("Thermal Issue\t"), "{}", lines[0]);
    assert!(lines[1].starts_with("USB-Device\t"), "{}", lines[1]);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn classify_accepts_full_syslog_frames() {
    let dir = tmpdir("frames");
    let model = dir.join("model.json");
    let out = bin()
        .args([
            "train", "--scale", "0.002", "--seed", "7", "--model", "cnb", "--out",
        ])
        .arg(&model)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = bin()
        .args(["classify", "--explain", "--model"])
        .arg(&model)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"<13>Oct 11 22:14:15 cn01 sshd[4]: Connection closed by 10.1.2.3 port 22 [preauth]\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The PRI/host/tag header must be stripped before classification.
    assert!(
        stdout.starts_with("SSH-Connection\tConnection closed"),
        "{stdout}"
    );
    assert!(
        stdout.contains("preauth:"),
        "explanation tokens missing: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The conformance runner binary, built on demand: it lives in the bench
/// crate, so a plain `cargo test -p hetsyslog` may not have produced it
/// next to the hetsyslog binary yet.
fn repro_bin() -> Command {
    let path = std::path::Path::new(env!("CARGO_BIN_EXE_hetsyslog"))
        .parent()
        .expect("binary directory")
        .join(format!("repro{}", std::env::consts::EXE_SUFFIX));
    if !path.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "bench", "--bin", "repro"])
            .status()
            .expect("cargo build runs");
        assert!(status.success(), "building repro failed");
    }
    Command::new(path)
}

#[test]
fn repro_check_passes_clean_and_names_drifted_field() {
    let dir = tmpdir("repro");

    // Regenerate one fast experiment's golden into a scratch root.
    let out = repro_bin()
        .args([
            "--update",
            "--scale",
            "ci",
            "--only",
            "T2",
            "--skip-differential",
            "--goldens",
        ])
        .arg(&dir)
        .output()
        .expect("repro --update runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = dir.join("ci/table2_dataset.json");
    assert!(golden.exists(), "golden not written");

    // A clean tree conforms: exit 0, no drift.
    let out = repro_bin()
        .args([
            "--check",
            "--scale",
            "ci",
            "--only",
            "T2",
            "--skip-differential",
            "--goldens",
        ])
        .arg(&dir)
        .output()
        .expect("repro --check runs");
    assert!(
        out.status.success(),
        "clean check failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 drifted field(s)"));

    // Perturb an exact-match field in the committed golden…
    let text = std::fs::read_to_string(&golden).unwrap();
    let mut value: serde_json::Value = serde_json::from_str(&text).unwrap();
    let serde_json::Value::Object(entries) = &mut value else {
        panic!("golden is not an object");
    };
    let total = entries
        .iter_mut()
        .find(|(k, _)| k == "total")
        .expect("table2 golden has a total field");
    let perturbed = total.1.as_u64().unwrap() + 1;
    total.1 = serde_json::json!(perturbed);
    std::fs::write(&golden, serde_json::to_string_pretty(&value).unwrap()).unwrap();

    // …and the check must fail, naming exactly that field in the report.
    let out = repro_bin()
        .args([
            "--check",
            "--scale",
            "ci",
            "--only",
            "T2",
            "--skip-differential",
            "--goldens",
        ])
        .arg(&dir)
        .output()
        .expect("repro --check runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "perturbed golden must exit 1, stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("DRIFT table2_dataset.total"),
        "drift report must name the drifted field: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_checks_committed_goldens_for_fast_experiments() {
    // Against the repository's own committed results/ci goldens — the
    // default goldens root — the fast experiments must conform.
    let out = repro_bin()
        .args([
            "--check",
            "--scale",
            "ci",
            "--only",
            "T1,T2",
            "--skip-differential",
        ])
        .output()
        .expect("repro --check runs");
    assert!(
        out.status.success(),
        "committed goldens drifted:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn repro_rejects_unknown_arguments() {
    let out = repro_bin().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn train_rejects_unknown_model() {
    let out = bin()
        .args(["train", "--scale", "0.001", "--model", "gpt9000"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}
