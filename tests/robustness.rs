//! Failure injection: the system must degrade, not panic, when fed
//! garbage, degenerate training sets, or empty feature spaces.

use hetsyslog::prelude::*;
use textproc::TfidfConfig;

#[test]
fn pipeline_survives_garbage_frames() {
    use std::sync::Arc;
    let store = Arc::new(LogStore::new());
    let pipeline = IngestPipeline::new(store.clone(), 2).with_fallback_time(100);
    let mut frames: Vec<String> = Vec::new();
    for i in 0..200 {
        frames.push(format!("<13>Oct 11 22:14:15 cn0001 kernel: good frame {i}"));
        frames.push("<<<>>> total garbage \u{0} with control bytes \u{7}".to_string());
        frames.push(String::new()); // dropped
        frames.push("<999>1 not a real pri".to_string()); // free-form fallback
    }
    let report = pipeline.run(frames);
    assert_eq!(report.dropped, 200, "empty frames dropped");
    assert_eq!(report.ingested, 600, "everything else captured");
    assert!(report.free_form >= 400, "garbage falls back to free-form");
    assert_eq!(store.len(), 600);
}

#[test]
fn classifier_with_empty_vocabulary_does_not_panic() {
    // min_df = 50 on a tiny corpus of unique tokens ⇒ zero features.
    let corpus: Vec<(String, Category)> = (0..20)
        .map(|i| (format!("uniqtoken{i}"), Category::Unimportant))
        .chain((0..20).map(|i| (format!("othertok{i}"), Category::ThermalIssue)))
        .collect();
    let clf = TraditionalPipeline::train(
        FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 50,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        },
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    );
    assert_eq!(clf.features().n_features(), 0);
    let p = clf.classify("anything at all");
    assert!(Category::ALL.contains(&p.category));
}

#[test]
fn single_class_corpus_trains_and_predicts() {
    let corpus: Vec<(String, Category)> = (0..10)
        .map(|i| {
            (
                format!("usb device {i} new number on hub"),
                Category::UsbDevice,
            )
        })
        .collect();
    // Complement NB is excluded: "the complement of the only class" is
    // degenerate by construction, so its single-class prediction is
    // arbitrary (valid, but not necessarily the populated class).
    for model in ["nc", "sgd", "lr"] {
        let clf = hetsyslog::core::persist::SavedPipeline::train(
            FeatureConfig {
                tfidf: TfidfConfig {
                    min_df: 1,
                    ..TfidfConfig::default()
                },
                ..FeatureConfig::default()
            },
            SavedModel::by_name(model).unwrap(),
            &corpus,
        );
        let p = clf.classify("usb device 99 new number on hub");
        assert_eq!(
            p.category,
            Category::UsbDevice,
            "{model} failed on single-class corpus"
        );
    }
    let cnb = hetsyslog::core::persist::SavedPipeline::train(
        FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        },
        SavedModel::by_name("cnb").unwrap(),
        &corpus,
    );
    assert!(Category::ALL.contains(&cnb.classify("usb device 99").category));
}

#[test]
fn bucket_baseline_on_empty_corpus() {
    let baseline = BucketBaseline::train(7, &[]);
    assert_eq!(baseline.n_buckets(), 0);
    let p = baseline.classify("anything");
    assert_eq!(p.category, Category::Unimportant, "falls back to noise");
}

#[test]
fn llm_with_empty_pretraining_corpus() {
    let clf = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &[],
        PromptBuilder::new(),
        Some(16),
        1,
    );
    // No knowledge: predictions are arbitrary but valid, costs accounted.
    let p = clf.classify("cpu temperature above threshold");
    assert!(Category::ALL.contains(&p.category));
    assert!(clf.virtual_seconds() > 0.0);
}

#[test]
fn monitor_service_with_everything_filtered() {
    use std::sync::Arc;
    let corpus: Vec<(String, Category)> = (0..6)
        .map(|i| (format!("noise pattern {i}"), Category::Unimportant))
        .chain((0..6).map(|i| {
            (
                format!("cpu {i} temperature throttled"),
                Category::ThermalIssue,
            )
        }))
        .collect();
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        },
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    // A filter whose threshold is so loose it eats everything.
    let mut filter = NoiseFilter::empty(10_000);
    filter.add_pattern("anything");
    let svc = MonitorService::new(clf).with_prefilter(filter);
    for i in 0..50 {
        assert!(svc.ingest(&format!("message {i}")).is_none());
    }
    let stats = svc.stats();
    assert_eq!(stats.prefiltered, 50);
    assert_eq!(stats.per_category.iter().sum::<u64>(), 0);
}

#[test]
fn sparse_vector_extreme_values() {
    use textproc::SparseVec;
    // 1e150 squares to 1e300, near but under f64::MAX — the norm must
    // stay finite and normalization exact.
    let v = SparseVec::from_pairs(vec![(0, 1e150), (1, f64::MIN_POSITIVE)]);
    assert!(v.norm().is_finite());
    let mut u = v.clone();
    u.l2_normalize();
    assert!((u.norm() - 1.0).abs() < 1e-9);
}

#[test]
fn frame_decoder_resists_hostile_counts() {
    let mut decoder = FrameDecoder::new();
    // A stream of nothing but bogus octet counts must not OOM or loop.
    let hostile = "999999 ".repeat(1000);
    let frames = decoder.push(hostile.as_bytes());
    assert!(frames.is_empty());
    assert_eq!(decoder.dropped(), 1000);
    assert!(decoder.pending() < 16);
}
