//! Quickstart: train the paper's preferred pipeline on a synthetic Darwin
//! corpus, classify a few live messages, and reproduce the Figure 1
//! interaction — an LLM classifying a thermal message with a prose
//! explanation.
//!
//! Run: `cargo run --release --example quickstart`

use hetsyslog::prelude::*;

fn main() {
    // 1. A synthetic heterogeneous corpus with the paper's Table 2 class
    //    balance (~2k messages at this scale; scale 1.0 is the full 196k).
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    println!("corpus: {} unique labeled messages", corpus.len());

    // 2. Train the paper's pipeline: tokenize → lemmatize → TF-IDF →
    //    Complement Naive Bayes (the best accuracy/cost trade-off).
    let clf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    );
    println!("trained: {}\n", clf.name());

    // 3. Classify incoming messages, with explanations.
    let incoming = [
        "Warning: Socket 2 - CPU 23 throttling, processor thermal sensor trip point reached",
        "Connection closed by 10.3.7.77 port 50914 [preauth]",
        "usb 3-2: new high-speed USB device number 17 using xhci_hcd",
        "error: Node cn0188 has low real_memory size (8192 < 196608) node configuration unusable",
        "slurm_rpc_node_registration complete for cn0021 usec=312",
    ];
    for msg in incoming {
        let p = clf.classify(msg);
        println!("[{}] {}", p.category, msg);
        if let Some(e) = &p.explanation {
            let tokens: Vec<String> = e
                .top_tokens
                .iter()
                .take(3)
                .map(|(t, w)| format!("{t} ({w:.2})"))
                .collect();
            println!("         evidence: {}", tokens.join(", "));
        }
        println!("         action: {}", p.category.suggested_action());
    }

    // 4. Figure 1: the same message through a (simulated) generative LLM,
    //    which produces a prose justification — the one capability the
    //    paper found genuinely attractive about LLMs.
    println!("\n--- Figure 1: generative LLM classification ---");
    let llm = GenerativeLlmClassifier::new(
        ModelPreset::falcon_40b(),
        &corpus,
        PromptBuilder::new(),
        Some(96),
        7,
    );
    let msg = "Warning: Socket 2 - CPU 23 throttling";
    // Sample until the excessive-generation mode produces the Figure 1
    // style prose response (it fires for ~1 in 5 messages).
    for attempt in 0..20 {
        let p = llm.classify(msg);
        let text = p
            .explanation
            .as_ref()
            .map(|e| e.rationale.clone())
            .unwrap_or_default();
        if text.contains("would fall under") || attempt == 19 {
            println!("prompt message: {msg:?}");
            println!("model answer  : {text}");
            println!("parsed as     : {}", p.category);
            break;
        }
    }
    println!(
        "modeled inference cost so far: {:.2} virtual GPU-seconds ({:.3} s/msg)",
        llm.virtual_seconds(),
        llm.mean_inference_seconds()
    );
}
