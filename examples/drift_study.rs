//! The firmware-drift story (Background §3) as a narrative walkthrough:
//! watch the bucket store's human-labeling queue grow as firmware revs
//! reword messages, while the TF-IDF classifier keeps working.
//!
//! Run: `cargo run --release --example drift_study`

use hetsyslog::datagen::{DriftConfig, DriftModel};
use hetsyslog::prelude::*;

fn main() {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    println!("initial corpus: {} messages\n", corpus.len());

    // Operate the bucket store the way Darwin did: assign everything,
    // label each new exemplar (simulating the one-time human pass).
    let bucket = BucketBaseline::train(7, &corpus);
    println!(
        "year 0: {} exemplars hand-labeled to cover the corpus",
        bucket.n_buckets()
    );

    // The TF-IDF pipeline trained once on the same data.
    let tfidf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    );

    // Three firmware "upgrade waves", each rewording more aggressively.
    for (wave, synonym_rate) in [(1, 0.3), (2, 0.6), (3, 0.9)] {
        let mut drift = DriftModel::new(DriftConfig {
            synonym_rate,
            separator_rate: synonym_rate * 0.6,
            suffix_rate: synonym_rate * 0.4,
            vendor_jargon: false,
            seed: 100 + wave,
        });
        let drifted: Vec<(String, Category)> =
            corpus.iter().map(|(m, c)| (drift.mutate(m), *c)).collect();

        let orphans = drifted
            .iter()
            .filter(|(m, _)| bucket.find(m).is_none())
            .count();
        let bucket_acc = drifted
            .iter()
            .filter(|(m, c)| bucket.classify(m).category == *c)
            .count() as f64
            / drifted.len() as f64;
        let tfidf_acc = drifted
            .iter()
            .filter(|(m, c)| tfidf.classify(m).category == *c)
            .count() as f64
            / drifted.len() as f64;

        println!(
            "firmware wave {wave} (synonym rate {synonym_rate:.1}): \
             buckets orphan {:>5.1}% of messages (≈{orphans} new exemplars to label), \
             bucket accuracy {bucket_acc:.3}, TF-IDF accuracy {tfidf_acc:.3}",
            orphans as f64 / drifted.len() as f64 * 100.0,
        );
    }

    println!(
        "\nThe orphan column is the \"continuous re-training process [that] would consume\n\
         valuable system administrator time\" (§3); the TF-IDF column is the paper's hope."
    );
}
