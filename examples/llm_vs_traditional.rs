//! The paper's central comparison, interactive: classify the same held-out
//! messages with the bucketing baseline, a traditional TF-IDF model, and
//! the (simulated) LLMs, then compare accuracy and cost side by side.
//!
//! Run: `cargo run --release --example llm_vs_traditional`

use hetsyslog::prelude::*;
use std::time::Instant;

/// Classify `test` with `clf`; report accuracy and cost. `modeled_seconds`
/// (queried *after* classification) supplies virtual GPU time for the LLM
/// simulators; `None` means measured wall time.
fn eval(
    name: &str,
    clf: &dyn TextClassifier,
    test: &[(String, Category)],
    modeled_seconds: Option<&dyn Fn() -> f64>,
) {
    let texts: Vec<&str> = test.iter().map(|(m, _)| m.as_str()).collect();
    let t0 = Instant::now();
    let preds = clf.classify_batch(&texts);
    let wall = t0.elapsed().as_secs_f64();
    let correct = preds
        .iter()
        .zip(test)
        .filter(|(p, (_, c))| p.category == *c)
        .count();
    let (cost, basis) = match modeled_seconds {
        Some(f) => (f(), "modeled GPU"),
        None => (wall, "measured CPU"),
    };
    println!(
        "{name:<28} accuracy {:>6.3}   {:>9.3}s for {} msgs ({} time) → {:>10.0} msgs/hour",
        correct as f64 / test.len() as f64,
        cost,
        test.len(),
        basis,
        test.len() as f64 / cost.max(1e-9) * 3600.0,
    );
}

fn main() {
    let all = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.02,
        seed: 42,
        min_per_class: 16,
    }));
    // Simple holdout: every 5th message is test.
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, pair) in all.into_iter().enumerate() {
        if i % 5 == 0 {
            test.push(pair);
        } else {
            train.push(pair);
        }
    }
    let test: Vec<(String, Category)> = test
        .iter()
        .step_by((test.len() / 300).max(1))
        .take(300)
        .cloned()
        .collect();
    println!("train {} / test {} (sampled)\n", train.len(), test.len());

    // Baseline: Levenshtein buckets at the production threshold.
    let bucket = BucketBaseline::train(7, &train);
    eval(&bucket.name(), &bucket, &test, None);

    // Traditional: TF-IDF + Complement NB.
    let tfidf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &train,
    );
    eval(&tfidf.name(), &tfidf, &test, None);

    // LLMs (simulated; cost accounted on the virtual 4×A100 clock).
    let prompt = PromptBuilder::new();
    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let clf = GenerativeLlmClassifier::new(preset, &train, prompt.clone(), Some(24), 3);
        let name = clf.name();
        eval(&name, &clf, &test, Some(&|| clf.virtual_seconds()));
        let counters = clf.counters();
        println!(
            "{:<28} failure modes: {} novel categories, {} truncated generations",
            "", counters.novel_category, counters.truncated
        );
    }
    let zs = ZeroShotLlmClassifier::new(&train);
    let name = zs.name();
    eval(&name, &zs, &test, Some(&|| zs.virtual_seconds()));

    println!("\nDarwin produces >1M messages/hour; only the measured-CPU rows keep up — \"the");
    println!("computational costs may offset the benefits\" (abstract).");
}
