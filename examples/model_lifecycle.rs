//! Model lifecycle: the paper's Future Work deployment loop end to end —
//! train, persist, deploy (load), observe drift, absorb fresh labels with
//! `partial_fit`, and persist again.
//!
//! Run: `cargo run --release --example model_lifecycle`

use hetsyslog::core::persist::{SavedModel, SavedPipeline};
use hetsyslog::datagen::{DriftConfig, DriftModel};
use hetsyslog::prelude::*;

fn accuracy(clf: &SavedPipeline, data: &[(String, Category)]) -> f64 {
    data.iter()
        .filter(|(m, c)| clf.classify(m).category == *c)
        .count() as f64
        / data.len().max(1) as f64
}

fn main() -> Result<(), String> {
    let dir = std::env::temp_dir().join("hetsyslog_lifecycle");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let model_path = dir.join("deployed.json");

    // Day 0: train on the collection system's labeled history and persist.
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    let trained = SavedPipeline::train(
        FeatureConfig::default(),
        SavedModel::by_name("cnb").expect("cnb is a known model"),
        &corpus,
    );
    trained.save(&model_path).map_err(|e| e.to_string())?;
    println!(
        "day 0: trained {} on {} messages → {} ({} KiB)",
        trained.name(),
        corpus.len(),
        model_path.display(),
        std::fs::metadata(&model_path)
            .map(|m| m.len() / 1024)
            .unwrap_or(0)
    );

    // Day 1: a fresh process loads the model and serves traffic.
    let mut deployed = SavedPipeline::load(&model_path)?;
    println!(
        "day 1: loaded model classifies with accuracy {:.4} on its own history",
        accuracy(&deployed, &corpus)
    );

    // Day 90: firmware updates reword the stream.
    let mut drift = DriftModel::new(DriftConfig {
        synonym_rate: 0.7,
        vendor_jargon: false,
        ..DriftConfig::default()
    });
    let drifted: Vec<(String, Category)> =
        corpus.iter().map(|(m, c)| (drift.mutate(m), *c)).collect();
    println!(
        "day 90: firmware drift arrives — accuracy on reworded traffic {:.4}",
        accuracy(&deployed, &drifted)
    );

    // The admin labels a 5% trickle of the new traffic; the deployed model
    // absorbs it in place (Complement NB partial_fit is exact).
    let n = drifted.len() / 20;
    let fresh_features: Vec<_> = drifted[..n]
        .iter()
        .map(|(m, _)| deployed.features.transform(m))
        .collect();
    let fresh = hetsyslog::ml::Dataset::new(
        fresh_features,
        drifted[..n].iter().map(|(_, c)| c.index()).collect(),
        Category::all_labels(),
    );
    if let SavedModel::ComplementNb(m) = &mut deployed.model {
        m.partial_fit(&fresh);
    }
    println!(
        "day 90+: after absorbing {n} labeled messages, accuracy {:.4} — and the \
         updated model persists back:",
        accuracy(&deployed, &drifted)
    );
    deployed.save(&model_path).map_err(|e| e.to_string())?;
    let reloaded = SavedPipeline::load(&model_path)?;
    println!(
        "         reloaded copy agrees: accuracy {:.4}",
        accuracy(&reloaded, &drifted)
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
