//! Real-time monitoring: the full Tivan-style loop.
//!
//! Generates a bursty synthetic syslog stream (Poisson base load plus a
//! thermal-runaway burst), pushes it through the multi-threaded
//! parse → noise-filter → classify → index pipeline, fires alerts for
//! actionable categories, and then runs the paper's §4.5 monitoring views
//! over the resulting store: frequency analysis with burst detection,
//! positional (per-rack) analysis, and a per-architecture comparison.
//!
//! Run: `cargo run --release --example realtime_monitor`

use hetsyslog::core::service::CollectingSink;
use hetsyslog::pipeline::views::{
    frequency_analysis, per_architecture_analysis, positional_analysis, GroupBy,
};
use hetsyslog::prelude::*;
use std::sync::Arc;

fn main() {
    // Train on a scaled Darwin corpus.
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));

    // Monitor service: noise pre-filter + alert sink.
    let sink = Arc::new(CollectingSink::new());
    let service = Arc::new(
        MonitorService::new(clf)
            .with_prefilter(NoiseFilter::train(3, &corpus))
            .with_alert_sink(sink.clone()),
    );

    // A bursty stream: ~40 virtual seconds of Darwin load.
    let stream = StreamGenerator::new(StreamConfig {
        burst_probability: 0.001,
        seed: 11,
        ..StreamConfig::default()
    });
    let frames: Vec<String> = stream.take(12_000).map(|t| t.to_frame()).collect();

    // Ingest with classification in flight.
    let store = Arc::new(LogStore::with_shard_seconds(60));
    let ingest = ClassifyingIngest::new(store.clone(), service.clone(), 4);
    let report = ingest.run(frames);
    println!(
        "ingested {} frames in {:.2}s ({:.0} msgs/s sustained, {:.1}M msgs/hour)",
        report.ingested,
        report.seconds,
        report.messages_per_second(),
        report.messages_per_second() * 3600.0 / 1e6,
    );
    let stats = service.stats();
    println!(
        "pre-filtered {} known-noise messages; {} alerts emitted",
        stats.prefiltered, stats.alerts
    );
    for &c in &Category::ALL {
        let n = stats.count(c);
        if n > 0 {
            println!("  {:<20} {n}", c.label());
        }
    }

    // §4.5.1 frequency analysis with burst detection.
    let (t0, t1) = (1_696_999_990, 1_697_000_000 + 120);
    let series = frequency_analysis(&store, t0, t1, 10, GroupBy::Total);
    if let Some(total) = series.first() {
        let bursts = total.bursts(2.0);
        println!(
            "\nfrequency analysis: {} buckets, bursts at {:?}",
            total.counts.len(),
            bursts
                .iter()
                .map(|(t, c)| format!("t={t} n={c}"))
                .collect::<Vec<_>>()
        );
    }

    // §4.5.2 positional analysis: which rack is hot?
    let topo = ClusterTopology::darwin_like(8, 52); // ~416 nodes like Darwin
    let racks = positional_analysis(&store, &topo, t0, t1, Category::ThermalIssue);
    println!("\npositional analysis (thermal messages per rack):");
    for r in racks.iter().filter(|r| r.in_category > 0) {
        println!(
            "  {}: {} thermal msgs across {} nodes",
            r.rack, r.in_category, r.affected_nodes
        );
    }

    // §4.5.3 per-architecture comparison for the noisiest thermal node.
    let thermal = Query::range(t0, t1)
        .in_category(Category::ThermalIssue)
        .execute(&store);
    if let Some(node) = thermal.first().map(|r| r.node.clone()) {
        let verdict = per_architecture_analysis(
            &store,
            &topo,
            t0,
            t1,
            Category::ThermalIssue,
            &node,
            2.0,
            0.8,
        );
        println!("\nper-architecture verdict for {node}: {verdict:?}");
    }

    // Show a couple of alerts.
    let alerts = sink.take();
    println!("\nfirst alerts:");
    for a in alerts.iter().take(3) {
        println!("  [{}] {} → {}", a.category, a.message, a.action);
    }
}
