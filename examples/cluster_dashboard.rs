//! A terminal "Grafana panel": ingest a day-scale synthetic stream and
//! render the §4.5 views as ASCII — message-rate sparklines per category,
//! a rack heat table, and per-architecture anomaly verdicts.
//!
//! Run: `cargo run --release --example cluster_dashboard`

use hetsyslog::pipeline::views::{
    frequency_analysis, per_architecture_analysis, positional_analysis, GroupBy,
};
use hetsyslog::prelude::*;
use std::sync::Arc;

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(counts: &[u64]) -> String {
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    counts
        .iter()
        .map(|&c| SPARKS[(c as usize * (SPARKS.len() - 1)) / max as usize])
        .collect()
}

fn main() {
    // Train a fast classifier and ingest a bursty stream.
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let store = Arc::new(LogStore::with_shard_seconds(60));
    let service = Arc::new(MonitorService::new(clf));
    let ingest = ClassifyingIngest::new(store.clone(), service, 4);
    let start = 1_697_000_000i64;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        start_unix: start,
        burst_probability: 0.0015,
        seed: 23,
        ..StreamConfig::default()
    })
    .take(30_000)
    .map(|t| t.to_frame())
    .collect();
    let report = ingest.run(frames);
    println!(
        "tivan-sim dashboard — {} records indexed in {:.2}s\n",
        report.ingested, report.seconds
    );

    // Panel 1: per-category message rate (10 s buckets).
    let horizon = start + 120;
    println!("message rate by category (10s buckets)");
    for series in frequency_analysis(&store, start - 10, horizon, 10, GroupBy::Category) {
        let total: u64 = series.counts.iter().sum();
        if total > 0 {
            println!(
                "  {:<22} {:>6}  {}",
                series.label,
                total,
                sparkline(&series.counts)
            );
        }
    }

    // Panel 2: burst detector on the aggregate series.
    let total_series = frequency_analysis(&store, start - 10, horizon, 10, GroupBy::Total);
    if let Some(s) = total_series.first() {
        println!(
            "\n  {:<22} {:>6}  {}",
            "TOTAL",
            s.counts.iter().sum::<u64>(),
            sparkline(&s.counts)
        );
        for (t, c) in s.bursts(2.0) {
            println!(
                "  ⚠ burst: {c} messages in bucket starting t+{}s",
                t - start
            );
        }
    }

    // Panel 3: rack heat table (thermal messages).
    let topo = ClusterTopology::darwin_like(8, 52);
    println!("\nthermal messages per rack");
    let racks = positional_analysis(&store, &topo, start - 10, horizon, Category::ThermalIssue);
    for r in &racks {
        let bar = "#".repeat((r.in_category as usize).min(60));
        println!(
            "  {:<4} {:>5} across {:>2} nodes {}",
            r.rack, r.in_category, r.affected_nodes, bar
        );
    }

    // Panel 4: per-architecture verdicts for the three noisiest thermal
    // nodes.
    let thermal = Query::range(start - 10, horizon)
        .in_category(Category::ThermalIssue)
        .execute(&store);
    let mut by_node: std::collections::BTreeMap<String, usize> = Default::default();
    for r in &thermal {
        *by_node.entry(r.node.clone()).or_default() += 1;
    }
    let mut noisy: Vec<(String, usize)> = by_node.into_iter().collect();
    noisy.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\nper-architecture verdicts (top thermal emitters)");
    for (node, n) in noisy.into_iter().take(3) {
        let verdict = per_architecture_analysis(
            &store,
            &topo,
            start - 10,
            horizon,
            Category::ThermalIssue,
            &node,
            2.0,
            0.8,
        );
        println!("  {node} ({n} msgs): {verdict:?}");
    }
}
