//! The §4.5.3 sensor audit: compare IPMI readings against architecture
//! peers to separate genuine hardware faults from early-access-firmware
//! false positives.
//!
//! Run: `cargo run --release --example sensor_audit`

use hetsyslog::pipeline::sensors::{sensor_sweep, SensorSweepConfig};
use hetsyslog::prelude::*;
use logpipeline::Architecture;

fn main() {
    let topo = ClusterTopology::darwin_like(8, 52);
    println!(
        "sensor audit over {} nodes / {} architectures\n",
        topo.len(),
        Architecture::ALL.len()
    );

    // Today's sweep: one genuinely hot node, and an ARM chassis firmware
    // that reports Fan4 = 0 RPM on every node (the paper's example).
    let temp_sweep = sensor_sweep(
        &topo,
        &SensorSweepConfig {
            faulty_nodes: vec![("cn0101".to_string(), 104.0)],
            ..SensorSweepConfig::default()
        },
        1_697_000_000,
    );
    let fan_sweep = sensor_sweep(
        &topo,
        &SensorSweepConfig {
            sensor: "Fan4".to_string(),
            baselines: vec![
                (Architecture::X86Intel, 6200.0),
                (Architecture::X86Amd, 5800.0),
                (Architecture::Aarch64, 5400.0),
                (Architecture::Ppc64le, 7100.0),
                (Architecture::GpuA100, 9000.0),
            ],
            jitter: 300.0,
            quirky_archs: vec![(Architecture::Aarch64, 0.0)],
            ..SensorSweepConfig::default()
        },
        1_697_000_000,
    );

    println!("CPU_Temp audit (candidates = hottest reading per architecture):");
    for arch in Architecture::ALL {
        let peers = topo.arch_peers(arch);
        let hottest = peers
            .iter()
            .filter_map(|n| {
                temp_sweep
                    .iter()
                    .find(|r| r.node == n.name)
                    .map(|r| (n.name.clone(), r.value))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        if let Some((node, value)) = hottest {
            let verdict = compare_to_arch_peers(&topo, &temp_sweep, &node, "CPU_Temp", 3.0);
            println!(
                "  {:<9} {node} reads {value:>6.1}C → {verdict:?}",
                arch.name()
            );
        }
    }

    println!("\nFan4 audit (one node per architecture):");
    for arch in Architecture::ALL {
        if let Some(node) = topo.arch_peers(arch).first() {
            let reading = fan_sweep
                .iter()
                .find(|r| r.node == node.name)
                .map(|r| r.value)
                .unwrap_or(f64::NAN);
            let verdict = compare_to_arch_peers(&topo, &fan_sweep, &node.name, "Fan4", 3.0);
            println!(
                "  {:<9} {} reads {reading:>7.1} RPM → {verdict:?}",
                arch.name(),
                node.name
            );
        }
    }

    println!(
        "\nReading the verdicts: cn0101's temperature is a genuine Anomalous fault (dispatch a\n\
         tech); the ARM nodes' 0-RPM fans are IdenticalAcrossArch — \"although chassis sensors\n\
         are reporting that there is an issue … in reality the system is operating nominally\"\n\
         (§4.5.3)."
    );
}
