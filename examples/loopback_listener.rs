//! The socket-facing ingest front end on loopback: a fault-tolerant
//! TCP + UDP syslog listener with in-flight classification.
//!
//! Starts a [`SyslogListener`] over a trained classifier, plays a small
//! heterogeneous node fleet against it — RFC 6587 octet-counted TCP,
//! LF-framed TCP with deliberate corruption, and UDP datagrams — then
//! drains gracefully and prints the combined transport + classification
//! health snapshot and the dead-letter ring.
//!
//! The listener serves `GET /metrics` (Prometheus text), `/health` (JSON),
//! `/spans` (JSON), `/alerts` (JSON) and `/flight` (JSON) on an ephemeral
//! loopback port; the example scrapes its own endpoint over real HTTP and
//! prints the exposition. A seeded threshold rule on the ingest rate fires
//! while the burst is inside the alert window and resolves once traffic
//! goes quiet — both `/alerts` documents are printed, so CI can assert the
//! full firing → resolved lifecycle over the wire. Pass `--hold` to keep
//! the listener up for 60 s after the traffic so you can `curl` it
//! yourself (the URL is printed at startup).
//!
//! Run: `cargo run --release --example loopback_listener [-- --hold]`

use hetsyslog::prelude::*;
use std::io::Write;
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // Train a classifier on a scaled Darwin corpus and wrap it in a
    // monitor service, exactly as the real-time pipeline would.
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    // Model-quality drift telemetry: a 64-prediction frozen baseline is
    // small enough that this example's ~100 frames freeze it and export a
    // live PSI gauge alongside the per-category prediction shares.
    let service = Arc::new(
        MonitorService::new(clf)
            .with_prefilter(NoiseFilter::train(3, &corpus))
            .with_model_quality(ModelQuality::with_config(64, 64)),
    );

    let store = Arc::new(LogStore::new());
    let telemetry = Telemetry::new_arc();
    let listener = SyslogListener::start(
        store.clone(),
        Some(service),
        ListenerConfig {
            workers: 2,
            queue_depth: 256,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(5),
            telemetry: Some(telemetry.clone()),
            serve_metrics: true,
            // Flight recorder at a CI-friendly cadence, plus one seeded
            // threshold rule: "ingest is moving" — fires during the burst,
            // resolves ~2 s after the senders go quiet.
            flight_interval: Duration::from_millis(50),
            alert_rules: vec![Rule::threshold(
                "ingest_active",
                "hetsyslog_ingest_frames_total",
                RuleInput::Rate,
                Cmp::Gt,
                5.0,
            )
            .over_ms(2_000)
            .for_ms(100)],
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let metrics_addr = listener.metrics_addr().expect("metrics endpoint");
    println!(
        "listener up: tcp={} udp={} metrics=http://{}/metrics\n",
        listener.tcp_addr(),
        listener.udp_addr(),
        metrics_addr,
    );

    // Node 1: a well-behaved rsyslog sender using octet counting.
    let mut tcp1 = TcpStream::connect(listener.tcp_addr()).expect("connect");
    for i in 0..40 {
        let frame = format!("<13>Oct 11 22:14:{:02} cn0101 kernel: CPU{i} core temperature above threshold, cpu clock throttled", i % 60);
        tcp1.write_all(format!("{} {frame}", frame.len()).as_bytes())
            .expect("write");
    }

    // Node 2: an LF-framing vendor appliance that also emits corrupt
    // octet counts, blank-line noise, and finally a truncated frame.
    let mut tcp2 = TcpStream::connect(listener.tcp_addr()).expect("connect");
    for i in 0..40 {
        tcp2.write_all(
            format!(
                "<86>Oct 11 22:14:{:02} cn0202 sshd[99]: session opened for user darwin\n",
                i % 60
            )
            .as_bytes(),
        )
        .expect("write");
    }
    tcp2.write_all(b"999999 \n\n\nvendor gibberish without any header\n")
        .expect("write");
    tcp2.write_all(b"64 <13>Oct 11 22:14:59 cn0202 app: this frame gets cut at the clo")
        .expect("write");
    drop(tcp2); // close mid-frame: the decoder tail is flushed, count token stripped

    // Node 3: a UDP sender (one datagram per message).
    let udp = UdpSocket::bind("127.0.0.1:0").expect("bind udp client");
    for i in 0..20 {
        udp.send_to(
            format!(
                "<9>Oct 11 22:14:{:02} cn0303 ipmid: fan RPM below minimum\n",
                i % 60
            )
            .as_bytes(),
            listener.udp_addr(),
        )
        .expect("send");
    }
    drop(tcp1);

    // Node 4: the same UDP sender, now paced slower than the 50 ms flight
    // sampler, so the recorder sees the frame counter actually rising. (The
    // bursts above land entirely between two samples and read as zero
    // delta — a paced phase is what arms the seeded rate rule.)
    for i in 0..30 {
        udp.send_to(
            format!(
                "<9>Oct 11 22:15:{:02} cn0303 ipmid: fan RPM below minimum\n",
                i % 60
            )
            .as_bytes(),
            listener.udp_addr(),
        )
        .expect("send");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Wait for the traffic to drain, then shut down gracefully.
    let expect = 40 + 40 + 2 + 20 + 30; // node2: 40 LF + gibberish + flushed tail
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.stats().snapshot().ingested < expect && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    // Scrape our own endpoint over real loopback HTTP, exactly as a
    // Prometheus server (or `hetsyslog top --addr`) would.
    let exposition =
        hetsyslog::obs::http_get(&metrics_addr.to_string(), "/metrics").expect("scrape /metrics");

    // The seeded rule's full lifecycle over the wire: the burst pushes the
    // windowed ingest rate over threshold (pending → firing), then the
    // quiet tail slides the burst out of the 2 s window and the rule
    // resolves. Poll `/alerts` for each transition in the event log.
    let poll_alerts = |want: &str| -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let body = hetsyslog::obs::http_get(&metrics_addr.to_string(), "/alerts")
                .expect("scrape /alerts");
            if body.contains(want) || Instant::now() >= deadline {
                return body;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    let alerts_firing = poll_alerts("\"transition\":\"firing\"");
    assert!(
        alerts_firing.contains("\"name\":\"ingest_active\"")
            && alerts_firing.contains("\"transition\":\"firing\""),
        "seeded threshold rule never fired: {alerts_firing}"
    );
    let alerts_resolved = poll_alerts("\"transition\":\"resolved\"");
    assert!(
        alerts_resolved.contains("\"transition\":\"resolved\""),
        "seeded threshold rule never resolved: {alerts_resolved}"
    );

    if std::env::args().any(|a| a == "--hold") {
        println!("holding for 60s — try: curl http://{metrics_addr}/metrics");
        std::thread::sleep(Duration::from_secs(60));
    }

    let health = listener.health().expect("service attached");
    let dead = listener.dead_letters().snapshot();
    let per_source = listener.stats().per_source();
    let report = listener.shutdown();

    println!("ingest:   {report:#?}");
    println!("\nper-source frame counts:");
    for (id, counters) in per_source {
        let name = if id == 0 {
            "udp".to_string()
        } else {
            format!("tcp conn {id}")
        };
        println!(
            "  {name:<12} {} frames, {} bytes",
            counters.frames, counters.bytes
        );
    }
    println!("\nclassified categories (via MonitorService):");
    for c in Category::ALL {
        let n = health.monitor.count(c);
        if n > 0 {
            println!("  {:<28} {n}", format!("{c:?}"));
        }
    }
    println!("\ndead letters retained: {}", dead.len());
    for letter in dead.iter().take(5) {
        println!(
            "  [{}] conn {}: {:?}",
            letter.reason.as_str(),
            letter.source,
            letter.frame
        );
    }
    println!("\nstore holds {} records", store.len());
    println!("\n--- /alerts (burst inside the rate window) ---\n{alerts_firing}");
    println!("\n--- /alerts (after calm) ---\n{alerts_resolved}");
    println!("\n--- /metrics scrape ---\n{exposition}");
}
