//! Offline shim for a bounded single-producer/single-consumer ring with a
//! batch-steal side door — the per-shard queue primitive of the sharded
//! live pipeline.
//!
//! Each pipeline shard owns exactly one [`RingProducer`] (fed by the
//! connections hashed to that shard) and one [`RingConsumer`] (its batch
//! worker). Neither handle is `Clone`, so the single-producer /
//! single-consumer discipline is enforced by the type system; the only
//! sanctioned third party is a [`RingStealer`], which claims a whole
//! contiguous run of items from the *front* of the ring in one critical
//! section, so an idle sibling worker can take a full batch off a skewed
//! shard without interleaving frames.
//!
//! Like every shim in this workspace, the implementation favors
//! correctness over micro-optimization: the ring is a `Mutex<VecDeque>`
//! with two condvars, and every operation is *batch-shaped* (one critical
//! section per `push_many`/`drain_into`/`steal_into`, not per item). The
//! structural win the pipeline takes from it — N independent queues, so
//! producers and consumers of different shards never touch the same lock —
//! is real regardless; the real crossbeam SPSC ring would only lower the
//! constant.

use crate::channel::DrainStatus;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

pub use crate::channel::{RecvError, RecvTimeoutError, SendError, TrySendError};

struct RingState<T> {
    queue: VecDeque<T>,
    producer_alive: bool,
    consumer_alive: bool,
}

struct RingShared<T> {
    state: Mutex<RingState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> RingShared<T> {
    /// Wake the producer after `freed` slots opened up. One slot wakes one
    /// parked `push`; more than one must wake everything parked, or a
    /// producer blocked in `push_many` mid-batch could strand (the
    /// lost-wakeup shape audited in the MPMC shim's `drain_into`).
    fn notify_freed(&self, freed: usize) {
        match freed {
            0 => {}
            1 => {
                self.not_full.notify_one();
            }
            _ => self.not_full.notify_all(),
        }
    }
}

/// The sending half: exactly one per ring.
pub struct RingProducer<T> {
    shared: Arc<RingShared<T>>,
}

/// The receiving half: exactly one per ring.
pub struct RingConsumer<T> {
    shared: Arc<RingShared<T>>,
}

/// A cloneable side door that claims contiguous batches from the front of
/// the ring without blocking. Stealers never keep a ring alive: liveness
/// is decided by the producer and consumer handles alone.
pub struct RingStealer<T> {
    shared: Arc<RingShared<T>>,
}

impl<T> Clone for RingStealer<T> {
    fn clone(&self) -> Self {
        RingStealer {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Create a bounded SPSC ring holding at most `cap` in-flight items.
pub fn ring<T>(cap: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let shared = Arc::new(RingShared {
        state: Mutex::new(RingState {
            queue: VecDeque::with_capacity(cap.max(1)),
            producer_alive: true,
            consumer_alive: true,
        }),
        capacity: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
        },
        RingConsumer { shared },
    )
}

impl<T> RingProducer<T> {
    /// Block until there is room, then enqueue. Errors once the consumer
    /// is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if !state.consumer_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_all();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Enqueue without blocking; hands the value back when the ring is
    /// full (load shedding) or the consumer is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.consumer_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        self.shared.not_empty.notify_all();
        Ok(())
    }

    /// Enqueue every item, blocking whenever the ring is full: each run of
    /// free capacity is filled in one critical section with one
    /// notification. Errors once the consumer is gone; items pushed before
    /// the hangup stay queued.
    pub fn send_many(&self, items: impl IntoIterator<Item = T>) -> Result<(), SendError<()>> {
        let mut items = items.into_iter().peekable();
        if items.peek().is_none() {
            return Ok(());
        }
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if !state.consumer_alive {
                return Err(SendError(()));
            }
            let mut pushed = false;
            while state.queue.len() < self.shared.capacity {
                match items.next() {
                    Some(value) => {
                        state.queue.push_back(value);
                        pushed = true;
                    }
                    None => break,
                }
            }
            if pushed {
                self.shared.not_empty.notify_all();
            }
            if items.peek().is_none() {
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Enqueue as many items as fit right now and hand back the overflow
    /// tail (for dead-letter accounting), in one critical section. Errors
    /// with every item returned once the consumer is gone.
    pub fn try_send_many(
        &self,
        items: impl IntoIterator<Item = T>,
    ) -> Result<Vec<T>, SendError<Vec<T>>> {
        let mut items = items.into_iter();
        let mut state = self.shared.state.lock().unwrap();
        if !state.consumer_alive {
            return Err(SendError(items.collect()));
        }
        let mut pushed = false;
        while state.queue.len() < self.shared.capacity {
            match items.next() {
                Some(value) => {
                    state.queue.push_back(value);
                    pushed = true;
                }
                None => break,
            }
        }
        if pushed {
            self.shared.not_empty.notify_all();
        }
        drop(state);
        Ok(items.collect())
    }

    /// Items currently queued (a snapshot; racy by nature).
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.producer_alive = false;
        // Wake the consumer (and any stealer-coordinating waiters) so they
        // observe the hangup.
        self.shared.not_empty.notify_all();
    }
}

impl<T> RingConsumer<T> {
    /// Block until an item arrives. Errors once the ring is empty and the
    /// producer has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.notify_freed(1);
                return Ok(value);
            }
            if !state.producer_alive {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Block until an item arrives or `deadline` passes. Items already
    /// queued are always delivered, even after the producer hung up.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.notify_freed(1);
                return Ok(value);
            }
            if !state.producer_alive {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap();
            state = guard;
        }
    }

    /// Deadline-bounded batch drain with the exact semantics of the MPMC
    /// shim's `Receiver::drain_into`: append to `buf` until it holds `max`
    /// items, `deadline` passes, or the producer hangs up — draining
    /// whatever is queued first, so a graceful shutdown loses nothing.
    /// Every run of queued items moves in one critical section.
    pub fn drain_into(&self, buf: &mut Vec<T>, max: usize, deadline: Instant) -> DrainStatus {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            let before = buf.len();
            while buf.len() < max {
                match state.queue.pop_front() {
                    Some(value) => buf.push(value),
                    None => break,
                }
            }
            self.shared.notify_freed(buf.len() - before);
            if buf.len() >= max {
                return DrainStatus::Filled;
            }
            if !state.producer_alive {
                return DrainStatus::Disconnected;
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return DrainStatus::DeadlineExpired;
            };
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap();
            state = guard;
        }
    }

    /// A cloneable steal handle over this ring, for sibling workers.
    pub fn stealer(&self) -> RingStealer<T> {
        RingStealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Items currently queued (a snapshot; racy by nature).
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.consumer_alive = false;
        // Wake producers parked in send/send_many so they observe the
        // hangup.
        self.shared.not_full.notify_all();
    }
}

impl<T> RingStealer<T> {
    /// Claim up to `max` items from the *front* of the ring in one
    /// critical section, never blocking. The claim is contiguous and FIFO,
    /// so per-producer item order is preserved at claim granularity: a
    /// stolen batch holds strictly older items than anything the owner
    /// drains afterwards. Returns the number of items claimed (0 when the
    /// ring is empty or already disconnected and drained).
    pub fn steal_into(&self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut state = self.shared.state.lock().unwrap();
        let before = buf.len();
        while buf.len() - before < max {
            match state.queue.pop_front() {
                Some(value) => buf.push(value),
                None => break,
            }
        }
        let stolen = buf.len() - before;
        self.shared.notify_freed(stolen);
        stolen
    }

    /// Items currently queued (for picking the deepest victim).
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn soon(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn push_pop_roundtrip_in_order() {
        let (tx, rx) = ring::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_deadline(soon(100)), Ok(1));
        assert_eq!(rx.recv_deadline(soon(100)), Ok(2));
        assert_eq!(rx.recv_deadline(soon(10)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn try_send_sheds_when_full_and_overflow_tail_is_returned() {
        let (tx, rx) = ring::<u32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let rejected = tx.try_send_many(10..15).unwrap();
        assert_eq!(rejected, vec![10, 11, 12, 13, 14]);
        assert_eq!(rx.recv_deadline(soon(100)), Ok(1));
        assert_eq!(tx.try_send_many(20..22).unwrap(), vec![21]);
    }

    #[test]
    fn consumer_drop_disconnects_producer() {
        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert!(tx.send(7).is_err());
        assert!(matches!(tx.try_send(8), Err(TrySendError::Disconnected(8))));
        assert!(tx.send_many(0..3).is_err());
    }

    #[test]
    fn producer_drop_flushes_backlog_then_disconnects() {
        let (tx, rx) = ring::<u32>(8);
        tx.send_many(0..3).unwrap();
        drop(tx);
        let mut buf = Vec::new();
        let status = rx.drain_into(&mut buf, 8, soon(10_000));
        assert_eq!(status, DrainStatus::Disconnected);
        assert_eq!(buf, vec![0, 1, 2]);
        assert_eq!(
            rx.recv_deadline(soon(100)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn drain_into_fills_to_max_and_leaves_the_rest() {
        let (tx, rx) = ring::<u32>(8);
        tx.send_many(0..6).unwrap();
        let mut buf = Vec::new();
        assert_eq!(rx.drain_into(&mut buf, 4, soon(5_000)), DrainStatus::Filled);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn steal_claims_contiguous_front_batch() {
        let (tx, rx) = ring::<u32>(16);
        tx.send_many(0..10).unwrap();
        let stealer = rx.stealer();
        let mut stolen = Vec::new();
        assert_eq!(stealer.steal_into(&mut stolen, 4), 4);
        assert_eq!(stolen, vec![0, 1, 2, 3], "oldest items, in order");
        // The owner's next drain sees strictly newer items.
        let mut own = Vec::new();
        assert_eq!(
            rx.drain_into(&mut own, 16, soon(10)),
            DrainStatus::DeadlineExpired
        );
        assert_eq!(own, vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(stealer.steal_into(&mut stolen, 4), 0, "nothing left");
    }

    #[test]
    fn steal_unblocks_a_parked_producer() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || tx.send_many(2..6).is_ok());
        std::thread::sleep(Duration::from_millis(30));
        let stealer = rx.stealer();
        let mut got = Vec::new();
        // Two steals + drains must be enough to pass all 6 items through a
        // 2-deep ring, with the producer woken by the stealer's free-ups.
        while got.len() < 6 {
            if stealer.steal_into(&mut got, 2) == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert!(producer.join().unwrap());
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn stealers_do_not_keep_a_ring_alive() {
        let (tx, rx) = ring::<u32>(4);
        let stealer = rx.stealer();
        drop(rx);
        assert!(
            tx.send(1).is_err(),
            "stealer alone must not count as a consumer"
        );
        let mut buf = Vec::new();
        assert_eq!(stealer.steal_into(&mut buf, 4), 0);
    }
}
