//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::bounded` — a blocking, cloneable MPMC
//! channel built on a `Mutex<VecDeque>` ring plus two condvars. Semantics
//! match the crossbeam subset the workspace relies on: `send` blocks while
//! the buffer is full, errors once all receivers are gone, and `Receiver::iter`
//! drains until every sender has hung up.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value is handed back.
        Full(T),
        /// Every receiver has been dropped; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True when the failure was a full buffer (overload, not hangup).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still exist).
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// Why a [`Receiver::drain_into`] call stopped filling its batch.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum DrainStatus {
        /// The batch reached `max` items before the deadline.
        Filled,
        /// The deadline passed first; the batch holds whatever arrived.
        DeadlineExpired,
        /// Every sender hung up; the batch holds everything that was left
        /// in the queue (nothing is lost on the way out).
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// Create a bounded channel holding at most `cap` in-flight items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                senders: 1,
                receivers: 1,
            }),
            capacity: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `value`. Errors if every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Enqueue without blocking; fails immediately when the buffer is
        /// full (load-shedding) or every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue every item, blocking whenever the buffer is full. The
        /// producer-side mirror of [`Receiver::drain_into`]: each run of
        /// free capacity is filled in ONE critical section with ONE
        /// `not_empty` notification, instead of a lock + notify per item.
        /// Errors once every receiver is gone; items pushed before the
        /// hangup stay queued (and are lost with the channel, exactly as
        /// with per-item `send`).
        pub fn send_many(&self, items: impl IntoIterator<Item = T>) -> Result<(), SendError<()>> {
            let mut items = items.into_iter().peekable();
            if items.peek().is_none() {
                return Ok(());
            }
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(()));
                }
                let mut pushed = false;
                while state.queue.len() < self.shared.capacity {
                    match items.next() {
                        Some(value) => {
                            state.queue.push_back(value);
                            pushed = true;
                        }
                        None => break,
                    }
                }
                if pushed {
                    // A bulk push can satisfy many parked receivers at once.
                    self.shared.not_empty.notify_all();
                }
                if items.peek().is_none() {
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Enqueue as many items as fit right now, without blocking, and
        /// hand back the overflow. One critical section for the whole
        /// batch. The load-shedding mirror of [`Sender::send_many`]: the
        /// caller owns the rejected tail (for dead-letter accounting).
        /// Errors with all items returned once every receiver is gone.
        pub fn try_send_many(
            &self,
            items: impl IntoIterator<Item = T>,
        ) -> Result<Vec<T>, SendError<Vec<T>>> {
            let mut items = items.into_iter();
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(items.collect()));
            }
            let mut pushed = false;
            while state.queue.len() < self.shared.capacity {
                match items.next() {
                    Some(value) => {
                        state.queue.push_back(value);
                        pushed = true;
                    }
                    None => break,
                }
            }
            if pushed {
                self.shared.not_empty.notify_all();
            }
            drop(state);
            Ok(items.collect())
        }

        /// Items currently queued (a snapshot; racy by nature).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when no items are queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's fixed capacity.
        pub fn capacity(&self) -> usize {
            self.shared.capacity
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers parked in recv so they observe the hangup.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives. Errors once the channel is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Pop an item without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Block until an item arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Block until an item arrives or `deadline` passes. Items already
        /// queued are always delivered, even past the deadline or after
        /// every sender hung up.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap();
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Deadline-bounded batch drain: append received items to `buf`
        /// until it holds `max` items, `deadline` passes, or every sender
        /// hangs up — whichever comes first. The returned [`DrainStatus`]
        /// says which. Items already queued at hangup are still drained
        /// (up to `max`), so a graceful producer shutdown loses nothing.
        ///
        /// Everything already queued is moved in ONE critical section per
        /// wakeup — not one lock acquisition per item — so a worker pulling
        /// 64-frame batches touches the channel mutex ~64x less often than
        /// a `recv` loop. This is where micro-batching's synchronization
        /// win comes from.
        ///
        /// This is the fill stage of a drain-up-to-B-or-deadline-T
        /// micro-batching loop: block on [`Receiver::recv`] for the first
        /// item, then `drain_into` the rest of the batch.
        pub fn drain_into(&self, buf: &mut Vec<T>, max: usize, deadline: Instant) -> DrainStatus {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                let before = buf.len();
                while buf.len() < max {
                    match state.queue.pop_front() {
                        Some(value) => buf.push(value),
                        None => break,
                    }
                }
                match buf.len() - before {
                    0 => {}
                    // One freed slot satisfies exactly one parked sender;
                    // notify_all here would be a thundering herd (everyone
                    // else finds the queue full again and re-parks).
                    1 => {
                        self.shared.not_full.notify_one();
                    }
                    // More than one slot freed must wake every parked
                    // sender. notify_one strands the rest: a woken scalar
                    // `send` pushes one item and notifies only `not_empty`,
                    // so if the drainer goes off to process its batch (or
                    // exits), senders 2..k sleep beside free capacity until
                    // the next drain — a lost wakeup, not a herd. The herd
                    // cost is bounded by the freed run: at most `freed`
                    // senders find room, the rest re-park once.
                    _ => self.shared.not_full.notify_all(),
                }
                if buf.len() >= max {
                    return DrainStatus::Filled;
                }
                if state.senders == 0 {
                    return DrainStatus::Disconnected;
                }
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    return DrainStatus::DeadlineExpired;
                };
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap();
                state = guard;
            }
        }

        /// Blocking iterator over received items; ends when the channel is
        /// empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Items currently queued (a snapshot; racy by nature).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when no items are queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's fixed capacity.
        pub fn capacity(&self) -> usize {
            self.shared.capacity
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake senders parked in send so they observe the hangup.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod spsc;

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_fanout_drains_everything() {
        let (tx, rx) = channel::bounded::<usize>(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn try_send_sheds_when_full() {
        let (tx, rx) = channel::bounded::<u8>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        match tx.try_send(3) {
            Err(channel::TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(2);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn drain_into_times_out_on_empty_queue() {
        let (_tx, rx) = channel::bounded::<u8>(4);
        let mut buf = Vec::new();
        let t0 = std::time::Instant::now();
        let status = rx.drain_into(
            &mut buf,
            4,
            std::time::Instant::now() + std::time::Duration::from_millis(30),
        );
        assert_eq!(status, channel::DrainStatus::DeadlineExpired);
        assert!(buf.is_empty());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
    }

    #[test]
    fn drain_into_partial_fill_stops_at_deadline() {
        let (tx, rx) = channel::bounded::<u8>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let mut buf = Vec::new();
        let status = rx.drain_into(
            &mut buf,
            8,
            std::time::Instant::now() + std::time::Duration::from_millis(20),
        );
        assert_eq!(status, channel::DrainStatus::DeadlineExpired);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn drain_into_fills_to_max_and_leaves_the_rest() {
        let (tx, rx) = channel::bounded::<u8>(8);
        for v in 0..6 {
            tx.send(v).unwrap();
        }
        let mut buf = Vec::new();
        let status = rx.drain_into(
            &mut buf,
            4,
            std::time::Instant::now() + std::time::Duration::from_secs(5),
        );
        assert_eq!(status, channel::DrainStatus::Filled);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Ok(4), "items beyond max stay queued");
    }

    #[test]
    fn drain_into_disconnected_sender_flushes_backlog() {
        let (tx, rx) = channel::bounded::<u8>(8);
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        let mut buf = Vec::new();
        // A far deadline: disconnection must end the drain, not the clock,
        // and the queued backlog must be flushed first (lossless drain).
        let t0 = std::time::Instant::now();
        let status = rx.drain_into(
            &mut buf,
            8,
            std::time::Instant::now() + std::time::Duration::from_secs(30),
        );
        assert_eq!(status, channel::DrainStatus::Disconnected);
        assert_eq!(buf, vec![7, 8]);
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn drain_into_wakes_promptly_when_sender_hangs_up_mid_wait() {
        let (tx, rx) = channel::bounded::<u8>(4);
        let waiter = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let status = rx.drain_into(
                &mut buf,
                4,
                std::time::Instant::now() + std::time::Duration::from_secs(30),
            );
            (status, buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        tx.send(3).unwrap();
        drop(tx);
        let (status, buf) = waiter.join().unwrap();
        assert_eq!(status, channel::DrainStatus::Disconnected);
        assert_eq!(buf, vec![3]);
    }

    #[test]
    fn drain_into_wakes_every_sender_the_freed_slots_can_satisfy() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        // Three scalar senders park on a full 3-deep channel. One drain
        // frees all 3 slots at once; every parked sender must complete
        // without another drain happening. Under the old notify_one wakeup
        // only one sender woke (its push notifies not_empty, nobody else),
        // leaving two asleep beside free capacity.
        let (tx, rx) = channel::bounded::<u8>(3);
        for v in 0..3 {
            tx.send(v).unwrap();
        }
        let completed = Arc::new(AtomicUsize::new(0));
        let senders: Vec<_> = (0..3)
            .map(|v| {
                let tx = tx.clone();
                let completed = Arc::clone(&completed);
                std::thread::spawn(move || {
                    tx.send(10 + v).unwrap();
                    completed.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // Let all three senders reach the full queue and park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(
            completed.load(Ordering::SeqCst),
            0,
            "senders must be parked"
        );

        let mut buf = Vec::new();
        let status = rx.drain_into(
            &mut buf,
            3,
            std::time::Instant::now() + std::time::Duration::from_millis(200),
        );
        assert_eq!(status, channel::DrainStatus::Filled);
        assert_eq!(buf, vec![0, 1, 2]);

        // No further drains: the single notify round must be enough.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while completed.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(
            completed.load(Ordering::SeqCst),
            3,
            "a drain freeing 3 slots must wake all 3 parked senders"
        );
        for s in senders {
            s.join().unwrap();
        }
        let mut rest: Vec<u8> = (0..3).map(|_| rx.recv().unwrap()).collect();
        rest.sort_unstable();
        assert_eq!(rest, vec![10, 11, 12]);
    }

    #[test]
    fn send_many_blocks_until_capacity_frees_and_delivers_in_order() {
        let (tx, rx) = channel::bounded::<u8>(2);
        let producer = std::thread::spawn(move || tx.send_many(0..6).is_ok());
        let mut got = Vec::new();
        for _ in 0..6 {
            got.push(rx.recv().unwrap());
        }
        assert!(producer.join().unwrap());
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn send_many_errors_when_receivers_gone() {
        let (tx, rx) = channel::bounded::<u8>(2);
        drop(rx);
        assert!(tx.send_many(0..3).is_err());
        assert!(
            tx.send_many(std::iter::empty()).is_ok(),
            "empty batch is a no-op"
        );
    }

    #[test]
    fn try_send_many_returns_overflow_tail() {
        let (tx, rx) = channel::bounded::<u8>(3);
        let rejected = tx.try_send_many(0..5).unwrap();
        assert_eq!(rejected, vec![3, 4], "first 3 fit, tail handed back");
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(tx.try_send_many(10..11).unwrap(), Vec::<u8>::new());
        drop(rx);
        assert_eq!(
            tx.try_send_many(20..22),
            Err(channel::SendError(vec![20, 21]))
        );
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(20)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
