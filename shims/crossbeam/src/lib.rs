//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::bounded` — a blocking, cloneable MPMC
//! channel built on a `Mutex<VecDeque>` ring plus two condvars. Semantics
//! match the crossbeam subset the workspace relies on: `send` blocks while
//! the buffer is full, errors once all receivers are gone, and `Receiver::iter`
//! drains until every sender has hung up.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value is handed back.
        Full(T),
        /// Every receiver has been dropped; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True when the failure was a full buffer (overload, not hangup).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// Create a bounded channel holding at most `cap` in-flight items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                senders: 1,
                receivers: 1,
            }),
            capacity: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `value`. Errors if every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Enqueue without blocking; fails immediately when the buffer is
        /// full (load-shedding) or every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers parked in recv so they observe the hangup.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives. Errors once the channel is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Block until an item arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap();
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator over received items; ends when the channel is
        /// empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake senders parked in send so they observe the hangup.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_fanout_drains_everything() {
        let (tx, rx) = channel::bounded::<usize>(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn try_send_sheds_when_full() {
        let (tx, rx) = channel::bounded::<u8>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        match tx.try_send(3) {
            Err(channel::TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(20)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
