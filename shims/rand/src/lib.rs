//! Offline shim for `rand` 0.8.
//!
//! Implements the trait surface the workspace uses — `RngCore`, `Rng`
//! (`gen_range` over integer/float `Range`/`RangeInclusive`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, and `seq::SliceRandom::shuffle`/`choose`.
//! Streams are deterministic per seed but make no bit-compatibility claim
//! against the upstream crate; the workspace only ever compares same-seed
//! runs of itself to each other.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`, ints or floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a uniform value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_word(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}

impl Standard for u16 {
    fn from_word(word: u64) -> Self {
        word as u16
    }
}

impl Standard for u8 {
    fn from_word(word: u64) -> Self {
        word as u8
    }
}

impl Standard for u32 {
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_word(word: u64) -> Self {
        unit_f64(word)
    }
}

impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word >> 63 == 1
    }
}

/// Uniform f64 in `[0, 1)` from a raw word (53 mantissa bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from; receives one raw word.
pub trait SampleRange<T> {
    fn sample_from(self, word: u64) -> T;
}

/// Types with uniform range sampling. A single generic `SampleRange` impl
/// hangs off this (mirroring rand), which is what lets integer literals in
/// `gen_range(0..n)` unify with the usage site's type.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between(lo: Self, hi: Self, inclusive: bool, word: u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, word: u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, word)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, word: u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, word)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, word: u64) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                (lo as i128 + (word as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, _inclusive: bool, word: u64) -> Self {
                lo + (unit_f64(word) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Seedable generator construction (`SeedableRng::seed_from_u64` subset).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64, as rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extension methods (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic PRNG (xorshift*), used as the shim's
    /// stand-in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> Self {
            let state = u64::from_le_bytes(seed) | 1;
            StdRng { state }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&b));
            let f = rng.gen_range(0.5f64..3.0);
            assert!((0.5..3.0).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
