//! Offline shim for `criterion`.
//!
//! A minimal wall-clock timing harness exposing the API subset the bench
//! binaries use. Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window; mean time per iteration
//! (and throughput, when configured) is printed to stdout. No statistics,
//! plots, or baselines — the point is that `cargo bench` compiles and gives
//! usable relative numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(700);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Input-handling hints for `iter_batched`; the shim treats all the same.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function<I: AsRef<str>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: AsRef<str>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
        mode: Mode::Warmup,
    };
    // Warmup: run until the warmup window has elapsed.
    let warmup_start = Instant::now();
    while warmup_start.elapsed() < WARMUP {
        f(&mut bencher);
    }
    bencher.total = Duration::ZERO;
    bencher.iterations = 0;
    bencher.mode = Mode::Measure;
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASURE {
        f(&mut bencher);
    }
    if bencher.iterations == 0 {
        println!("  {id}: no iterations recorded");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.0} elem/s)", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("  {id}: {}{rate}", format_duration(per_iter));
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s/iter")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms/iter", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs/iter", seconds * 1e6)
    } else {
        format!("{:.1} ns/iter", seconds * 1e9)
    }
}

#[derive(PartialEq)]
enum Mode {
    Warmup,
    Measure,
}

/// Passed to each benchmark closure; measures the timed routine.
pub struct Bencher {
    total: Duration,
    iterations: u64,
    mode: Mode,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        if self.mode == Mode::Measure {
            self.total += elapsed;
            self.iterations += 1;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let elapsed = start.elapsed();
        if self.mode == Mode::Measure {
            self.total += elapsed;
            self.iterations += 1;
        }
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }
}
