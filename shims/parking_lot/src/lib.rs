//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` calling convention
//! (no lock poisoning: a poisoned lock is recovered transparently, matching
//! parking_lot's behavior of never poisoning).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (`parking_lot::Mutex` API subset).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock (`parking_lot::RwLock` API subset).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
