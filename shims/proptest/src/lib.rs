//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness: each `proptest!` test runs a
//! fixed number of cases with inputs drawn from `Strategy` values, seeded
//! from the test's file and name so failures reproduce exactly. No
//! shrinking — a failing case reports its case number and assertion text.
//!
//! Covered surface: `proptest! { #![proptest_config(...)] #[test] fn t(x in
//! strategy, ...) { ... } }`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, integer/float range strategies, regex-subset string
//! strategies, tuple strategies, `proptest::collection::vec`, and
//! `Strategy::prop_map`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod strings;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case; returned by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case random source (SplitMix64 stream).
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    pub fn from_seed(seed: u64) -> TestRunner {
        TestRunner {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, bound)`; bound must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drive one `proptest!` test: run `config.cases` deterministic cases.
pub fn run_proptest<F>(config: &ProptestConfig, file: &str, name: &str, mut case_fn: F)
where
    F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let seed = fnv1a(file.as_bytes())
            .wrapping_mul(31)
            .wrapping_add(fnv1a(name.as_bytes()))
            .wrapping_add(case as u64);
        let mut runner = TestRunner::from_seed(seed);
        if let Err(error) = case_fn(&mut runner) {
            panic!(
                "proptest {name} failed at case {case}/{}: {error}",
                config.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, map }
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<S, F> {
    base: S,
    map: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.map)(self.base.generate(runner))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (runner.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (runner.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (runner.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (runner.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// String literals are regex-subset strategies, as in proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        strings::generate_matching(self, runner)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]; concrete `From` impls pin the integer
    /// literals in `vec(elem, 1..8)` to `usize` (mirroring proptest).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_inclusive: len,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "proptest shim: empty size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(
                range.start() <= range.end(),
                "proptest shim: empty size range"
            );
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    impl SizeRange {
        fn generate(&self, runner: &mut TestRunner) -> usize {
            self.min + runner.below(self.max_inclusive - self.min + 1)
        }
    }

    /// Vec strategy: `size` gives the length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.generate(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(arg in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(&$config, file!(), stringify!($name), |__runner| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __runner);)+
                let __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert within a proptest body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect bounds; tuple and vec compose.
        #[test]
        fn strategy_bounds(
            n in 3u32..12,
            pairs in collection::vec((0u32..64, -10.0f64..10.0), 0..16),
        ) {
            prop_assert!((3..12).contains(&n));
            prop_assert!(pairs.len() < 16);
            for (i, v) in pairs {
                prop_assert!(i < 64);
                prop_assert!((-10.0..10.0).contains(&v), "v out of range: {v}");
            }
        }

        /// prop_map applies the function.
        #[test]
        fn map_applies(x in (1usize..5).prop_map(|v| v * 10)) {
            prop_assert!(x % 10 == 0 && (10..50).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRunner::from_seed(9);
        let mut b = TestRunner::from_seed(9);
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
