//! Regex-subset string generation for string-literal strategies.
//!
//! Supports the constructs the workspace's patterns use: literal characters,
//! `.` (any char except newline), character classes `[a-z_0-9]`/`[ -~]`,
//! groups `( ... )`, and the quantifiers `{n}`, `{n,m}`, `?`, `+`, `*`.

use crate::TestRunner;

enum Node {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
    Group(Vec<(Node, Quant)>),
}

#[derive(Clone, Copy)]
struct Quant {
    min: usize,
    max: usize,
}

const UNBOUNDED_CAP: usize = 8;

pub fn generate_matching(pattern: &str, runner: &mut TestRunner) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let nodes = parse_sequence(pattern, &chars, &mut pos, false);
    assert!(
        pos == chars.len(),
        "proptest shim: unsupported regex `{pattern}` (stopped at {pos})"
    );
    let mut out = String::new();
    emit_sequence(&nodes, runner, &mut out);
    out
}

fn parse_sequence(
    pattern: &str,
    chars: &[char],
    pos: &mut usize,
    in_group: bool,
) -> Vec<(Node, Quant)> {
    let mut nodes = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        if c == ')' && in_group {
            break;
        }
        let node = match c {
            '.' => {
                *pos += 1;
                Node::AnyChar
            }
            '[' => {
                *pos += 1;
                Node::Class(parse_class(pattern, chars, pos))
            }
            '(' => {
                *pos += 1;
                let inner = parse_sequence(pattern, chars, pos, true);
                assert!(
                    chars.get(*pos) == Some(&')'),
                    "proptest shim: unclosed group in `{pattern}`"
                );
                *pos += 1;
                Node::Group(inner)
            }
            '\\' => {
                *pos += 1;
                let escaped = *chars
                    .get(*pos)
                    .unwrap_or_else(|| panic!("proptest shim: dangling escape in `{pattern}`"));
                *pos += 1;
                match escaped {
                    'n' => Node::Literal('\n'),
                    'r' => Node::Literal('\r'),
                    't' => Node::Literal('\t'),
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Node::Literal(other),
                }
            }
            other => {
                *pos += 1;
                Node::Literal(other)
            }
        };
        let quant = parse_quantifier(pattern, chars, pos);
        nodes.push((node, quant));
    }
    nodes
}

fn parse_class(pattern: &str, chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    assert!(
        chars.get(*pos) != Some(&'^'),
        "proptest shim: negated classes unsupported in `{pattern}`"
    );
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = chars[*pos];
        *pos += 1;
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            let hi = chars[*pos + 1];
            *pos += 2;
            assert!(lo <= hi, "proptest shim: bad class range in `{pattern}`");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        chars.get(*pos) == Some(&']'),
        "proptest shim: unclosed class in `{pattern}`"
    );
    *pos += 1;
    assert!(
        !ranges.is_empty(),
        "proptest shim: empty class in `{pattern}`"
    );
    ranges
}

fn parse_quantifier(pattern: &str, chars: &[char], pos: &mut usize) -> Quant {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Quant { min: 0, max: 1 }
        }
        Some('+') => {
            *pos += 1;
            Quant {
                min: 1,
                max: UNBOUNDED_CAP,
            }
        }
        Some('*') => {
            *pos += 1;
            Quant {
                min: 0,
                max: UNBOUNDED_CAP,
            }
        }
        Some('{') => {
            *pos += 1;
            let mut min = 0usize;
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                min = min * 10 + chars[*pos].to_digit(10).unwrap() as usize;
                *pos += 1;
            }
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut max = 0usize;
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    max = max * 10 + chars[*pos].to_digit(10).unwrap() as usize;
                    *pos += 1;
                }
                max
            } else {
                min
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "proptest shim: unclosed quantifier in `{pattern}`"
            );
            *pos += 1;
            assert!(min <= max, "proptest shim: bad quantifier in `{pattern}`");
            Quant { min, max }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

fn emit_sequence(nodes: &[(Node, Quant)], runner: &mut TestRunner, out: &mut String) {
    for (node, quant) in nodes {
        let reps = if quant.max > quant.min {
            quant.min + runner.below(quant.max - quant.min + 1)
        } else {
            quant.min
        };
        for _ in 0..reps {
            emit_node(node, runner, out);
        }
    }
}

fn emit_node(node: &Node, runner: &mut TestRunner, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => out.push(any_char(runner)),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = runner.below(total as usize) as u32;
            for &(lo, hi) in ranges {
                let width = hi as u32 - lo as u32 + 1;
                if pick < width {
                    // Class ranges in the workspace's patterns never span the
                    // surrogate gap, so this conversion always succeeds.
                    out.push(char::from_u32(lo as u32 + pick).expect("class range hit surrogate"));
                    return;
                }
                pick -= width;
            }
            unreachable!("class pick out of range");
        }
        Node::Group(inner) => emit_sequence(inner, runner, out),
    }
}

/// `.`: any char except `\n` — mostly printable ASCII, with control, BMP and
/// astral characters mixed in to exercise robustness.
fn any_char(runner: &mut TestRunner) -> char {
    loop {
        let roll = runner.below(100);
        let candidate = if roll < 70 {
            char::from_u32(0x20 + runner.below(0x5F) as u32)
        } else if roll < 80 {
            char::from_u32(runner.below(0x20) as u32)
        } else if roll < 95 {
            char::from_u32(runner.below(0xFFFF) as u32)
        } else {
            char::from_u32(0x1_0000 + runner.below(0x10_000) as u32)
        };
        match candidate {
            Some('\n') | None => continue,
            Some(c) => return c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        let mut runner = TestRunner::from_seed(seed);
        generate_matching(pattern, &mut runner)
    }

    #[test]
    fn fixed_and_bounded_repeats() {
        for seed in 0..200 {
            let s = gen("[a-c]{0,12}", seed);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));

            let t = gen("<[0-9]{1,3}>[ -~]{1,60}", seed);
            assert!(t.starts_with('<'));
            let close = t.find('>').unwrap();
            assert!((2..=4).contains(&close));
            assert!(t[1..close].chars().all(|c| c.is_ascii_digit()));
            assert!(t.len() > close + 1);
        }
    }

    #[test]
    fn groups_and_classes() {
        for seed in 0..100 {
            let s = gen("[a-z]{1,6}( [a-z]{1,6}){0,8}", seed);
            for word in s.split(' ') {
                assert!(!word.is_empty() && word.len() <= 6, "bad word in {s:?}");
                assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            }
            let u = gen("[a-z_0-9]{1,12}", seed);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    #[test]
    fn dot_never_newline() {
        for seed in 0..300 {
            let s = gen(".{1,40}", seed);
            assert!(!s.contains('\n'));
            assert!(!s.is_empty());
        }
    }
}
