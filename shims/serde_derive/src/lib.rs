//! Offline shim for `serde_derive`.
//!
//! Parses the deriving item directly from the `proc_macro` token stream (no
//! `syn`/`quote`) and emits impls for the serde shim's value-based traits.
//! Supported shapes — the ones this workspace uses:
//!
//! - named-field structs, with `#[serde(default)]` and `#[serde(skip)]`
//! - enums with any mix of unit variants (serialized as the variant-name
//!   string, explicit discriminants ignored), newtype variants and
//!   struct variants (externally tagged: `{"Variant": ...}`)

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => gen_struct_serialize(name, fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => gen_struct_deserialize(name, fields),
        (Item::Enum { name, variants }, Mode::Serialize) => gen_enum_serialize(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consume `#[...]` attributes; returns the serde flags seen.
    fn skip_attributes(&mut self) -> (bool, bool) {
        let (mut default, mut skip) = (false, false);
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(group)) = self.next() {
                let mut inner = Cursor::new(group.stream());
                if inner.at_ident("serde") {
                    inner.next();
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        for token in args.stream() {
                            if let TokenTree::Ident(flag) = token {
                                match flag.to_string().as_str() {
                                    "default" => default = true,
                                    "skip" => skip = true,
                                    other => panic!(
                                        "serde_derive shim: unsupported serde attribute `{other}`"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
        }
        (default, skip)
    }

    /// Consume `pub`, `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skip tokens until a top-level comma, tracking `<...>` depth so types
    /// like `Vec<(String, f64)>` survive. Consumes the comma.
    fn skip_past_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(token) = self.peek() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = match cursor.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    let name = match cursor.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    if cursor.at_punct('<') {
        panic!("serde_derive shim: generic types are not supported (deriving {name})");
    }
    let body = loop {
        match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => continue,
            None => {
                panic!("serde_derive shim: {name} has no braced body (tuple structs unsupported)")
            }
        }
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body.stream()),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while cursor.peek().is_some() {
        let (default, skip) = cursor.skip_attributes();
        cursor.skip_visibility();
        let raw_name = match cursor.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        let name = raw_name.strip_prefix("r#").unwrap_or(&raw_name).to_string();
        if !cursor.at_punct(':') {
            panic!("serde_derive shim: expected `:` after field `{name}`");
        }
        cursor.next();
        cursor.skip_past_comma();
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while cursor.peek().is_some() {
        cursor.skip_attributes();
        let name = match cursor.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields_in_payload = Cursor::new(g.stream())
                    .tokens
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ',' ))
                    .count();
                if fields_in_payload > 0 {
                    panic!("serde_derive shim: multi-field tuple variant `{name}` is unsupported");
                }
                cursor.next();
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                cursor.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= 3`) and the trailing comma.
        cursor.skip_past_comma();
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for field in fields.iter().filter(|f| !f.skip) {
        let f = &field.name;
        pushes.push_str(&format!(
            "__fields.push((\"{f}\".to_string(), serde::Serialize::to_json_value(&self.{f})));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::json::Value {{\n\
                 let mut __fields: Vec<(String, serde::json::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::json::Value::Object(__fields)\n\
             }}\n\
         }}\n"
    )
}

fn struct_body_expr(path: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for field in fields {
        let f = &field.name;
        let init = if field.skip {
            "Default::default()".to_string()
        } else if field.default {
            format!("serde::de::field_or_default({source}, \"{f}\")?")
        } else {
            format!("serde::de::field({source}, \"{f}\")?")
        };
        inits.push_str(&format!("{f}: {init},\n"));
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let body = struct_body_expr(name, fields, "__entries");
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_json_value(__value: &serde::json::Value) -> Result<Self, serde::json::Error> {{\n\
                 let __entries = serde::de::as_object(__value, \"{name}\")?;\n\
                 Ok({body})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "{name}::{v} => serde::json::Value::String(\"{v}\".to_string()),\n"
            )),
            VariantShape::Newtype => arms.push_str(&format!(
                "{name}::{v}(__inner) => serde::json::Value::Object(vec![(\
                 \"{v}\".to_string(), serde::Serialize::to_json_value(__inner))]),\n"
            )),
            VariantShape::Struct(fields) => {
                let mut pushes = String::new();
                let mut bindings = String::new();
                for field in fields.iter() {
                    let f = &field.name;
                    bindings.push_str(&format!("{f}, "));
                    if !field.skip {
                        pushes.push_str(&format!(
                            "__fields.push((\"{f}\".to_string(), serde::Serialize::to_json_value({f})));\n"
                        ));
                    }
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {bindings} }} => {{\n\
                         let mut __fields: Vec<(String, serde::json::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::json::Value::Object(vec![(\"{v}\".to_string(), serde::json::Value::Object(__fields))])\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::json::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut string_arms = String::new();
    let mut tagged_arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.shape {
            VariantShape::Unit => string_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n")),
            VariantShape::Newtype => tagged_arms.push_str(&format!(
                "\"{v}\" => Ok({name}::{v}(serde::de::from_value(__inner)?)),\n"
            )),
            VariantShape::Struct(fields) => {
                let body = struct_body_expr(&format!("{name}::{v}"), fields, "__entries");
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                         let __entries = serde::de::as_object(__inner, \"{name}::{v}\")?;\n\
                         Ok({body})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_json_value(__value: &serde::json::Value) -> Result<Self, serde::json::Error> {{\n\
                 match __value {{\n\
                     serde::json::Value::String(__s) => match __s.as_str() {{\n\
                         {string_arms}\
                         __other => Err(serde::json::Error::msg(format!(\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     serde::json::Value::Object(__entries_outer) if __entries_outer.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries_outer[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => Err(serde::json::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(serde::json::Error::msg(format!(\
                         \"invalid representation for enum {name}: {{}}\", __other.describe()))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
