//! Offline shim for `serde`.
//!
//! The data model is a JSON value tree ([`json::Value`]) rather than serde's
//! visitor machinery: `Serialize` renders to a `Value`, `Deserialize` reads
//! from one, and the derive macros in `serde_derive` generate both. The
//! `Deserializer` trait exists so hand-written impls in the workspace (which
//! delegate to a derived helper struct, then post-process) keep compiling
//! against the familiar signature.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasher;

use json::{Error, Number, Value};

/// Serialization to the shim's JSON data model.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Source of a borrowed [`Value`] during deserialization.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn value_ref(&self) -> &Value;
}

/// Deserialization from the shim's JSON data model.
///
/// The two methods default to each other: derived impls provide
/// `from_json_value`, hand-written impls typically provide `deserialize`.
/// Overriding at least one is required (overriding neither would recurse).
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Self::from_json_value(deserializer.value_ref()).map_err(de::Error::custom)
    }

    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Self::deserialize(de::ValueDeserializer { value })
    }
}

pub mod de {
    //! Deserialization support used by generated and hand-written impls.

    use super::json::{Error as JsonError, Value};
    use super::Deserialize;

    /// Error construction hook (`serde::de::Error` subset).
    pub trait Error: Sized {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for JsonError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            JsonError::msg(msg.to_string())
        }
    }

    /// A [`super::Deserializer`] over a borrowed [`Value`].
    ///
    /// Implements `Deserializer<'de>` for every `'de` independent of the
    /// borrow, so container impls can recurse without tying the trait
    /// lifetime to the value reference.
    pub struct ValueDeserializer<'a> {
        pub value: &'a Value,
    }

    impl<'a, 'de> super::Deserializer<'de> for ValueDeserializer<'a> {
        type Error = JsonError;

        fn value_ref(&self) -> &Value {
            self.value
        }
    }

    /// Deserialize a `T` out of a borrowed value.
    pub fn from_value<'de, T: Deserialize<'de>>(value: &Value) -> Result<T, JsonError> {
        T::deserialize(ValueDeserializer { value })
    }

    /// View a value as an object, with `context` naming the target type.
    pub fn as_object<'v>(
        value: &'v Value,
        context: &str,
    ) -> Result<&'v [(String, Value)], JsonError> {
        value.as_object().ok_or_else(|| {
            JsonError::msg(format!(
                "{context}: expected object, found {}",
                value.describe()
            ))
        })
    }

    static NULL: Value = Value::Null;

    /// Extract a struct field. A missing key is tolerated when the field
    /// type accepts `null` (e.g. `Option`), mirroring serde's behavior.
    pub fn field<'de, T: Deserialize<'de>>(
        fields: &[(String, Value)],
        name: &'static str,
    ) -> Result<T, JsonError> {
        match fields.iter().find(|(key, _)| key == name) {
            Some((_, value)) => {
                from_value(value).map_err(|e| JsonError::msg(format!("field `{name}`: {e}")))
            }
            None => {
                from_value(&NULL).map_err(|_| JsonError::msg(format!("missing field `{name}`")))
            }
        }
    }

    /// Extract a struct field marked `#[serde(default)]`.
    pub fn field_or_default<'de, T: Deserialize<'de> + Default>(
        fields: &[(String, Value)],
        name: &'static str,
    ) -> Result<T, JsonError> {
        match fields.iter().find(|(key, _)| key == name) {
            Some((_, value)) => {
                from_value(value).map_err(|e| JsonError::msg(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort keys so output is deterministic despite hash ordering.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected null, found {}",
                value.describe()
            )))
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::msg(format!("expected boolean, found {}", value.describe())))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, found {}", value.describe())))
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected string, found {}", value.describe())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n
                        .as_i128()
                        .ok_or_else(|| Error::msg("expected integer, found float"))?,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.describe()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, found {}", value.describe())))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

fn expect_array(value: &Value) -> Result<&[Value], Error> {
    value
        .as_array()
        .ok_or_else(|| Error::msg(format!("expected array, found {}", value.describe())))
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        expect_array(value)?.iter().map(de::from_value).collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = expect_array(value)?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(de::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        T::from_json_value(value).map(Box::new)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($name:ident : $idx:tt),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let items = expect_array(value)?;
                if items.len() != $len {
                    return Err(Error::msg(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($(de::from_value::<$name>(&items[$idx])?,)+))
            }
        }
    )*};
}

deserialize_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, D: 3)
}

fn expect_object(value: &Value) -> Result<&[(String, Value)], Error> {
    value
        .as_object()
        .ok_or_else(|| Error::msg(format!("expected object, found {}", value.describe())))
}

impl<'de, V: Deserialize<'de>, S: BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let entries = expect_object(value)?;
        let mut map = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (key, item) in entries {
            map.insert(key.clone(), de::from_value(item)?);
        }
        Ok(map)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let entries = expect_object(value)?;
        let mut map = BTreeMap::new();
        for (key, item) in entries {
            map.insert(key.clone(), de::from_value(item)?);
        }
        Ok(map)
    }
}
