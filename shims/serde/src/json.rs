//! The shim's data model: a JSON value tree, a text parser, and printers.
//!
//! Objects preserve insertion order (`Vec` of pairs) so serialized output is
//! deterministic and round-trips field order.

use std::fmt;

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integer or float, like `serde_json::Number`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(n) => n,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::PosInt(n) => Some(n as i128),
            Number::NegInt(n) => Some(n as i128),
            Number::Float(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(n as i128),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // `{:?}` prints the shortest representation that round-trips,
            // and always includes a `.0` or exponent for integral floats.
            Number::Float(n) => write!(f, "{n:?}"),
        }
    }
}

/// Order-preserving JSON object representation.
pub type Object = Vec<(String, Value)>;

/// A JSON value (`serde_json::Value` equivalent).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Object),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|v| i64::try_from(v).ok()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object key lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Short description used in error messages.
    pub fn describe(&self) -> &'static str {
        self.type_name()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        // Display ignores non-finite float errors; `print` reports them.
        let _ = write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    let (open_sep, close_sep, item_sep, colon) = match indent {
        Some(width) => {
            let pad = " ".repeat(width * (depth + 1));
            let close_pad = " ".repeat(width * depth);
            (
                format!("\n{pad}"),
                format!("\n{close_pad}"),
                format!(",\n{pad}"),
                ": ",
            )
        }
        None => (String::new(), String::new(), ",".to_string(), ":"),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if let Number::Float(f) = n {
                if !f.is_finite() {
                    return Err(Error::msg("cannot serialize non-finite float as JSON"));
                }
            }
            out.push_str(&n.to_string());
        }
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                write_value(out, item, indent, depth + 1)?;
            }
            out.push_str(&close_sep);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                push_escaped(out, key);
                out.push_str(colon);
                write_value(out, item, indent, depth + 1)?;
            }
            out.push_str(&close_sep);
            out.push('}');
        }
    }
    Ok(())
}

/// Print a value as compact JSON.
pub fn print(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0)?;
    Ok(out)
}

/// Print a value as two-space-indented JSON.
pub fn print_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low surrogate.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        let number = if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                Number::PosInt(n)
            } else if let Ok(n) = text.parse::<i64>() {
                Number::NegInt(n)
            } else {
                Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
                )
            }
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}
