//! Offline shim: a minimal epoll + eventfd readiness API.
//!
//! This build environment has no registry access, so instead of `mio` or
//! `libc` the workspace vendors the thin slice of the Linux readiness
//! interface the reactor front end actually needs: one [`Poller`] per
//! reactor thread (level-triggered `epoll`), plus an [`EventFd`] each so a
//! shutdown can interrupt `epoll_wait` immediately instead of waiting out
//! a poll interval. The `extern "C"` declarations below bind straight to
//! the glibc symbols every Rust binary already links — no new dependency.
//!
//! The API mirrors the shape of `mio::Poll`/`polling` closely enough that
//! swapping a real crate in later is mechanical: register file descriptors
//! with a `u64` token, wait for a batch of [`Event`]s, re-arm nothing
//! (level-triggered readiness re-reports until the fd is drained).
//!
//! Everything here is Linux-specific by design — the workspace targets
//! Linux (see CI), and the listener keeps a portable thread-per-connection
//! front end (`frontend = threads`) as the escape hatch for anything else.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// `epoll_event.events` flag: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` flag: an error condition is pending.
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` flag: the peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` flag: the peer shut down the write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// predates alignment-friendly layouts), so reads of `data` must go
/// through a copy rather than a reference.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
}

/// Re-issue `listen(2)` on an already-listening socket to resize its
/// accept backlog. The standard library hardwires a backlog of 128,
/// which a high-fanout connect storm overflows; with `tcp_syncookies`
/// enabled the kernel then silently drops handshake-completing ACKs and
/// the stragglers crawl in on client retransmit backoff (seconds to
/// minutes). Linux explicitly permits a second `listen` to update
/// `sk_max_ack_backlog`; the kernel clamps to `net.core.somaxconn`.
pub fn set_listen_backlog(sock: &impl AsRawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a borrowed fd, no pointers.
    if unsafe { listen(sock.as_raw_fd(), backlog) } < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Raw `EPOLL*` readiness bits.
    pub readiness: u32,
}

impl Event {
    /// The fd has bytes to read (or a pending hangup that a read will
    /// surface as EOF — callers treat both as "go read").
    pub fn readable(&self) -> bool {
        self.readiness & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The peer hung up or the fd errored; no more data will arrive.
    pub fn closed(&self) -> bool {
        self.readiness & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }
}

/// A level-triggered epoll instance.
///
/// Level-triggered is the deliberate choice here: a connection whose
/// buffered bytes were only partially read is re-reported on the next
/// `wait`, so the reactor can cap per-wakeup read work for fairness
/// without bookkeeping re-arm state (edge-triggered would require
/// draining every fd to `EWOULDBLOCK` on every event).
pub struct Poller {
    epfd: RawFd,
    /// Kernel-facing event buffer, reused across waits so the hot loop
    /// never allocates.
    raw: Vec<RawEvent>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("epfd", &self.epfd).finish()
    }
}

impl Poller {
    /// A new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        Ok(Poller {
            epfd,
            raw: Vec::new(),
        })
    }

    /// Register `fd` for level-triggered readable interest under `token`.
    /// The caller keeps ownership of the fd and must keep it open while
    /// registered.
    pub fn add(&self, fd: &impl AsRawFd, token: u64) -> io::Result<()> {
        let mut ev = RawEvent {
            events: EPOLLIN | EPOLLRDHUP,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd.as_raw_fd(), &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Deregister `fd`. Harmless to call for an fd the kernel already
    /// dropped from the interest list (closing an fd deregisters it).
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        let mut ev = RawEvent { events: 0, data: 0 };
        // SAFETY: `ev` is ignored for DEL on modern kernels but must be
        // non-null for pre-2.6.9 compatibility per epoll_ctl(2).
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd.as_raw_fd(), &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Block until at least one registered fd is ready or `timeout_ms`
    /// elapses (`None` = wait forever). Ready events are appended to
    /// `events` (cleared first) up to its capacity; returns the count.
    /// EINTR is retried internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        events.clear();
        let cap = events.capacity().clamp(1, 1024) as i32;
        self.raw
            .resize(cap as usize, RawEvent { events: 0, data: 0 });
        let timeout = timeout_ms.unwrap_or(-1);
        loop {
            // SAFETY: `self.raw` holds `cap` writable events for the kernel.
            let n = unsafe { epoll_wait(self.epfd, self.raw.as_mut_ptr(), cap, timeout) };
            if n < 0 {
                let err = last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for e in &self.raw[..n as usize] {
                let e = *e; // copy out of the packed struct
                events.push(Event {
                    token: e.data,
                    readiness: e.events,
                });
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.epfd) };
    }
}

/// A nonblocking eventfd used as a cross-thread wakeup: any thread may
/// [`EventFd::wake`], the owning reactor registers it on its [`Poller`]
/// and [`EventFd::drain`]s on readiness.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// A new nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// Make the fd readable (adds 1 to the counter). Multiple wakes before
    /// a drain coalesce into one readiness event.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a stack value.
        let rc = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        if rc < 0 {
            let err = last_os_error();
            // A full counter still wakes the poller; not an error here.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Reset the counter so the fd stops reporting readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a stack buffer. EAGAIN (the
        // counter was already 0) is fine — drained is drained.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl AsRawFd for EventFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod backlog_tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn listen_backlog_can_be_resized() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        set_listen_backlog(&listener, 1024).expect("re-listen with a larger backlog");
        // The socket still accepts after the resize.
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, _peer) = listener.accept().unwrap();
        drop(client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn eventfd_wakes_poller_and_drains() {
        let mut poller = Poller::new().unwrap();
        let efd = EventFd::new().unwrap();
        poller.add(&efd, 7).unwrap();
        let mut events = Vec::with_capacity(8);

        // Nothing pending: a short wait times out empty.
        assert_eq!(poller.wait(&mut events, Some(10)).unwrap(), 0);

        efd.wake().unwrap();
        efd.wake().unwrap(); // coalesces with the first
        assert_eq!(poller.wait(&mut events, Some(1000)).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        efd.drain();
        assert_eq!(poller.wait(&mut events, Some(10)).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_interrupts_wait() {
        let mut poller = Poller::new().unwrap();
        let efd = std::sync::Arc::new(EventFd::new().unwrap());
        poller.add(&*efd, 1).unwrap();
        let waker = efd.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake().unwrap();
        });
        let started = Instant::now();
        let mut events = Vec::with_capacity(4);
        // A 10s timeout that the wake must cut short.
        poller.wait(&mut events, Some(10_000)).unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(events[0].token, 1);
        t.join().unwrap();
    }

    #[test]
    fn tcp_readiness_reports_data_and_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(&server, 42).unwrap();
        let mut events = Vec::with_capacity(8);

        client.write_all(b"hello").unwrap();
        assert!(poller.wait(&mut events, Some(2000)).unwrap() >= 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable());
        let mut buf = [0u8; 16];
        let mut server_read = &server;
        assert_eq!(server_read.read(&mut buf).unwrap(), 5);

        // Level-triggered: drained fd goes quiet again.
        assert_eq!(poller.wait(&mut events, Some(10)).unwrap(), 0);

        drop(client);
        assert!(poller.wait(&mut events, Some(2000)).unwrap() >= 1);
        assert!(events[0].closed());
        poller.delete(&server).unwrap();
    }

    #[test]
    fn delete_stops_reporting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&server, 9).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::with_capacity(4);
        assert!(poller.wait(&mut events, Some(2000)).unwrap() >= 1);
        poller.delete(&server).unwrap();
        assert_eq!(poller.wait(&mut events, Some(10)).unwrap(), 0);
    }
}
