//! Offline shim for `serde_json`, backed by the serde shim's value model.

use std::io::Write;

pub use serde::json::{Error, Number, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    serde::json::print(&value.to_json_value())
}

/// Serialize to a two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    serde::json::print_pretty(&value.to_json_value())
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(format!("io error: {e}")))
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(input: &str) -> Result<T> {
    let value = serde::json::parse(input)?;
    serde::de::from_value(&value)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: for<'de> serde::Deserialize<'de>>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Build a [`Value`] from a JSON-ish literal. Object values and array
/// elements are arbitrary serializable expressions; nested literal objects
/// must themselves be wrapped in `json!`.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(__object, $($body)*);
        $crate::Value::Object(__object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

/// Entry muncher for [`json!`] object bodies; nested `{ ... }` values recurse
/// back into `json!` so nested object literals work.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($object:ident $(,)?) => {};
    ($object:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $object.push((($key).to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_object_entries!($object, $($rest)*); )?
    };
    ($object:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $object.push((($key).to_string(), $crate::to_value(&$value)));
        $( $crate::json_object_entries!($object, $($rest)*); )?
    };
}

#[cfg(test)]
// `json!` expands to init-then-push; only this crate sees the lint (callers
// get the external-macro suppression).
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v: Vec<f64> = vec![1.0, -0.5, 1e-12, 123456.75];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(v, back);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
        let s: String = from_str("\"a\\nb\\u00e9\"").unwrap();
        assert_eq!(s, "a\nbé");
    }

    #[test]
    fn object_order_preserved() {
        let text = "{\"z\": 1, \"a\": {\"nested\": [true, null]}}";
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("z").and_then(Value::as_u64), Some(1));
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"z\":1,\"a\":{\"nested\":[true,null]}}");
    }

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({"a": 1u32}), json!({"a": 2u32})];
        let doc = json!({
            "name": "xp",
            "count": rows.len(),
            "rows": rows,
            "ratio": 0.5f64,
        });
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains("\"count\": 2"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
