//! Offline shim for `rayon`.
//!
//! Indexed parallel iterators executed with `std::thread::scope`: the input
//! index space is split into one contiguous chunk per worker, each worker
//! folds its chunk, and chunk results are merged in order — so `collect`
//! preserves input order and `min_by_key` keeps the first minimum, like
//! rayon. Small inputs run sequentially to avoid spawn overhead.
//!
//! Covered surface (what the workspace uses): `par_iter` on slices/`Vec`,
//! `into_par_iter` on integer ranges, `map` / `filter` / `filter_map` /
//! `zip` / `fold` + `reduce` / `collect` / `min_by_key` / `count`.
//! `zip` is index-aligned and therefore only valid on unfiltered inputs,
//! which is the only way the workspace uses it.

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Below this many items per would-be worker, fall back to one thread.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// Worker ceiling: `RAYON_NUM_THREADS` when set to a positive integer
/// (mirroring real rayon's global-pool override, and letting determinism
/// tests vary the thread count), otherwise the machine's parallelism.
///
/// Read per call rather than cached so tests can change the variable
/// between parallel sections within one process.
fn max_workers() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn worker_count(n_items: usize) -> usize {
    max_workers()
        .min(n_items.div_ceil(MIN_ITEMS_PER_THREAD))
        .max(1)
}

/// Fold each chunk of the index space with `identity`/`fold_op`; returns the
/// per-chunk accumulators in chunk order.
fn chunked_fold<I, A, ID, F>(iter: &I, identity: &ID, fold_op: &F) -> Vec<A>
where
    I: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, I::Item) -> A + Sync,
{
    let n = iter.par_len();
    let workers = worker_count(n);
    let run_chunk = |range: Range<usize>| {
        let mut acc = identity();
        for i in range {
            if let Some(item) = iter.par_get(i) {
                acc = fold_op(acc, item);
            }
        }
        acc
    };
    if workers <= 1 {
        return vec![run_chunk(0..n)];
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                let run = &run_chunk;
                scope.spawn(move || run(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// An indexed parallel iterator: a length plus random access to items, with
/// `None` marking elements removed by `filter`/`filter_map`.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn par_len(&self) -> usize;
    fn par_get(&self, index: usize) -> Option<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, pred }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Index-aligned zip; both sides must be unfiltered.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Parallel fold producing one accumulator per chunk; combine the chunk
    /// accumulators with [`Fold::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Minimum by key; ties resolve to the earliest item, as with a
    /// sequential iterator.
    fn min_by_key<K, F>(self, key: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync,
    {
        let chunk_minima = chunked_fold(&self, &|| None, &|best: Option<(K, Self::Item)>, item| {
            let k = key(&item);
            match best {
                Some((bk, bitem)) if bk <= k => Some((bk, bitem)),
                _ => Some((k, item)),
            }
        });
        let mut overall: Option<(K, Self::Item)> = None;
        for candidate in chunk_minima.into_iter().flatten() {
            match &overall {
                Some((bk, _)) if *bk <= candidate.0 => {}
                _ => overall = Some(candidate),
            }
        }
        overall.map(|(_, item)| item)
    }

    fn count(self) -> usize {
        chunked_fold(&self, &|| 0usize, &|acc, _| acc + 1)
            .into_iter()
            .sum()
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on anything whose reference converts (`&[T]`, `&Vec<T>`).
pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoParallelIterator,
{
    type Item = <&'data T as IntoParallelIterator>::Item;
    type Iter = <&'data T as IntoParallelIterator>::Iter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over a shared slice.
pub struct ParSlice<'data, T: Sync> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_get(&self, index: usize) -> Option<&'data T> {
        Some(&self.slice[index])
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn into_par_iter(self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn into_par_iter(self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    start: T,
    len: usize,
}

macro_rules! par_range {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;

            fn par_len(&self) -> usize {
                self.len
            }

            fn par_get(&self, index: usize) -> Option<$t> {
                Some(self.start + index as $t)
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;

            fn into_par_iter(self) -> ParRange<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParRange { start: self.start, len }
            }
        }
    )*};
}

par_range!(u32, u64, usize, i32, i64);

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_get(&self, index: usize) -> Option<R> {
        self.base.par_get(index).map(&self.f)
    }
}

pub struct Filter<I, F> {
    base: I,
    pred: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync,
{
    type Item = I::Item;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_get(&self, index: usize) -> Option<I::Item> {
        self.base.par_get(index).filter(|item| (self.pred)(item))
    }
}

pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> Option<R> + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_get(&self, index: usize) -> Option<R> {
        self.base.par_get(index).and_then(&self.f)
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn par_get(&self, index: usize) -> Option<(A::Item, B::Item)> {
        Some((self.a.par_get(index)?, self.b.par_get(index)?))
    }
}

/// Deferred parallel fold; finish it with [`Fold::reduce`].
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, A, ID, F> Fold<I, ID, F>
where
    I: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, I::Item) -> A + Sync,
{
    /// Combine the per-chunk accumulators in chunk order.
    pub fn reduce<ID2, G>(self, identity: ID2, reduce_op: G) -> A
    where
        ID2: Fn() -> A,
        G: Fn(A, A) -> A,
    {
        chunked_fold(&self.base, &self.identity, &self.fold_op)
            .into_iter()
            .fold(identity(), reduce_op)
    }
}

/// Collection from a parallel iterator (`Vec` only).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        let chunks = chunked_fold(&iter, &Vec::new, &|mut acc: Vec<T>, item| {
            acc.push(item);
            acc
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn filter_and_filter_map() {
        let v: Vec<i64> = (0..1000).collect();
        let evens: Vec<&i64> = v.par_iter().filter(|x| **x % 2 == 0).collect();
        assert_eq!(evens.len(), 500);
        let odds: Vec<i64> = v
            .par_iter()
            .filter_map(|x| (x % 2 == 1).then_some(*x))
            .collect();
        assert_eq!(odds.first(), Some(&1));
        assert_eq!(odds.len(), 500);
    }

    #[test]
    fn zip_fold_reduce_matches_sequential() {
        let a: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..5000).map(|i| (i * 2) as f64).collect();
        let dot = a
            .par_iter()
            .zip(b.par_iter())
            .fold(|| 0.0, |acc, (x, y)| acc + x * y)
            .reduce(|| 0.0, |p, q| p + q);
        let seq: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot - seq).abs() < 1e-6 * seq.abs());
    }

    #[test]
    fn min_by_key_takes_first_minimum() {
        let v = vec![(3u32, 'a'), (1, 'b'), (1, 'c'), (2, 'd')];
        let m = v.par_iter().min_by_key(|&&(k, _)| k);
        assert_eq!(m, Some(&(1, 'b')));
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 9801);
        assert_eq!((0..0usize).into_par_iter().count(), 0);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core runner: nothing to check
        }
        let v: Vec<u64> = (0..100_000).collect();
        let ids: Vec<std::thread::ThreadId> =
            v.par_iter().map(|_| std::thread::current().id()).collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }
}
