//! Offline shim for `rand_chacha`: a genuine ChaCha8 keystream generator.
//!
//! The block function is the real ChaCha quarter-round construction (8
//! rounds), keyed from a 32-byte seed. Deterministic per seed; no claim of
//! bit-compatibility with the upstream crate's word ordering (the workspace
//! only compares same-seed runs of itself).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, the workspace's seeded PRNG of choice.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Keystream buffer from the last block computation.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn crosses_block_boundary() {
        // 16 words per block; 40 u64 draws forces multiple refills.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let v: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert!(distinct.len() > 35, "keystream should not repeat");
    }

    #[test]
    fn uniformish_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // Expect ~32000 set bits over 64000.
        assert!((30_000..34_000).contains(&ones), "ones={ones}");
    }
}
