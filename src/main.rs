//! `hetsyslog` — command-line front end.
//!
//! ```text
//! hetsyslog generate --scale 0.05 --seed 42 --out corpus.jsonl
//! hetsyslog train    --corpus corpus.jsonl --model cnb --out model.json
//! hetsyslog classify --model model.json [--explain]   (messages on stdin)
//! hetsyslog eval     --scale 0.02 [--drop-unimportant]
//! hetsyslog monitor  --frames 20000 --workers 4 [--frontend reactor:threads=2]
//! hetsyslog top      --addr 127.0.0.1:9100 [--watch]
//! hetsyslog flight   export --addr 127.0.0.1:9100 --out flight.json
//! hetsyslog summarize --scale 0.01 --window 60
//! ```
//!
//! Every subcommand is deterministic under `--seed` and uses only the
//! library crates — the CLI adds no logic of its own.

use hetsyslog::core::persist::{SavedModel, SavedPipeline};
use hetsyslog::core::service::CollectingSink;
use hetsyslog::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let opts = Opts::parse(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "train" => cmd_train(&opts),
        "classify" => cmd_classify(&opts),
        "eval" => cmd_eval(&opts),
        "monitor" => cmd_monitor(&opts),
        "top" => cmd_top(&opts),
        "flight" => cmd_flight(&args[1..]),
        "templates" => cmd_templates(&opts),
        "summarize" => cmd_summarize(&opts),
        "--help" | "-h" | "help" => {
            usage_and_exit();
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "hetsyslog — heterogeneous syslog analysis\n\n\
         USAGE:\n  hetsyslog <command> [options]\n\n\
         COMMANDS:\n\
         \x20 generate   --scale F --seed N --out FILE      write a labeled synthetic corpus (JSONL)\n\
         \x20 train      --corpus FILE --model NAME --out FILE   train and save a pipeline\n\
         \x20 classify   --model FILE [--explain]           classify stdin lines\n\
         \x20 eval       --scale F [--drop-unimportant]     run the Figure 3 evaluation\n\
         \x20 monitor    --frames N --workers N [--sink SPEC]... [--spill DIR]  simulate real-time monitoring\n\
         \x20            [--frontend threads|reactor[:threads=N] [--conns N]]   replay over a live TCP listener\n\
         \x20 top        --addr HOST:PORT [--interval-ms N] one-shot dashboard from a /metrics scrape\n\
         \x20            [--watch [--iterations N]]         live refresh + /alerts panel (time-series ring)\n\
         \x20 flight     export --addr HOST:PORT [--out FILE]  dump the /flight time-series ring as JSON\n\
         \x20 templates  --frames N [--top K] [--histogram PATTERN --slot N]  mine the stream into a columnar store\n\
         \x20 summarize  --scale F --window MIN             LLM status summary (future-work demo)\n\n\
         SINKS (repeatable --sink SPEC; --spill DIR adds durable spill-then-replay per sink):\n\
         \x20 file:DIR            append-only CRC-framed segment files\n\
         \x20 bulk[:k=v,...]      simulated bulk indexer (error=F stall_ms=N outage=START+DUR seed=N)\n\
         \x20 metrics             per-category log-to-metric counters\n\n\
         MODELS: lr ridge knn rf svc sgd nc cnb"
    );
    std::process::exit(2);
}

/// Minimal `--key value` / `--flag` option bag. Repeated `--key` values
/// are all kept, in order (`--sink file:out --sink bulk` yields both).
struct Opts {
    values: BTreeMap<String, String>,
    repeated: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut values = BTreeMap::new();
        let mut repeated = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = it.next().unwrap().clone();
                        values.insert(key.to_string(), value.clone());
                        repeated.push((key.to_string(), value));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Opts {
            values,
            repeated,
            flags,
        }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Every value a repeated `--key` was given, in command-line order.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.repeated
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number")),
            None => Ok(default),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer")),
            None => Ok(default),
        }
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

fn load_corpus(opts: &Opts) -> Result<Vec<(String, Category)>, String> {
    match opts.get("corpus") {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let corpus = datagen::corpus::read_jsonl(std::io::BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(datagen::corpus::as_pairs(&corpus))
        }
        None => {
            let scale = opts.get_f64("scale", 0.02)?;
            let seed = opts.get_u64("seed", 42)?;
            Ok(datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
                scale,
                seed,
                min_per_class: 12,
            })))
        }
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let scale = opts.get_f64("scale", 0.05)?;
    let seed = opts.get_u64("seed", 42)?;
    let corpus = generate_corpus(&CorpusConfig {
        scale,
        seed,
        min_per_class: 12,
    });
    let out: Box<dyn Write> = match opts.get("out") {
        Some(path) => Box::new(std::fs::File::create(path).map_err(|e| e.to_string())?),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut out = std::io::BufWriter::new(out);
    datagen::corpus::write_jsonl(&corpus, &mut out).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} labeled messages (scale {scale}, seed {seed})",
        corpus.len()
    );
    Ok(())
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let model_name = opts.get("model").unwrap_or("cnb");
    let model = SavedModel::by_name(model_name).ok_or_else(|| {
        format!("unknown model {model_name:?} (try: lr ridge knn rf svc sgd nc cnb)")
    })?;
    let t0 = std::time::Instant::now();
    let pipeline = SavedPipeline::train(FeatureConfig::default(), model, &corpus);
    let seconds = t0.elapsed().as_secs_f64();
    let out = opts.get("out").unwrap_or("model.json");
    pipeline
        .save(std::path::Path::new(out))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "trained {} on {} messages in {seconds:.2}s → {out}",
        pipeline.name(),
        corpus.len()
    );
    Ok(())
}

fn cmd_classify(opts: &Opts) -> Result<(), String> {
    let model_path = opts.get("model").ok_or("--model FILE is required")?;
    let pipeline = SavedPipeline::load(std::path::Path::new(model_path))?;
    let explain = opts.has("explain");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        // Accept both raw message text and full syslog frames.
        let message = match parse(&line) {
            Ok(m) => m.message,
            Err(_) => line.clone(),
        };
        let p = pipeline.classify(&message);
        if explain {
            let tokens = pipeline.features.top_contributing_tokens(&message, 3);
            let ev: Vec<String> = tokens.iter().map(|(t, w)| format!("{t}:{w:.2}")).collect();
            writeln!(stdout, "{}\t{}\t[{}]", p.category, message, ev.join(", "))
                .map_err(|e| e.to_string())?;
        } else {
            writeln!(stdout, "{}\t{}", p.category, message).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let seed = opts.get_u64("seed", 42)?;
    let config = hetsyslog::core::eval::EvalConfig {
        seed,
        drop_unimportant: opts.has("drop-unimportant"),
        ..Default::default()
    };
    let mut models = paper_suite(seed);
    let (split, evals) = hetsyslog::core::eval::evaluate_suite(&corpus, &mut models, &config);
    println!(
        "{} train / {} test / {} features",
        split.train.len(),
        split.test.len(),
        split.train.n_features()
    );
    for e in &evals {
        println!(
            "{:<26} wF1={:.6} train={:>9.4}s test={:>9.4}s",
            e.report.model, e.report.weighted_f1, e.report.train_seconds, e.report.test_seconds
        );
    }
    Ok(())
}

/// Parse the repeated `--sink` specs into fan-out lanes:
///
/// * `file:DIR` — append-only CRC-framed segment files under `DIR`;
/// * `bulk[:k=v,…]` — simulated bulk indexer; options `error=F` (nack
///   rate), `stall_ms=N`, `outage=START+DUR` (seconds from first request),
///   `seed=N`;
/// * `metrics` — log-to-metric sink on the shared registry.
///
/// With `--spill DIR`, every lane gets a durable spill directory
/// `DIR/<sink-name>` (overload and outages become spill-then-replay
/// instead of drops).
fn parse_sink_specs(opts: &Opts, registry: &Registry) -> Result<Vec<SinkSpec>, String> {
    use std::time::Duration;
    let spill_root = opts.get("spill");
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut specs = Vec::new();
    for raw in opts.get_all("sink") {
        let (kind, arg) = match raw.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (raw, None),
        };
        let nth = *seen
            .entry(kind.to_string())
            .and_modify(|n| *n += 1)
            .or_insert(0);
        let name = if nth == 0 {
            kind.to_string()
        } else {
            format!("{kind}-{nth}")
        };
        let sink: Arc<dyn Sink> = match kind {
            "file" => {
                let dir = arg.ok_or("--sink file:DIR needs a directory")?;
                Arc::new(FileSink::new(name.clone(), dir).map_err(|e| format!("{dir}: {e}"))?)
            }
            "bulk" => {
                let mut plan = FaultPlan::healthy();
                for kv in arg.unwrap_or("").split(',').filter(|s| !s.is_empty()) {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("bad bulk option {kv:?} (want key=value)"))?;
                    let num = || -> Result<f64, String> {
                        v.parse()
                            .map_err(|_| format!("bulk {k}={v:?}: not a number"))
                    };
                    plan = match k {
                        "error" => plan.with_error_rate(num()?),
                        "stall_ms" => plan.with_stall(Duration::from_millis(num()? as u64)),
                        "seed" => plan.with_seed(num()? as u64),
                        "outage" => {
                            let (start, dur) = v.split_once('+').ok_or_else(|| {
                                format!("bulk outage={v:?}: want START+DUR seconds")
                            })?;
                            let secs = |s: &str| -> Result<Duration, String> {
                                s.parse::<f64>()
                                    .map(Duration::from_secs_f64)
                                    .map_err(|_| format!("bulk outage={v:?}: not numbers"))
                            };
                            plan.with_outage(secs(start)?, secs(dur)?)
                        }
                        other => return Err(format!("unknown bulk option {other:?}")),
                    };
                }
                Arc::new(BulkSink::new(name.clone(), plan))
            }
            "metrics" => Arc::new(MetricSink::new(name.clone(), registry)),
            other => {
                return Err(format!(
                    "unknown sink kind {other:?} (want file:DIR, bulk[:opts], or metrics)"
                ))
            }
        };
        let mut config = SinkLaneConfig::default();
        if let Some(root) = spill_root {
            config = config.with_spill(SpillConfig::new(std::path::Path::new(root).join(&name)));
        }
        specs.push(SinkSpec::with_config(sink, config));
    }
    Ok(specs)
}

/// Parse a `--frontend` spec: `threads`, `reactor`, or `reactor:threads=N`.
fn parse_frontend(spec: &str) -> Result<Frontend, String> {
    match spec.split_once(':') {
        None if spec == "threads" => Ok(Frontend::Threads),
        None if spec == "reactor" => Ok(Frontend::Reactor { threads: 0 }),
        Some(("reactor", arg)) => {
            let n = arg
                .strip_prefix("threads=")
                .ok_or_else(|| format!("--frontend reactor:{arg}: want reactor:threads=N"))?
                .parse()
                .map_err(|_| format!("--frontend reactor:{arg}: thread count must be a number"))?;
            Ok(Frontend::Reactor { threads: n })
        }
        _ => Err(format!(
            "unknown front end {spec:?} (want threads, reactor, or reactor:threads=N)"
        )),
    }
}

fn cmd_monitor(opts: &Opts) -> Result<(), String> {
    let frames = opts.get_u64("frames", 20_000)? as usize;
    let workers = opts.get_u64("workers", 4)? as usize;
    let seed = opts.get_u64("seed", 42)?;
    let frontend = opts.get("frontend").map(parse_frontend).transpose()?;
    let corpus = load_corpus(opts)?;
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let sink = Arc::new(CollectingSink::new());
    let service = Arc::new(
        MonitorService::new(clf)
            .with_prefilter(NoiseFilter::train(3, &corpus))
            .with_alert_sink(sink.clone()),
    );
    let store = Arc::new(LogStore::new());
    let registry = Registry::new();
    let sink_specs = parse_sink_specs(opts, &registry)?;
    let fan_out = if sink_specs.is_empty() {
        None
    } else {
        Some(FanOut::open(sink_specs, Some(&registry)).map_err(|e| e.to_string())?)
    };
    let stream: Vec<String> = StreamGenerator::new(StreamConfig {
        seed,
        ..StreamConfig::default()
    })
    .take(frames)
    .map(|t| t.to_frame())
    .collect();
    let (ingested, seconds) = if let Some(frontend) = frontend {
        // Replay the stream over loopback TCP through the real listener,
        // exercising the chosen front end (epoll reactor or one thread
        // per connection) end to end: framing, shard routing, batched
        // classification, store, and sink fan-out.
        run_monitor_listener(opts, frontend, workers, &stream, &store, &service, &fan_out)?
    } else {
        let mut ingest = ClassifyingIngest::new(store.clone(), service.clone(), workers);
        if let Some(fan_out) = &fan_out {
            ingest = ingest.with_fan_out(fan_out.clone());
        }
        let report = ingest.run(stream);
        (report.ingested, report.seconds)
    };
    let stats = service.stats();
    let rate = if seconds > 0.0 {
        ingested as f64 / seconds
    } else {
        0.0
    };
    println!(
        "ingested {} frames in {:.2}s ({:.2}M msgs/hour sustained)",
        ingested,
        seconds,
        rate * 3600.0 / 1e6
    );
    println!(
        "pre-filtered {} noise messages, {} alerts",
        stats.prefiltered, stats.alerts
    );
    for &c in &Category::ALL {
        if stats.count(c) > 0 {
            println!("  {:<20} {}", c.label(), stats.count(c));
        }
    }
    for a in sink.take().iter().take(3) {
        println!("alert: [{}] {}", a.category, a.message);
    }
    if let Some(fan_out) = &fan_out {
        // Graceful drain: wait for sink acks (or spill the remainder),
        // then print each lane's delivery ledger.
        fan_out.shutdown(std::time::Duration::from_secs(10));
        println!(
            "\n{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "sink", "submitted", "delivered", "dropped", "spilled", "pending", "retries", "ledger"
        );
        for s in fan_out.snapshots() {
            println!(
                "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                s.sink,
                s.submitted,
                s.delivered,
                s.dropped,
                s.spilled,
                s.spilled_pending,
                s.retries,
                if s.ledger_balanced() { "OK" } else { "BROKEN" },
            );
        }
    }
    Ok(())
}

/// The `--frontend` monitor path: start a real [`SyslogListener`] on
/// loopback with the requested TCP front end, split the frame stream
/// across `--conns` octet-counting senders, wait for the drain, and
/// return `(ingested, seconds)`. The listener's graceful shutdown also
/// drains the sink fan-out, so the caller's `FanOut::shutdown` is a no-op.
fn run_monitor_listener(
    opts: &Opts,
    frontend: Frontend,
    workers: usize,
    stream: &[String],
    store: &Arc<LogStore>,
    service: &Arc<MonitorService>,
    fan_out: &Option<Arc<FanOut>>,
) -> Result<(u64, f64), String> {
    use std::net::TcpStream;
    use std::time::{Duration, Instant};
    let conns = (opts.get_u64("conns", 8)? as usize).max(1);
    let listener = SyslogListener::start(
        store.clone(),
        Some(service.clone()),
        ListenerConfig {
            frontend,
            workers,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            fan_out: fan_out.clone(),
            ..ListenerConfig::default()
        },
    )
    .map_err(|e| format!("start listener: {e}"))?;
    let addr = listener.tcp_addr();
    println!(
        "listener up: tcp={addr}, front end {frontend:?} ({} reactor thread(s)), {conns} connection(s)",
        listener.n_reactors(),
    );

    let started = Instant::now();
    let senders: Vec<_> = (0..conns)
        .map(|c| {
            let share: Vec<String> = stream.iter().skip(c).step_by(conns).cloned().collect();
            std::thread::spawn(move || -> Result<(), String> {
                let mut sock =
                    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                let mut wire = Vec::with_capacity(share.iter().map(|f| f.len() + 8).sum());
                for frame in &share {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).map_err(|e| format!("write: {e}"))
            })
        })
        .collect();
    for sender in senders {
        sender
            .join()
            .map_err(|_| "sender thread panicked".to_string())??;
    }
    let expected = stream.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    while listener.stats().snapshot().ingested < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let seconds = started.elapsed().as_secs_f64();
    let report = listener.shutdown();
    if report.ingested < expected {
        return Err(format!(
            "listener drained only {} of {expected} frames: {report:?}",
            report.ingested
        ));
    }
    Ok((report.ingested, seconds))
}

/// `hetsyslog top` — a terminal dashboard over a live listener's scrape
/// endpoints (see [`ListenerConfig::serve_metrics`]). Every refresh
/// ingests the `/metrics` body into a client-side [`obs::TimeSeriesStore`]
/// ring — the same delta-aware windowed aggregates the in-process flight
/// recorder uses — so counter rates and histogram quantiles cover exactly
/// the observations inside the window. One-shot by default; `--watch`
/// keeps refreshing (and renders the `/alerts` state machine alongside).
fn cmd_top(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .ok_or("--addr HOST:PORT of a /metrics endpoint is required")?;
    let interval_ms = opts.get_u64("interval-ms", 1000)?.max(10);
    let watch = opts.has("watch");
    let iterations = opts.get_u64("iterations", 0)?;
    let store = obs::TimeSeriesStore::new(obs::timeseries::DEFAULT_RING_CAPACITY);
    let ingest = || -> Result<(), String> {
        let body = obs::http_get(addr, "/metrics").map_err(|e| format!("{addr}: {e}"))?;
        store.ingest_scrape(&obs::parse_exposition(&body), store.now_ms(), unix_ms());
        Ok(())
    };
    // The aggregate window spans the newest few points, so the very first
    // render already has a counter delta to turn into a rate.
    let window_ms = interval_ms
        .saturating_mul(2)
        .saturating_add(interval_ms / 2);
    ingest()?;
    let mut round = 0u64;
    loop {
        round += 1;
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        ingest()?;
        let alerts = obs::http_get(addr, "/alerts").ok();
        let frame = render_dashboard(&store, addr, window_ms, alerts.as_deref());
        if watch {
            // Repaint in place; build the frame first so the clear and the
            // redraw land in one write (no visible flicker).
            print!("\x1b[2J\x1b[H{frame}");
            let _ = std::io::stdout().flush();
        } else {
            print!("{frame}");
        }
        if !watch || (iterations > 0 && round >= iterations) {
            return Ok(());
        }
    }
}

/// Wall-clock milliseconds since the Unix epoch (for flight timelines).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Render one dashboard frame from the client-side flight ring.
fn render_dashboard(
    store: &obs::TimeSeriesStore,
    addr: &str,
    window_ms: u64,
    alerts_json: Option<&str>,
) -> String {
    let mut out = String::new();
    let _ = write_dashboard(&mut out, store, addr, window_ms, alerts_json);
    out
}

fn write_dashboard(
    out: &mut String,
    store: &obs::TimeSeriesStore,
    addr: &str,
    window_ms: u64,
    alerts_json: Option<&str>,
) -> std::fmt::Result {
    use std::fmt::Write;
    let latest =
        |name: &str, labels: &[(&str, &str)]| store.latest(name, labels).map_or(0.0, |p| p.value);
    let rate = |name: &str| {
        store
            .window(name, &[], window_ms)
            .map_or(0.0, |w| w.rate_per_sec)
    };
    writeln!(out, "hetsyslog top — {addr} (window {window_ms}ms)\n")?;
    writeln!(
        out,
        "ingest   frames {:>10}  ({:>8.0}/s)   bytes {:>12}  ({:>10.0}/s)",
        latest("hetsyslog_ingest_frames_total", &[]) as u64,
        rate("hetsyslog_ingest_frames_total"),
        latest("hetsyslog_ingest_bytes_total", &[]) as u64,
        rate("hetsyslog_ingest_bytes_total"),
    )?;
    let udp = latest("hetsyslog_udp_datagrams_total", &[]);
    if udp > 0.0 {
        writeln!(
            out,
            "udp      datagrams {:>7}  ({:>8.0}/s)   bytes {:>12}   truncated {:>6}",
            udp as u64,
            rate("hetsyslog_udp_datagrams_total"),
            latest("hetsyslog_udp_bytes_total", &[]) as u64,
            latest("hetsyslog_udp_truncated_total", &[]) as u64,
        )?;
    }
    writeln!(
        out,
        "store    stored {:>10}  ({:>8.0}/s)   records {:>10}   shards {:>3}",
        latest("hetsyslog_ingest_stored_total", &[]) as u64,
        rate("hetsyslog_ingest_stored_total"),
        latest("hetsyslog_store_records_total", &[]) as u64,
        latest("hetsyslog_store_shards", &[]) as u64,
    )?;
    writeln!(
        out,
        "queue    depth {:>6}    dead letters {:>6}    dropped: queue_full={} parse_error={}",
        latest("hetsyslog_ingest_queue_depth", &[]) as u64,
        latest("hetsyslog_dead_letters_total", &[]) as u64,
        latest(
            "hetsyslog_ingest_dropped_total",
            &[("reason", "queue_full")]
        ),
        latest(
            "hetsyslog_ingest_dropped_total",
            &[("reason", "parse_error")]
        ),
    )?;
    writeln!(
        out,
        "batch    batches {:>9}  ({:>8.0}/s)   classified {:>10}  ({:>8.0}/s)\n",
        latest("hetsyslog_batch_batches_total", &[]) as u64,
        rate("hetsyslog_batch_batches_total"),
        latest("hetsyslog_batch_classified_total", &[]) as u64,
        rate("hetsyslog_batch_classified_total"),
    )?;

    // Per-pipeline-shard fabric view: one row per `shard=N` label seen on
    // the routed-frames family (absent on pre-sharding or detached runs).
    let keys = store.series_keys();
    let mut shard_ids: Vec<String> = keys
        .iter()
        .filter(|(name, _)| name == "hetsyslog_shard_frames_total")
        .filter_map(|(_, labels)| {
            labels
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
        })
        .collect();
    shard_ids.sort_by_key(|s| s.parse::<u64>().unwrap_or(u64::MAX));
    shard_ids.dedup();
    if !shard_ids.is_empty() {
        writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>8} {:>8} {:>14}",
            "shard", "routed/s", "done/s", "depth", "steals", "stolen frames"
        )?;
        for id in &shard_ids {
            let labels: &[(&str, &str)] = &[("shard", id.as_str())];
            let srate = |name: &str| {
                store
                    .window(name, labels, window_ms)
                    .map_or(0.0, |w| w.rate_per_sec)
            };
            writeln!(
                out,
                "{:<8} {:>10.0} {:>10.0} {:>8} {:>8} {:>14}",
                id,
                srate("hetsyslog_shard_frames_total"),
                srate("hetsyslog_shard_processed_total"),
                latest("hetsyslog_shard_queue_depth", labels) as u64,
                latest("hetsyslog_shard_steals_total", labels) as u64,
                latest("hetsyslog_shard_stolen_frames_total", labels) as u64,
            )?;
        }
        writeln!(out)?;
    }

    // Per-sink delivery ledger: one row per `sink=` label on the sink
    // stage's instruments (absent when no fan-out is attached).
    let mut sink_names: Vec<String> = keys
        .iter()
        .filter(|(name, _)| name == "hetsyslog_sink_submitted_total")
        .filter_map(|(_, labels)| {
            labels
                .iter()
                .find(|(k, _)| k == "sink")
                .map(|(_, v)| v.clone())
        })
        .collect();
    sink_names.sort();
    sink_names.dedup();
    if !sink_names.is_empty() {
        writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>8}",
            "sink", "submitted/s", "delivered/s", "dropped", "inflight", "pending", "nacks"
        )?;
        for name in &sink_names {
            let labels: &[(&str, &str)] = &[("sink", name.as_str())];
            let srate = |n: &str| {
                store
                    .window(n, labels, window_ms)
                    .map_or(0.0, |w| w.rate_per_sec)
            };
            // Dropped is further split by `reason`; fold it per sink.
            let dropped: f64 = keys
                .iter()
                .filter(|(n, ls)| {
                    n == "hetsyslog_sink_dropped_total"
                        && ls.iter().any(|(k, v)| k == "sink" && v == name)
                })
                .map(|(n, ls)| {
                    let refs: Vec<(&str, &str)> =
                        ls.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                    latest(n, &refs)
                })
                .sum();
            writeln!(
                out,
                "{:<12} {:>12.0} {:>12.0} {:>9} {:>9} {:>9} {:>8}",
                name,
                srate("hetsyslog_sink_submitted_total"),
                srate("hetsyslog_sink_delivered_total"),
                dropped,
                latest("hetsyslog_sink_inflight", labels) as u64,
                latest("hetsyslog_spill_pending", labels) as u64,
                latest("hetsyslog_sink_nacks_total", labels) as u64,
            )?;
        }
        writeln!(out)?;
    }

    // Stage latency: quantiles over exactly the observations inside the
    // window (delta of cumulative snapshots); when the window saw nothing,
    // fall back to the lifetime distribution so an idle or drained
    // pipeline still shows meaningful figures.
    writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>10} {:>12}",
        "stage", "p50(µs)", "p99(µs)", "obs/s", "samples"
    )?;
    for stage in [
        "decode",
        "parse",
        "tokenize_transform",
        "predict",
        "store_insert",
    ] {
        let labels: &[(&str, &str)] = &[("stage", stage)];
        let (p50, p99, obs_rate) =
            windowed_quantiles(store, "hetsyslog_stage_duration_us", labels, window_ms);
        let samples = store
            .latest("hetsyslog_stage_duration_us", labels)
            .and_then(|p| p.hist)
            .map_or(0, |h| h.count);
        writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>10.0} {:>12}",
            stage, p50, p99, obs_rate, samples,
        )?;
    }

    write_model_panel(out, store, &keys, window_ms)?;
    if let Some(body) = alerts_json {
        write_alerts_panel(out, body)?;
    }
    Ok(())
}

/// Windowed `(p50, p99, observations/sec)` of a histogram series; falls
/// back to lifetime quantiles (rate 0) when nothing landed in the window.
fn windowed_quantiles(
    store: &obs::TimeSeriesStore,
    name: &str,
    labels: &[(&str, &str)],
    window_ms: u64,
) -> (u64, u64, f64) {
    match store.window(name, labels, window_ms) {
        Some(w) if w.delta_count > 0 => (w.p50, w.p99, w.rate_per_sec),
        _ => store
            .latest(name, labels)
            .and_then(|p| p.hist)
            .map_or((0, 0, 0.0), |h| (h.quantile(50.0), h.quantile(99.0), 0.0)),
    }
}

/// Model-quality panel: PSI drift score, per-model confidence margins,
/// and the prediction share by category (absent until the classify stage
/// exports `hetsyslog_model_*`).
fn write_model_panel(
    out: &mut String,
    store: &obs::TimeSeriesStore,
    keys: &[(String, obs::Labels)],
    window_ms: u64,
) -> std::fmt::Result {
    use std::fmt::Write;
    if let Some(psi) = store.latest("hetsyslog_model_drift_psi_milli", &[]) {
        writeln!(
            out,
            "\nmodel    drift PSI {:>5} milli   (0.25 = investigate, so alert at 250)",
            psi.value as i64
        )?;
        for (name, labels) in keys {
            if name != "hetsyslog_model_confidence_margin_milli" {
                continue;
            }
            let model = labels
                .iter()
                .find(|(k, _)| k == "model")
                .map_or("?", |(_, v)| v.as_str());
            let refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let (p50, p99, _) = windowed_quantiles(store, name, &refs, window_ms);
            writeln!(
                out,
                "         margin[{model}]  p50 {:>6}m  p99 {:>6}m",
                p50, p99
            )?;
        }
    }
    // Prediction share per category (preferred); classified counts as the
    // fallback for pre-quality builds.
    let share_family = if keys
        .iter()
        .any(|(n, _)| n == "hetsyslog_model_predictions_total")
    {
        ("hetsyslog_model_predictions_total", "category")
    } else {
        ("hetsyslog_monitor_classified_total", "category")
    };
    let mut by_category: Vec<(String, f64)> = keys
        .iter()
        .filter(|(n, _)| n == share_family.0)
        .filter_map(|(n, labels)| {
            let category = labels.iter().find(|(k, _)| k == share_family.1)?;
            let refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let value = store.latest(n, &refs).map_or(0.0, |p| p.value);
            (value > 0.0).then(|| (category.1.clone(), value))
        })
        .collect();
    by_category.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total: f64 = by_category.iter().map(|(_, v)| v).sum();
    if !by_category.is_empty() {
        writeln!(out, "\npredictions by category:")?;
        for (category, n) in by_category {
            writeln!(
                out,
                "  {category:<28} {n:>10.0}  ({:>5.1}%)",
                100.0 * n / total.max(1.0)
            )?;
        }
    }
    Ok(())
}

/// Render the `/alerts` JSON document (rule statuses + recent
/// transitions) as the dashboard's alert panel.
fn write_alerts_panel(out: &mut String, body: &str) -> std::fmt::Result {
    use std::fmt::Write;
    let Ok(doc) = serde_json::from_str::<serde_json::Value>(body) else {
        return Ok(());
    };
    if let Some(alerts) = doc.get("alerts").and_then(|a| a.as_array()) {
        if !alerts.is_empty() {
            writeln!(
                out,
                "\n{:<9} {:<22} {:>5} {:>10}  condition",
                "state", "alert", "fired", "value"
            )?;
            for alert in alerts {
                let text = |key: &str| {
                    alert
                        .get(key)
                        .and_then(|v| v.as_str())
                        .unwrap_or("?")
                        .to_string()
                };
                let value = alert
                    .get("value")
                    .and_then(|v| v.as_f64())
                    .map_or_else(|| "-".to_string(), |v| format!("{v:.1}"));
                writeln!(
                    out,
                    "{:<9} {:<22} {:>5} {:>10}  {}",
                    text("state"),
                    text("name"),
                    alert
                        .get("fired_count")
                        .and_then(|v| v.as_u64())
                        .unwrap_or(0),
                    value,
                    text("condition"),
                )?;
            }
        }
    }
    if let Some(events) = doc.get("events").and_then(|e| e.as_array()) {
        let recent: Vec<String> = events
            .iter()
            .rev()
            .take(5)
            .filter_map(|e| {
                Some(format!(
                    "[{}ms] {} → {}",
                    e.get("at_ms").and_then(|v| v.as_u64())?,
                    e.get("rule").and_then(|v| v.as_str())?,
                    e.get("transition").and_then(|v| v.as_str())?,
                ))
            })
            .collect();
        if !recent.is_empty() {
            writeln!(out, "recent:   {}", recent.join("   "))?;
        }
    }
    Ok(())
}

/// `hetsyslog flight export` — dump a live listener's flight-recorder
/// ring (`GET /flight`) as a JSON timeline for post-mortem analysis.
fn cmd_flight(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) != Some("export") {
        return Err("usage: hetsyslog flight export --addr HOST:PORT [--out FILE]".to_string());
    }
    let opts = Opts::parse(&args[1..]);
    let addr = opts
        .get("addr")
        .ok_or("--addr HOST:PORT of a listener with the flight recorder enabled is required")?;
    let body = obs::http_get(addr, "/flight").map_err(|e| {
        format!("{addr}: {e} (flight recorder off? see ListenerConfig::record_flight)")
    })?;
    let series = serde_json::from_str::<serde_json::Value>(&body)
        .ok()
        .and_then(|v| v.get("series").and_then(|s| s.as_array()).map(|a| a.len()))
        .unwrap_or(0);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {} bytes ({series} series) → {path}", body.len());
        }
        None => {
            println!("{body}");
            eprintln!("({series} series)");
        }
    }
    Ok(())
}

/// `hetsyslog templates` — run the synthetic stream into the log store,
/// seal it into template-mined columnar segments (DESIGN.md §6), and show
/// what the sealed tier knows without decompressing anything: rows per
/// template pattern, plus compression figures. With `--histogram PATTERN
/// --slot N` also prints the value distribution of one variable slot
/// (decompresses exactly one column per segment).
fn cmd_templates(opts: &Opts) -> Result<(), String> {
    let frames = opts.get_u64("frames", 20_000)? as usize;
    let seed = opts.get_u64("seed", 42)?;
    let top = opts.get_u64("top", 15)? as usize;
    let store = LogStore::new();
    let records = StreamGenerator::new(StreamConfig {
        seed,
        ..StreamConfig::default()
    })
    .take(frames)
    .enumerate()
    .map(|(i, tm)| hetsyslog::pipeline::LogRecord {
        id: i as u64,
        unix_seconds: tm.unix_seconds,
        node: tm.message.node.clone(),
        app: tm.message.app.clone(),
        severity: if tm.message.category.is_actionable() {
            Severity::Warning
        } else {
            Severity::Informational
        },
        facility: hetsyslog::syslog::Facility::Daemon,
        message: tm.message.text,
        category: Some(tm.message.category),
    });
    store.insert_batch(records);
    let mut jsonl = Vec::new();
    store.export_jsonl(&mut jsonl).map_err(|e| e.to_string())?;
    store.seal_all();
    let stats = store.segment_stats();

    let mut counts: Vec<(String, u64)> = store
        .count_by_template(i64::MIN, i64::MAX)
        .into_iter()
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!(
        "{} records → {} segment(s), {} templates",
        store.len(),
        store.n_segments(),
        counts.len(),
    );
    println!(
        "{} JSONL bytes → {} encoded ({:.1}x compression)\n",
        jsonl.len(),
        stats.encoded_bytes,
        jsonl.len() as f64 / stats.encoded_bytes.max(1) as f64,
    );
    println!("{:>10}  template", "rows");
    for (pattern, n) in counts.iter().take(top) {
        println!("{n:>10}  {pattern}");
    }
    if counts.len() > top {
        println!("{:>10}  … {} more", "", counts.len() - top);
    }

    if let Some(pattern) = opts.get("histogram") {
        let slot = opts.get_u64("slot", 0)? as usize;
        let mut hist: Vec<(String, u64)> = store
            .variable_histogram(pattern, slot)
            .into_iter()
            .collect();
        if hist.is_empty() {
            return Err(format!(
                "no values for slot {slot} of template {pattern:?} (check `--top` output for exact patterns)"
            ));
        }
        hist.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        println!("\nslot {slot} of {pattern:?}:");
        for (value, n) in hist.iter().take(top) {
            println!("{n:>10}  {value}");
        }
        if hist.len() > top {
            println!("{:>10}  … {} more distinct values", "", hist.len() - top);
        }
    }
    Ok(())
}

fn cmd_summarize(opts: &Opts) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let window = opts.get_u64("window", 60)?;
    let seed = opts.get_u64("seed", 42)?;
    let mut summarizer =
        llmsim::StatusSummarizer::new(llmsim::ModelPreset::falcon_40b(), &corpus, seed);
    // Derive counts from a simulated window of traffic.
    let mut counts: BTreeMap<Category, u64> = BTreeMap::new();
    for tm in StreamGenerator::new(StreamConfig {
        seed,
        ..StreamConfig::default()
    })
    .take((window * 300 * 60 / 60) as usize)
    {
        *counts.entry(tm.message.category).or_default() += 1;
    }
    let counts: Vec<(Category, u64)> = counts.into_iter().collect();
    let r = summarizer.summarize_status(window, &counts);
    println!("{}", r.text);
    println!(
        "\n(modeled cost: {:.2}s on 4xA100 for {} prompt + {} generated tokens — a fine price \
         for one summary per hour, fatal for one per message)",
        r.inference_seconds, r.prompt_tokens, r.generated_tokens
    );
    Ok(())
}
