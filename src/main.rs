//! `hetsyslog` — command-line front end.
//!
//! ```text
//! hetsyslog generate --scale 0.05 --seed 42 --out corpus.jsonl
//! hetsyslog train    --corpus corpus.jsonl --model cnb --out model.json
//! hetsyslog classify --model model.json [--explain]   (messages on stdin)
//! hetsyslog eval     --scale 0.02 [--drop-unimportant]
//! hetsyslog monitor  --frames 20000 --workers 4 [--frontend reactor:threads=2]
//! hetsyslog summarize --scale 0.01 --window 60
//! ```
//!
//! Every subcommand is deterministic under `--seed` and uses only the
//! library crates — the CLI adds no logic of its own.

use hetsyslog::core::persist::{SavedModel, SavedPipeline};
use hetsyslog::core::service::CollectingSink;
use hetsyslog::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let opts = Opts::parse(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "train" => cmd_train(&opts),
        "classify" => cmd_classify(&opts),
        "eval" => cmd_eval(&opts),
        "monitor" => cmd_monitor(&opts),
        "top" => cmd_top(&opts),
        "templates" => cmd_templates(&opts),
        "summarize" => cmd_summarize(&opts),
        "--help" | "-h" | "help" => {
            usage_and_exit();
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "hetsyslog — heterogeneous syslog analysis\n\n\
         USAGE:\n  hetsyslog <command> [options]\n\n\
         COMMANDS:\n\
         \x20 generate   --scale F --seed N --out FILE      write a labeled synthetic corpus (JSONL)\n\
         \x20 train      --corpus FILE --model NAME --out FILE   train and save a pipeline\n\
         \x20 classify   --model FILE [--explain]           classify stdin lines\n\
         \x20 eval       --scale F [--drop-unimportant]     run the Figure 3 evaluation\n\
         \x20 monitor    --frames N --workers N [--sink SPEC]... [--spill DIR]  simulate real-time monitoring\n\
         \x20            [--frontend threads|reactor[:threads=N] [--conns N]]   replay over a live TCP listener\n\
         \x20 top        --addr HOST:PORT [--interval-ms N] one-shot dashboard from a /metrics scrape\n\
         \x20 templates  --frames N [--top K] [--histogram PATTERN --slot N]  mine the stream into a columnar store\n\
         \x20 summarize  --scale F --window MIN             LLM status summary (future-work demo)\n\n\
         SINKS (repeatable --sink SPEC; --spill DIR adds durable spill-then-replay per sink):\n\
         \x20 file:DIR            append-only CRC-framed segment files\n\
         \x20 bulk[:k=v,...]      simulated bulk indexer (error=F stall_ms=N outage=START+DUR seed=N)\n\
         \x20 metrics             per-category log-to-metric counters\n\n\
         MODELS: lr ridge knn rf svc sgd nc cnb"
    );
    std::process::exit(2);
}

/// Minimal `--key value` / `--flag` option bag. Repeated `--key` values
/// are all kept, in order (`--sink file:out --sink bulk` yields both).
struct Opts {
    values: BTreeMap<String, String>,
    repeated: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut values = BTreeMap::new();
        let mut repeated = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = it.next().unwrap().clone();
                        values.insert(key.to_string(), value.clone());
                        repeated.push((key.to_string(), value));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Opts {
            values,
            repeated,
            flags,
        }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Every value a repeated `--key` was given, in command-line order.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.repeated
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number")),
            None => Ok(default),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer")),
            None => Ok(default),
        }
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

fn load_corpus(opts: &Opts) -> Result<Vec<(String, Category)>, String> {
    match opts.get("corpus") {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let corpus = datagen::corpus::read_jsonl(std::io::BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(datagen::corpus::as_pairs(&corpus))
        }
        None => {
            let scale = opts.get_f64("scale", 0.02)?;
            let seed = opts.get_u64("seed", 42)?;
            Ok(datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
                scale,
                seed,
                min_per_class: 12,
            })))
        }
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let scale = opts.get_f64("scale", 0.05)?;
    let seed = opts.get_u64("seed", 42)?;
    let corpus = generate_corpus(&CorpusConfig {
        scale,
        seed,
        min_per_class: 12,
    });
    let out: Box<dyn Write> = match opts.get("out") {
        Some(path) => Box::new(std::fs::File::create(path).map_err(|e| e.to_string())?),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut out = std::io::BufWriter::new(out);
    datagen::corpus::write_jsonl(&corpus, &mut out).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} labeled messages (scale {scale}, seed {seed})",
        corpus.len()
    );
    Ok(())
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let model_name = opts.get("model").unwrap_or("cnb");
    let model = SavedModel::by_name(model_name).ok_or_else(|| {
        format!("unknown model {model_name:?} (try: lr ridge knn rf svc sgd nc cnb)")
    })?;
    let t0 = std::time::Instant::now();
    let pipeline = SavedPipeline::train(FeatureConfig::default(), model, &corpus);
    let seconds = t0.elapsed().as_secs_f64();
    let out = opts.get("out").unwrap_or("model.json");
    pipeline
        .save(std::path::Path::new(out))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "trained {} on {} messages in {seconds:.2}s → {out}",
        pipeline.name(),
        corpus.len()
    );
    Ok(())
}

fn cmd_classify(opts: &Opts) -> Result<(), String> {
    let model_path = opts.get("model").ok_or("--model FILE is required")?;
    let pipeline = SavedPipeline::load(std::path::Path::new(model_path))?;
    let explain = opts.has("explain");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        // Accept both raw message text and full syslog frames.
        let message = match parse(&line) {
            Ok(m) => m.message,
            Err(_) => line.clone(),
        };
        let p = pipeline.classify(&message);
        if explain {
            let tokens = pipeline.features.top_contributing_tokens(&message, 3);
            let ev: Vec<String> = tokens.iter().map(|(t, w)| format!("{t}:{w:.2}")).collect();
            writeln!(stdout, "{}\t{}\t[{}]", p.category, message, ev.join(", "))
                .map_err(|e| e.to_string())?;
        } else {
            writeln!(stdout, "{}\t{}", p.category, message).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let seed = opts.get_u64("seed", 42)?;
    let config = hetsyslog::core::eval::EvalConfig {
        seed,
        drop_unimportant: opts.has("drop-unimportant"),
        ..Default::default()
    };
    let mut models = paper_suite(seed);
    let (split, evals) = hetsyslog::core::eval::evaluate_suite(&corpus, &mut models, &config);
    println!(
        "{} train / {} test / {} features",
        split.train.len(),
        split.test.len(),
        split.train.n_features()
    );
    for e in &evals {
        println!(
            "{:<26} wF1={:.6} train={:>9.4}s test={:>9.4}s",
            e.report.model, e.report.weighted_f1, e.report.train_seconds, e.report.test_seconds
        );
    }
    Ok(())
}

/// Parse the repeated `--sink` specs into fan-out lanes:
///
/// * `file:DIR` — append-only CRC-framed segment files under `DIR`;
/// * `bulk[:k=v,…]` — simulated bulk indexer; options `error=F` (nack
///   rate), `stall_ms=N`, `outage=START+DUR` (seconds from first request),
///   `seed=N`;
/// * `metrics` — log-to-metric sink on the shared registry.
///
/// With `--spill DIR`, every lane gets a durable spill directory
/// `DIR/<sink-name>` (overload and outages become spill-then-replay
/// instead of drops).
fn parse_sink_specs(opts: &Opts, registry: &Registry) -> Result<Vec<SinkSpec>, String> {
    use std::time::Duration;
    let spill_root = opts.get("spill");
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut specs = Vec::new();
    for raw in opts.get_all("sink") {
        let (kind, arg) = match raw.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (raw, None),
        };
        let nth = *seen
            .entry(kind.to_string())
            .and_modify(|n| *n += 1)
            .or_insert(0);
        let name = if nth == 0 {
            kind.to_string()
        } else {
            format!("{kind}-{nth}")
        };
        let sink: Arc<dyn Sink> = match kind {
            "file" => {
                let dir = arg.ok_or("--sink file:DIR needs a directory")?;
                Arc::new(FileSink::new(name.clone(), dir).map_err(|e| format!("{dir}: {e}"))?)
            }
            "bulk" => {
                let mut plan = FaultPlan::healthy();
                for kv in arg.unwrap_or("").split(',').filter(|s| !s.is_empty()) {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("bad bulk option {kv:?} (want key=value)"))?;
                    let num = || -> Result<f64, String> {
                        v.parse()
                            .map_err(|_| format!("bulk {k}={v:?}: not a number"))
                    };
                    plan = match k {
                        "error" => plan.with_error_rate(num()?),
                        "stall_ms" => plan.with_stall(Duration::from_millis(num()? as u64)),
                        "seed" => plan.with_seed(num()? as u64),
                        "outage" => {
                            let (start, dur) = v.split_once('+').ok_or_else(|| {
                                format!("bulk outage={v:?}: want START+DUR seconds")
                            })?;
                            let secs = |s: &str| -> Result<Duration, String> {
                                s.parse::<f64>()
                                    .map(Duration::from_secs_f64)
                                    .map_err(|_| format!("bulk outage={v:?}: not numbers"))
                            };
                            plan.with_outage(secs(start)?, secs(dur)?)
                        }
                        other => return Err(format!("unknown bulk option {other:?}")),
                    };
                }
                Arc::new(BulkSink::new(name.clone(), plan))
            }
            "metrics" => Arc::new(MetricSink::new(name.clone(), registry)),
            other => {
                return Err(format!(
                    "unknown sink kind {other:?} (want file:DIR, bulk[:opts], or metrics)"
                ))
            }
        };
        let mut config = SinkLaneConfig::default();
        if let Some(root) = spill_root {
            config = config.with_spill(SpillConfig::new(std::path::Path::new(root).join(&name)));
        }
        specs.push(SinkSpec::with_config(sink, config));
    }
    Ok(specs)
}

/// Parse a `--frontend` spec: `threads`, `reactor`, or `reactor:threads=N`.
fn parse_frontend(spec: &str) -> Result<Frontend, String> {
    match spec.split_once(':') {
        None if spec == "threads" => Ok(Frontend::Threads),
        None if spec == "reactor" => Ok(Frontend::Reactor { threads: 0 }),
        Some(("reactor", arg)) => {
            let n = arg
                .strip_prefix("threads=")
                .ok_or_else(|| format!("--frontend reactor:{arg}: want reactor:threads=N"))?
                .parse()
                .map_err(|_| format!("--frontend reactor:{arg}: thread count must be a number"))?;
            Ok(Frontend::Reactor { threads: n })
        }
        _ => Err(format!(
            "unknown front end {spec:?} (want threads, reactor, or reactor:threads=N)"
        )),
    }
}

fn cmd_monitor(opts: &Opts) -> Result<(), String> {
    let frames = opts.get_u64("frames", 20_000)? as usize;
    let workers = opts.get_u64("workers", 4)? as usize;
    let seed = opts.get_u64("seed", 42)?;
    let frontend = opts.get("frontend").map(parse_frontend).transpose()?;
    let corpus = load_corpus(opts)?;
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let sink = Arc::new(CollectingSink::new());
    let service = Arc::new(
        MonitorService::new(clf)
            .with_prefilter(NoiseFilter::train(3, &corpus))
            .with_alert_sink(sink.clone()),
    );
    let store = Arc::new(LogStore::new());
    let registry = Registry::new();
    let sink_specs = parse_sink_specs(opts, &registry)?;
    let fan_out = if sink_specs.is_empty() {
        None
    } else {
        Some(FanOut::open(sink_specs, Some(&registry)).map_err(|e| e.to_string())?)
    };
    let stream: Vec<String> = StreamGenerator::new(StreamConfig {
        seed,
        ..StreamConfig::default()
    })
    .take(frames)
    .map(|t| t.to_frame())
    .collect();
    let (ingested, seconds) = if let Some(frontend) = frontend {
        // Replay the stream over loopback TCP through the real listener,
        // exercising the chosen front end (epoll reactor or one thread
        // per connection) end to end: framing, shard routing, batched
        // classification, store, and sink fan-out.
        run_monitor_listener(opts, frontend, workers, &stream, &store, &service, &fan_out)?
    } else {
        let mut ingest = ClassifyingIngest::new(store.clone(), service.clone(), workers);
        if let Some(fan_out) = &fan_out {
            ingest = ingest.with_fan_out(fan_out.clone());
        }
        let report = ingest.run(stream);
        (report.ingested, report.seconds)
    };
    let stats = service.stats();
    let rate = if seconds > 0.0 {
        ingested as f64 / seconds
    } else {
        0.0
    };
    println!(
        "ingested {} frames in {:.2}s ({:.2}M msgs/hour sustained)",
        ingested,
        seconds,
        rate * 3600.0 / 1e6
    );
    println!(
        "pre-filtered {} noise messages, {} alerts",
        stats.prefiltered, stats.alerts
    );
    for &c in &Category::ALL {
        if stats.count(c) > 0 {
            println!("  {:<20} {}", c.label(), stats.count(c));
        }
    }
    for a in sink.take().iter().take(3) {
        println!("alert: [{}] {}", a.category, a.message);
    }
    if let Some(fan_out) = &fan_out {
        // Graceful drain: wait for sink acks (or spill the remainder),
        // then print each lane's delivery ledger.
        fan_out.shutdown(std::time::Duration::from_secs(10));
        println!(
            "\n{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "sink", "submitted", "delivered", "dropped", "spilled", "pending", "retries", "ledger"
        );
        for s in fan_out.snapshots() {
            println!(
                "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                s.sink,
                s.submitted,
                s.delivered,
                s.dropped,
                s.spilled,
                s.spilled_pending,
                s.retries,
                if s.ledger_balanced() { "OK" } else { "BROKEN" },
            );
        }
    }
    Ok(())
}

/// The `--frontend` monitor path: start a real [`SyslogListener`] on
/// loopback with the requested TCP front end, split the frame stream
/// across `--conns` octet-counting senders, wait for the drain, and
/// return `(ingested, seconds)`. The listener's graceful shutdown also
/// drains the sink fan-out, so the caller's `FanOut::shutdown` is a no-op.
fn run_monitor_listener(
    opts: &Opts,
    frontend: Frontend,
    workers: usize,
    stream: &[String],
    store: &Arc<LogStore>,
    service: &Arc<MonitorService>,
    fan_out: &Option<Arc<FanOut>>,
) -> Result<(u64, f64), String> {
    use std::net::TcpStream;
    use std::time::{Duration, Instant};
    let conns = (opts.get_u64("conns", 8)? as usize).max(1);
    let listener = SyslogListener::start(
        store.clone(),
        Some(service.clone()),
        ListenerConfig {
            frontend,
            workers,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            fan_out: fan_out.clone(),
            ..ListenerConfig::default()
        },
    )
    .map_err(|e| format!("start listener: {e}"))?;
    let addr = listener.tcp_addr();
    println!(
        "listener up: tcp={addr}, front end {frontend:?} ({} reactor thread(s)), {conns} connection(s)",
        listener.n_reactors(),
    );

    let started = Instant::now();
    let senders: Vec<_> = (0..conns)
        .map(|c| {
            let share: Vec<String> = stream.iter().skip(c).step_by(conns).cloned().collect();
            std::thread::spawn(move || -> Result<(), String> {
                let mut sock =
                    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                let mut wire = Vec::with_capacity(share.iter().map(|f| f.len() + 8).sum());
                for frame in &share {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).map_err(|e| format!("write: {e}"))
            })
        })
        .collect();
    for sender in senders {
        sender.join().map_err(|_| "sender thread panicked".to_string())??;
    }
    let expected = stream.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    while listener.stats().snapshot().ingested < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let seconds = started.elapsed().as_secs_f64();
    let report = listener.shutdown();
    if report.ingested < expected {
        return Err(format!(
            "listener drained only {} of {expected} frames: {report:?}",
            report.ingested
        ));
    }
    Ok((report.ingested, seconds))
}

/// `hetsyslog top` — a one-shot terminal dashboard rendered from two
/// Prometheus scrapes of a live listener's `/metrics` endpoint (see
/// [`ListenerConfig::serve_metrics`]). Counter deltas over the interval
/// become rates; latency quantiles come from the second scrape's
/// cumulative histograms.
fn cmd_top(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .ok_or("--addr HOST:PORT of a /metrics endpoint is required")?;
    let interval_ms = opts.get_u64("interval-ms", 1000)?.max(10);
    let scrape = || -> Result<obs::Scrape, String> {
        let body = obs::http_get(addr, "/metrics").map_err(|e| format!("{addr}: {e}"))?;
        Ok(obs::parse_exposition(&body))
    };
    let first = scrape()?;
    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    let second = scrape()?;
    let dt = interval_ms as f64 / 1000.0;

    let rate = |name: &str| (second.total(name) - first.total(name)) / dt;
    let count = |name: &str| second.total(name);
    println!("hetsyslog top — {addr} (Δ {dt:.2}s)\n");
    println!(
        "ingest   frames {:>10}  ({:>8.0}/s)   bytes {:>12}  ({:>10.0}/s)",
        count("hetsyslog_ingest_frames_total"),
        rate("hetsyslog_ingest_frames_total"),
        count("hetsyslog_ingest_bytes_total"),
        rate("hetsyslog_ingest_bytes_total"),
    );
    println!(
        "store    stored {:>10}  ({:>8.0}/s)   records {:>10}   shards {:>3}",
        count("hetsyslog_ingest_stored_total"),
        rate("hetsyslog_ingest_stored_total"),
        count("hetsyslog_store_records_total"),
        count("hetsyslog_store_shards"),
    );
    println!(
        "queue    depth {:>6}    dead letters {:>6}    dropped: queue_full={} parse_error={}",
        count("hetsyslog_ingest_queue_depth"),
        count("hetsyslog_dead_letters_total"),
        second
            .value(
                "hetsyslog_ingest_dropped_total",
                &[("reason", "queue_full")]
            )
            .unwrap_or(0.0),
        second
            .value(
                "hetsyslog_ingest_dropped_total",
                &[("reason", "parse_error")]
            )
            .unwrap_or(0.0),
    );
    println!(
        "batch    batches {:>9}  ({:>8.0}/s)   classified {:>10}  ({:>8.0}/s)\n",
        count("hetsyslog_batch_batches_total"),
        rate("hetsyslog_batch_batches_total"),
        count("hetsyslog_batch_classified_total"),
        rate("hetsyslog_batch_classified_total"),
    );

    // Per-pipeline-shard fabric view: one row per `shard=N` label seen on
    // the routed-frames family (absent on pre-sharding or detached runs).
    let mut shard_ids: Vec<String> = second
        .samples
        .iter()
        .filter(|s| s.name == "hetsyslog_shard_frames_total")
        .filter_map(|s| s.label("shard").map(str::to_string))
        .collect();
    shard_ids.sort_by_key(|s| s.parse::<u64>().unwrap_or(u64::MAX));
    shard_ids.dedup();
    if !shard_ids.is_empty() {
        println!(
            "{:<8} {:>10} {:>10} {:>8} {:>8} {:>14}",
            "shard", "routed/s", "done/s", "depth", "steals", "stolen frames"
        );
        for id in &shard_ids {
            let labels: &[(&str, &str)] = &[("shard", id.as_str())];
            let svalue = |name: &str| second.value(name, labels).unwrap_or(0.0);
            let srate = |name: &str| (svalue(name) - first.value(name, labels).unwrap_or(0.0)) / dt;
            println!(
                "{:<8} {:>10.0} {:>10.0} {:>8} {:>8} {:>14}",
                id,
                srate("hetsyslog_shard_frames_total"),
                srate("hetsyslog_shard_processed_total"),
                svalue("hetsyslog_shard_queue_depth"),
                svalue("hetsyslog_shard_steals_total"),
                svalue("hetsyslog_shard_stolen_frames_total"),
            );
        }
        println!();
    }

    // Per-sink delivery ledger: one row per `sink=` label on the sink
    // stage's instruments (absent when no fan-out is attached).
    let sink_names = second.label_values("hetsyslog_sink_submitted_total", "sink");
    if !sink_names.is_empty() {
        println!(
            "{:<12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>8}",
            "sink", "submitted/s", "delivered/s", "dropped", "inflight", "pending", "nacks"
        );
        for name in &sink_names {
            let labels: &[(&str, &str)] = &[("sink", name.as_str())];
            let svalue = |n: &str| second.value(n, labels).unwrap_or(0.0);
            let srate = |n: &str| (svalue(n) - first.value(n, labels).unwrap_or(0.0)) / dt;
            // Dropped is further split by `reason`; fold it per sink.
            let dropped: f64 = second
                .samples
                .iter()
                .filter(|s| {
                    s.name == "hetsyslog_sink_dropped_total" && s.label("sink") == Some(name)
                })
                .map(|s| s.value)
                .sum();
            println!(
                "{:<12} {:>12.0} {:>12.0} {:>9} {:>9} {:>9} {:>8}",
                name,
                srate("hetsyslog_sink_submitted_total"),
                srate("hetsyslog_sink_delivered_total"),
                dropped,
                svalue("hetsyslog_sink_inflight"),
                svalue("hetsyslog_spill_pending"),
                svalue("hetsyslog_sink_nacks_total"),
            );
        }
        println!();
    }

    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>12}",
        "stage", "p50(µs)", "p90(µs)", "p99(µs)", "samples"
    );
    for stage in [
        "decode",
        "parse",
        "tokenize_transform",
        "predict",
        "store_insert",
    ] {
        let buckets = second.histogram_buckets("hetsyslog_stage_duration_us", &[("stage", stage)]);
        let samples: u64 = buckets.iter().map(|(_, c)| c).sum();
        println!(
            "{:<20} {:>10} {:>10} {:>10} {:>12}",
            stage,
            bucket_quantile(&buckets, 50.0),
            bucket_quantile(&buckets, 90.0),
            bucket_quantile(&buckets, 99.0),
            samples,
        );
    }

    let mut by_category: Vec<(String, f64)> = second
        .samples
        .iter()
        .filter(|s| s.name == "hetsyslog_monitor_classified_total" && s.value > 0.0)
        .filter_map(|s| s.label("category").map(|c| (c.to_string(), s.value)))
        .collect();
    by_category.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !by_category.is_empty() {
        println!("\nclassified by category:");
        for (category, n) in by_category {
            println!("  {category:<28} {n}");
        }
    }
    Ok(())
}

/// Upper bound of the bucket holding the `q`-th percentile sample of a
/// `(upper_bound, count)` histogram; `0` when the histogram is empty.
fn bucket_quantile(buckets: &[(u64, u64)], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (upper, c) in buckets {
        seen += c;
        if seen >= rank {
            return *upper;
        }
    }
    buckets.last().map(|(u, _)| *u).unwrap_or(0)
}

/// `hetsyslog templates` — run the synthetic stream into the log store,
/// seal it into template-mined columnar segments (DESIGN.md §6), and show
/// what the sealed tier knows without decompressing anything: rows per
/// template pattern, plus compression figures. With `--histogram PATTERN
/// --slot N` also prints the value distribution of one variable slot
/// (decompresses exactly one column per segment).
fn cmd_templates(opts: &Opts) -> Result<(), String> {
    let frames = opts.get_u64("frames", 20_000)? as usize;
    let seed = opts.get_u64("seed", 42)?;
    let top = opts.get_u64("top", 15)? as usize;
    let store = LogStore::new();
    let records = StreamGenerator::new(StreamConfig {
        seed,
        ..StreamConfig::default()
    })
    .take(frames)
    .enumerate()
    .map(|(i, tm)| hetsyslog::pipeline::LogRecord {
        id: i as u64,
        unix_seconds: tm.unix_seconds,
        node: tm.message.node.clone(),
        app: tm.message.app.clone(),
        severity: if tm.message.category.is_actionable() {
            Severity::Warning
        } else {
            Severity::Informational
        },
        facility: hetsyslog::syslog::Facility::Daemon,
        message: tm.message.text,
        category: Some(tm.message.category),
    });
    store.insert_batch(records);
    let mut jsonl = Vec::new();
    store.export_jsonl(&mut jsonl).map_err(|e| e.to_string())?;
    store.seal_all();
    let stats = store.segment_stats();

    let mut counts: Vec<(String, u64)> = store
        .count_by_template(i64::MIN, i64::MAX)
        .into_iter()
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!(
        "{} records → {} segment(s), {} templates",
        store.len(),
        store.n_segments(),
        counts.len(),
    );
    println!(
        "{} JSONL bytes → {} encoded ({:.1}x compression)\n",
        jsonl.len(),
        stats.encoded_bytes,
        jsonl.len() as f64 / stats.encoded_bytes.max(1) as f64,
    );
    println!("{:>10}  template", "rows");
    for (pattern, n) in counts.iter().take(top) {
        println!("{n:>10}  {pattern}");
    }
    if counts.len() > top {
        println!("{:>10}  … {} more", "", counts.len() - top);
    }

    if let Some(pattern) = opts.get("histogram") {
        let slot = opts.get_u64("slot", 0)? as usize;
        let mut hist: Vec<(String, u64)> = store
            .variable_histogram(pattern, slot)
            .into_iter()
            .collect();
        if hist.is_empty() {
            return Err(format!(
                "no values for slot {slot} of template {pattern:?} (check `--top` output for exact patterns)"
            ));
        }
        hist.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        println!("\nslot {slot} of {pattern:?}:");
        for (value, n) in hist.iter().take(top) {
            println!("{n:>10}  {value}");
        }
        if hist.len() > top {
            println!("{:>10}  … {} more distinct values", "", hist.len() - top);
        }
    }
    Ok(())
}

fn cmd_summarize(opts: &Opts) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let window = opts.get_u64("window", 60)?;
    let seed = opts.get_u64("seed", 42)?;
    let mut summarizer =
        llmsim::StatusSummarizer::new(llmsim::ModelPreset::falcon_40b(), &corpus, seed);
    // Derive counts from a simulated window of traffic.
    let mut counts: BTreeMap<Category, u64> = BTreeMap::new();
    for tm in StreamGenerator::new(StreamConfig {
        seed,
        ..StreamConfig::default()
    })
    .take((window * 300 * 60 / 60) as usize)
    {
        *counts.entry(tm.message.category).or_default() += 1;
    }
    let counts: Vec<(Category, u64)> = counts.into_iter().collect();
    let r = summarizer.summarize_status(window, &counts);
    println!("{}", r.text);
    println!(
        "\n(modeled cost: {:.2}s on 4xA100 for {} prompt + {} generated tokens — a fine price \
         for one summary per hour, fatal for one per message)",
        r.inference_seconds, r.prompt_tokens, r.generated_tokens
    );
    Ok(())
}
