//! # hetsyslog — Heterogeneous Syslog Analysis
//!
//! A from-scratch Rust reproduction of *"Heterogeneous Syslog Analysis:
//! There Is Hope"* (Quan, Howell & Greenberg, SC'23 SYSPROS): real-time
//! classification of syslog messages from a heterogeneous test-bed cluster
//! into actionable issue categories, comparing edit-distance bucketing,
//! eight traditional ML classifiers over lemmatized TF-IDF features, and
//! (simulated) large-language-model classifiers.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`syslog`] — message model, RFC 3164/5424 parsers, normalization;
//! * [`text`] — tokenizer, lemmatizer, sparse vectors, TF-IDF;
//! * [`editdist`] — Levenshtein/Damerau/Hamming and the exemplar-bucket
//!   baseline;
//! * [`ml`] — the eight-classifier suite, datasets and metrics;
//! * [`core`] — taxonomy, preprocessing pipeline, classifier adapters,
//!   noise filter, monitor service, evaluation harness;
//! * [`datagen`] — the synthetic Darwin corpus, drift model and stream;
//! * [`llm`] — the simulated generative / zero-shot LLM classifiers;
//! * [`pipeline`] — the Tivan-like store, ingest and monitoring views;
//! * [`obs`] — metrics registry, pipeline spans and the Prometheus-style
//!   scrape endpoint (see DESIGN §5b).
//!
//! # Quickstart
//!
//! ```
//! use hetsyslog::prelude::*;
//!
//! // A labeled corpus (the real system trains on ~196k Darwin messages).
//! let corpus: Vec<(String, Category)> = vec![
//!     ("CPU 3 temperature above threshold, clock throttled".into(), Category::ThermalIssue),
//!     ("CPU 9 temperature above threshold, clock throttled".into(), Category::ThermalIssue),
//!     ("Connection closed by 10.0.4.1 port 50412 [preauth]".into(), Category::SshConnection),
//!     ("Connection closed by 10.2.0.9 port 41001 [preauth]".into(), Category::SshConnection),
//! ];
//!
//! // Train the paper's preferred pipeline: lemmatize → TF-IDF → classifier.
//! let clf = TraditionalPipeline::train(
//!     FeatureConfig {
//!         tfidf: hetsyslog::text::TfidfConfig { min_df: 1, ..Default::default() },
//!         ..FeatureConfig::default()
//!     },
//!     Box::new(ComplementNaiveBayes::new(Default::default())),
//!     &corpus,
//! );
//!
//! let p = clf.classify("CPU 7 temperature above threshold, clock throttled");
//! assert_eq!(p.category, Category::ThermalIssue);
//! ```

pub use editdist;
pub use hetsyslog_core as core;
pub use hetsyslog_ml as ml;
pub use llmsim as llm;
pub use logpipeline as pipeline;
pub use obs;
pub use syslog_model as syslog;
pub use textproc as text;

/// Re-export of the corpus / drift / stream generators.
pub use datagen;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use datagen::{generate_corpus, CorpusConfig, StreamConfig, StreamGenerator};
    pub use editdist::{levenshtein, BucketStore, BucketingConfig};
    pub use hetsyslog_core::{
        BatchSnapshot, BucketBaseline, Category, Explanation, FeatureConfig, FeaturePipeline,
        FrameOutcome, ModelQuality, MonitorService, NoiseFilter, Prediction, SavedModel,
        SavedPipeline, TextClassifier, TraditionalPipeline,
    };
    pub use hetsyslog_ml::{
        paper_suite, BatchClassifier, Classifier, ComplementNaiveBayes, ConfusionMatrix, Dataset,
        KNearestNeighbors, LinearSvc, LogisticRegression, NearestCentroid, RandomForest,
        RidgeClassifier, SgdClassifier,
    };
    pub use llmsim::{
        GenerativeLlmClassifier, ModelPreset, PromptBuilder, StatusSummarizer,
        ZeroShotLlmClassifier,
    };
    pub use logpipeline::{
        compare_to_arch_peers, sensor_sweep, BulkSink, ClassifyingIngest, ClusterTopology, FanOut,
        FaultPlan, FileSink, Frontend, IngestPipeline, ListenerConfig, LogStore, MetricSink,
        OverloadPolicy, Query, SensorVerdict, Sink, SinkLaneConfig, SinkSpec, SpillConfig,
        SyslogListener,
    };
    pub use obs::{AlertEngine, Cmp, Registry, Rule, RuleInput, Telemetry};
    pub use syslog_model::{parse, split_stream, FrameDecoder, Severity, SyslogMessage};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_all_subsystems() {
        // One symbol per subsystem, to catch broken re-exports early.
        let _ = Category::ALL;
        let _ = levenshtein("a", "b");
        let _ = CorpusConfig::default();
        let _ = ModelPreset::falcon_7b();
        let _ = LogStore::new();
        let _ = parse("<13>Oct 11 22:14:15 n app: m");
    }
}
