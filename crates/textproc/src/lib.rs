//! NLP substrate for heterogeneous syslog classification.
//!
//! Reimplements, from scratch, the preprocessing stack the paper builds on
//! top of NLTK and scikit-learn:
//!
//! * [`token`] — a syslog-aware tokenizer (keeps identifiers like
//!   `lpi_hbm_nn` and `slurm_rpc_node_registration` intact, splits
//!   punctuation, lowercases),
//! * [`lemma`] — a WordNet-`morphy`-style rule-based English lemmatizer with
//!   an exception lexicon (§4.3.2 of the paper),
//! * [`stopwords`] — a standard English stopword list,
//! * [`sparse`] — sparse vectors and CSR matrices used by every classifier,
//! * [`vocab`] — token ↔ id interning,
//! * [`tfidf`] — a TF-IDF vectorizer with per-category top-token ranking
//!   (Table 1 of the paper),
//! * [`hashing`] — a vocabulary-free hashing vectorizer (drift-immune
//!   features for the X3 adaptation study),
//! * [`ngram`] — word and character n-gram extraction,
//! * [`template`] — a LogShrink-style log-template miner (bucket by word
//!   count, similarity-cluster, variables → `<*>`) with lossless
//!   message reconstruction — the codec behind the columnar log store.

pub mod hash;
pub mod hashing;
pub mod lemma;
pub mod ngram;
pub mod sparse;
pub mod stopwords;
pub mod template;
pub mod tfidf;
pub mod token;
pub mod vocab;

pub use hashing::HashingVectorizer;
pub use lemma::Lemmatizer;
pub use sparse::{CsrMatrix, SparseVec};
pub use template::{Template, TemplateMiner, TemplateToken};
pub use tfidf::{TfidfConfig, TfidfVectorizer};
pub use token::{tokenize, Tokenizer, TokenizerConfig};
pub use vocab::Vocabulary;

/// The full preprocessing pipeline the paper settles on: tokenize,
/// lemmatize, drop stopwords. Returns processed tokens ready for vectorizing.
pub fn preprocess(text: &str) -> Vec<String> {
    let tokenizer = Tokenizer::default();
    let lemmatizer = Lemmatizer::new();
    tokenizer
        .tokenize(text)
        .into_iter()
        .filter(|t| !stopwords::is_stopword(t))
        .map(|t| lemmatizer.lemmatize(&t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocess_pipeline() {
        let toks = preprocess("The system has failed: CPUs throttled");
        // "the"/"has" are stopwords; "failed"→"fail", "cpus"→"cpu",
        // "throttled"→"throttle".
        assert_eq!(toks, vec!["system", "fail", "cpu", "throttle"]);
    }

    #[test]
    fn preprocess_empty() {
        assert!(preprocess("").is_empty());
    }
}
