//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! Token interning and document-frequency counting hash millions of short
//! strings; SipHash (the std default) dominates profiles there. This is the
//! FxHash algorithm used by rustc — low quality but very fast, and HashDoS
//! is not a concern for an offline analysis library. (See the Rust
//! Performance Book, "Hashing".)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc FxHash word-at-a-time multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one("throttle"), hash_one("throttle"));
        assert_eq!(hash_one(42u64), hash_one(42u64));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_one("cpu0"), hash_one("cpu1"));
        assert_ne!(hash_one("throttle"), hash_one("throttled"));
    }

    #[test]
    fn usable_in_collections() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("temp".to_string(), 1);
        m.insert("temp".to_string(), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m["temp"], 2);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.extend([1, 2, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn spreads_low_bits() {
        // Sequential keys must not all collide in low bits (map buckets).
        let hashes: Vec<u64> = (0u64..64).map(hash_one).collect();
        let distinct_low: std::collections::HashSet<u64> =
            hashes.iter().map(|h| h & 0xff).collect();
        assert!(distinct_low.len() > 32, "low bits poorly distributed");
    }
}
