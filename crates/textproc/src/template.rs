//! LogShrink-style template mining (ROADMAP item 2).
//!
//! A syslog stream is overwhelmingly a few hundred *templates* — constant
//! word skeletons — instantiated with per-message variables (node ids,
//! temperatures, PIDs). The miner recovers those skeletons from a batch of
//! raw messages with the classic recipe: bucket messages by word count,
//! similarity-cluster within a bucket (≥ [`TemplateMiner::DEFAULT_THRESHOLD`]
//! of positions must match the cluster representative), and mark every
//! position the cluster members disagree on as a variable slot, rendered
//! [`VAR`] in the pattern string.
//!
//! Everything here is **lossless**: a message is split with
//! [`split_words`] (single-space separation, preserving empty words so
//! runs of spaces survive), and [`Template::reconstruct`] re-joins the
//! constant words with a message's extracted variables into the original
//! byte-identical string. Tabs, punctuation, and unicode stay inside
//! words untouched — this is a storage codec first, a feature extractor
//! second, so it must never normalize.
//!
//! Mining is two-phase per batch (per sealed segment in the columnar
//! store): [`TemplateMiner::observe`] assigns every message a stable
//! cluster id while narrowing each cluster's constant mask, then
//! [`TemplateMiner::finalize`] freezes the masks into [`Template`]s.
//! Cluster ids never merge or renumber, so ids recorded during the
//! observe pass stay valid for the encode pass.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The variable marker used in rendered template patterns.
pub const VAR: &str = "<*>";

/// Split a message into words on single spaces, losslessly: empty words
/// are kept, so `join(" ")` over the result is byte-identical to the
/// input (runs of spaces become runs of empty words).
pub fn split_words(message: &str) -> Vec<&str> {
    message.split(' ').collect()
}

/// One position of a mined template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateToken {
    /// This position holds the same word in every member message.
    Const(String),
    /// This position varies; the word lives in the member's variable list.
    Var,
}

/// A frozen template: the constant skeleton of one message cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    tokens: Vec<TemplateToken>,
}

impl Template {
    /// Build from explicit tokens (used by segment deserialization).
    pub fn from_tokens(tokens: Vec<TemplateToken>) -> Template {
        Template { tokens }
    }

    /// The token positions.
    pub fn tokens(&self) -> &[TemplateToken] {
        &self.tokens
    }

    /// Number of word positions.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Templates always have at least one position ([`split_words`] never
    /// returns an empty vector), so this is always false; provided for
    /// clippy-idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of variable slots.
    pub fn n_vars(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t, TemplateToken::Var))
            .count()
    }

    /// The human-readable pattern, variables rendered as [`VAR`]:
    /// `"temperature <*> on node <*> above threshold"`. Display/grouping
    /// key only — [`VAR`] can collide with a literal `<*>` word, which is
    /// why reconstruction never parses this string.
    pub fn pattern(&self) -> String {
        let words: Vec<&str> = self
            .tokens
            .iter()
            .map(|t| match t {
                TemplateToken::Const(w) => w.as_str(),
                TemplateToken::Var => VAR,
            })
            .collect();
        words.join(" ")
    }

    /// Extract the variable words of `message` under this template, in
    /// slot order. Returns `None` when the message does not fit (wrong
    /// word count, or a constant position disagrees).
    pub fn extract_vars<'m>(&self, message: &'m str) -> Option<Vec<&'m str>> {
        let words = split_words(message);
        if words.len() != self.tokens.len() {
            return None;
        }
        let mut vars = Vec::with_capacity(self.n_vars());
        for (word, token) in words.iter().zip(&self.tokens) {
            match token {
                TemplateToken::Const(c) if c == word => {}
                TemplateToken::Const(_) => return None,
                TemplateToken::Var => vars.push(*word),
            }
        }
        Some(vars)
    }

    /// Rebuild the original message from extracted variables — the exact
    /// inverse of [`Template::extract_vars`], byte-identical.
    pub fn reconstruct<S: AsRef<str>>(&self, vars: &[S]) -> String {
        let mut vars = vars.iter();
        let words: Vec<&str> = self
            .tokens
            .iter()
            .map(|t| match t {
                TemplateToken::Const(w) => w.as_str(),
                TemplateToken::Var => vars.next().map(AsRef::as_ref).unwrap_or(""),
            })
            .collect();
        words.join(" ")
    }
}

/// One growing cluster: the first member's words plus the mask of
/// positions every member so far agrees on.
#[derive(Debug)]
struct Cluster {
    rep: Vec<String>,
    constant: Vec<bool>,
    members: u64,
}

impl Cluster {
    fn similarity(&self, words: &[&str]) -> f64 {
        debug_assert_eq!(words.len(), self.rep.len());
        let matching = self
            .rep
            .iter()
            .zip(words)
            .filter(|(r, w)| r.as_str() == **w)
            .count();
        matching as f64 / self.rep.len() as f64
    }

    fn absorb(&mut self, words: &[&str]) {
        for (i, word) in words.iter().enumerate() {
            if self.constant[i] && self.rep[i] != *word {
                self.constant[i] = false;
            }
        }
        self.members += 1;
    }
}

/// The two-phase batch miner. See the module docs for the protocol.
#[derive(Debug)]
pub struct TemplateMiner {
    threshold: f64,
    clusters: Vec<Cluster>,
    /// word count → cluster indices, in creation order (deterministic:
    /// the first sufficiently similar cluster wins).
    buckets: HashMap<usize, Vec<u32>>,
}

impl Default for TemplateMiner {
    fn default() -> TemplateMiner {
        TemplateMiner::new()
    }
}

impl TemplateMiner {
    /// The LogShrink similarity threshold: at least half the positions
    /// must match the cluster representative to join it.
    pub const DEFAULT_THRESHOLD: f64 = 0.5;

    /// A miner with the default threshold.
    pub fn new() -> TemplateMiner {
        TemplateMiner::with_threshold(Self::DEFAULT_THRESHOLD)
    }

    /// A miner with a custom similarity threshold in `(0, 1]`.
    pub fn with_threshold(threshold: f64) -> TemplateMiner {
        TemplateMiner {
            threshold: threshold.clamp(f64::MIN_POSITIVE, 1.0),
            clusters: Vec::new(),
            buckets: HashMap::new(),
        }
    }

    /// Number of clusters mined so far.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Assign `message` to a cluster (creating one if no same-word-count
    /// cluster is ≥ threshold similar), narrowing that cluster's constant
    /// mask. Returns the stable cluster id.
    pub fn observe(&mut self, message: &str) -> u32 {
        let words = split_words(message);
        let bucket = self.buckets.entry(words.len()).or_default();
        for &id in bucket.iter() {
            let cluster = &mut self.clusters[id as usize];
            if cluster.similarity(&words) >= self.threshold {
                cluster.absorb(&words);
                return id;
            }
        }
        let id = self.clusters.len() as u32;
        bucket.push(id);
        self.clusters.push(Cluster {
            rep: words.iter().map(|w| w.to_string()).collect(),
            constant: vec![true; words.len()],
            members: 1,
        });
        id
    }

    /// Freeze every cluster into a [`Template`], indexed by the cluster
    /// ids [`TemplateMiner::observe`] returned.
    pub fn finalize(self) -> Vec<Template> {
        self.clusters
            .into_iter()
            .map(|c| Template {
                tokens: c
                    .rep
                    .into_iter()
                    .zip(c.constant)
                    .map(|(word, constant)| {
                        if constant {
                            TemplateToken::Const(word)
                        } else {
                            TemplateToken::Var
                        }
                    })
                    .collect(),
            })
            .collect()
    }
}

/// Mine a batch in one call: returns the frozen templates plus, per
/// message, its `(template_id, variables)` encoding. The encoding is
/// lossless: `templates[id].reconstruct(&vars)` is byte-identical to the
/// input message.
pub fn mine<S: AsRef<str>>(
    messages: &[S],
    threshold: f64,
) -> (Vec<Template>, Vec<(u32, Vec<String>)>) {
    let mut miner = TemplateMiner::with_threshold(threshold);
    let ids: Vec<u32> = messages.iter().map(|m| miner.observe(m.as_ref())).collect();
    let templates = miner.finalize();
    let rows = messages
        .iter()
        .zip(ids)
        .map(|(m, id)| {
            let vars = templates[id as usize]
                .extract_vars(m.as_ref())
                .expect("observed message fits its own cluster's template")
                .into_iter()
                .map(str::to_string)
                .collect();
            (id, vars)
        })
        .collect();
    (templates, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_words_is_lossless() {
        for msg in ["", " ", "a b", "a  b", " leading", "trailing ", "a\tb c"] {
            assert_eq!(split_words(msg).join(" "), msg);
        }
    }

    #[test]
    fn mines_variable_positions() {
        let msgs = [
            "temperature 91C on node cn01",
            "temperature 88C on node cn02",
            "temperature 95C on node cn17",
        ];
        let (templates, rows) = mine(&msgs, 0.5);
        assert_eq!(templates.len(), 1);
        assert_eq!(templates[0].pattern(), "temperature <*> on node <*>");
        assert_eq!(templates[0].n_vars(), 2);
        assert_eq!(rows[1].1, vec!["88C", "cn02"]);
    }

    #[test]
    fn dissimilar_messages_stay_apart() {
        let msgs = ["usb device 3 attached", "kernel oops at 0xfff"];
        let (templates, _) = mine(&msgs, 0.5);
        assert_eq!(templates.len(), 2);
    }

    #[test]
    fn word_count_buckets_never_mix() {
        let msgs = ["a b c", "a b c d"];
        let (templates, _) = mine(&msgs, 0.1);
        assert_eq!(templates.len(), 2);
    }

    #[test]
    fn reconstruction_is_byte_identical() {
        let msgs = [
            "temperature 91C on node cn01",
            "temperature 88C on node cn02",
            "weird  double space 1",
            "weird  double space 2",
            " leading and trailing ",
            "",
            "<*> literal marker 9",
            "<*> literal marker 10",
        ];
        let (templates, rows) = mine(&msgs, 0.5);
        for (msg, (id, vars)) in msgs.iter().zip(&rows) {
            assert_eq!(
                &templates[*id as usize].reconstruct(vars),
                msg,
                "round trip failed"
            );
        }
    }

    #[test]
    fn threshold_controls_merging() {
        let msgs = ["a x y z", "a p q r"];
        // 1/4 positions match: merged only under a permissive threshold.
        let (strict, _) = mine(&msgs, 0.5);
        assert_eq!(strict.len(), 2);
        let (loose, _) = mine(&msgs, 0.25);
        assert_eq!(loose.len(), 1);
        assert_eq!(loose[0].pattern(), "a <*> <*> <*>");
    }

    #[test]
    fn cluster_ids_are_stable_across_observe_order() {
        let mut miner = TemplateMiner::new();
        let a = miner.observe("alpha beta 1");
        let b = miner.observe("gamma delta epsilon zeta eta theta");
        let a2 = miner.observe("alpha beta 2");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let templates = miner.finalize();
        assert_eq!(templates[a as usize].pattern(), "alpha beta <*>");
    }

    #[test]
    fn extract_vars_rejects_misfits() {
        let (templates, _) = mine(&["a b 1", "a b 2"], 0.5);
        let t = &templates[0];
        assert_eq!(t.extract_vars("a b 3"), Some(vec!["3"]));
        assert_eq!(t.extract_vars("a c 3"), None, "constant mismatch");
        assert_eq!(t.extract_vars("a b"), None, "wrong word count");
    }
}
