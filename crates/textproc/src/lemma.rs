//! Rule-based English lemmatizer in the style of WordNet's `morphy`.
//!
//! The paper (§4.3.2) lemmatizes with the NLTK WordNet lemmatizer so that
//! "failed", "failure", "failing" and "fail" share a stem regardless of
//! which part of speech a vendor's firmware happens to use. WordNet works by
//! (1) looking the word up in an exception lexicon of irregular forms, then
//! (2) applying suffix-detachment rules and accepting the first candidate
//! found in the dictionary. We reproduce exactly that structure with an
//! embedded dictionary of common English plus the syslog domain vocabulary.
//!
//! Words not resolvable through the dictionary fall back to conservative
//! suffix stripping, which keeps unknown vendor identifiers intact.

use crate::hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

mod lexicon;

/// Irregular forms → lemma (WordNet `exc` files, trimmed to forms that occur
/// in system logs and common English).
const EXCEPTIONS: &[(&str, &str)] = &[
    ("ran", "run"),
    ("running", "run"),
    ("went", "go"),
    ("gone", "go"),
    ("began", "begin"),
    ("begun", "begin"),
    ("broke", "break"),
    ("broken", "break"),
    ("came", "come"),
    ("children", "child"),
    ("did", "do"),
    ("done", "do"),
    ("drew", "draw"),
    ("drawn", "draw"),
    ("fell", "fall"),
    ("fallen", "fall"),
    ("feet", "foot"),
    ("found", "find"),
    ("froze", "freeze"),
    ("frozen", "freeze"),
    ("gave", "give"),
    ("given", "give"),
    ("got", "get"),
    ("gotten", "get"),
    ("held", "hold"),
    ("hung", "hang"),
    ("kept", "keep"),
    ("knew", "know"),
    ("known", "know"),
    ("left", "leave"),
    ("lost", "lose"),
    ("made", "make"),
    ("men", "man"),
    ("mice", "mouse"),
    ("ran_out", "run_out"),
    ("read", "read"),
    ("rose", "rise"),
    ("risen", "rise"),
    ("sent", "send"),
    ("set", "set"),
    ("shut", "shut"),
    ("slept", "sleep"),
    ("spoke", "speak"),
    ("spoken", "speak"),
    ("stood", "stand"),
    ("stuck", "stick"),
    ("swapped", "swap"),
    ("swapping", "swap"),
    ("threw", "throw"),
    ("thrown", "throw"),
    ("took", "take"),
    ("taken", "take"),
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("being", "be"),
    ("is", "be"),
    ("are", "be"),
    ("woke", "wake"),
    ("woken", "wake"),
    ("wrote", "write"),
    ("written", "write"),
];

/// Suffix detachment rules, tried in order. `(suffix, replacement)` — the
/// candidate is accepted if the result is in the dictionary.
const RULES: &[(&str, &str)] = &[
    // Nouns
    ("ies", "y"),
    ("sses", "ss"),
    ("shes", "sh"),
    ("ches", "ch"),
    ("xes", "x"),
    ("zes", "z"),
    ("ves", "f"),
    ("es", "e"),
    ("es", ""),
    ("s", ""),
    // Verbs
    ("ied", "y"),
    ("ed", "e"),
    ("ed", ""),
    ("ing", "e"),
    ("ing", ""),
    // Adjectives
    ("er", ""),
    ("est", ""),
    ("er", "e"),
    ("est", "e"),
];

/// A WordNet-morphy-style lemmatizer. Construction is cheap (shared static
/// tables); keep one per thread or share freely. (Stateless, so
/// serialization carries only its presence in a pipeline config.)
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lemmatizer {
    _private: (),
}

fn exceptions() -> &'static FxHashMap<&'static str, &'static str> {
    static MAP: OnceLock<FxHashMap<&'static str, &'static str>> = OnceLock::new();
    MAP.get_or_init(|| EXCEPTIONS.iter().copied().collect())
}

fn dictionary() -> &'static FxHashSet<&'static str> {
    static SET: OnceLock<FxHashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| lexicon::DICTIONARY.iter().copied().collect())
}

impl Lemmatizer {
    /// Construct a lemmatizer.
    pub fn new() -> Lemmatizer {
        Lemmatizer::default()
    }

    /// Lemmatize one lowercase token.
    ///
    /// Unknown tokens (vendor identifiers, hostnames) are returned
    /// unchanged except for conservative plural stripping.
    pub fn lemmatize(&self, token: &str) -> String {
        // 1. Irregular forms.
        if let Some(lemma) = exceptions().get(token) {
            return (*lemma).to_string();
        }
        let dict = dictionary();
        // 2. Already a dictionary lemma (or too short to safely strip).
        if dict.contains(token) || token.chars().count() <= 3 {
            return token.to_string();
        }
        // 3. Morphy: detach suffixes, accept the first dictionary hit.
        for (suffix, replacement) in RULES {
            if let Some(stem) = token.strip_suffix(suffix) {
                if stem.is_empty() {
                    continue;
                }
                let candidate = format!("{stem}{replacement}");
                if dict.contains(candidate.as_str()) {
                    return candidate;
                }
                // Doubled final consonant before -ed/-ing: "throttled" was
                // caught by the dictionary; this catches e.g. "stopped".
                if (*suffix == "ed" || *suffix == "ing") && replacement.is_empty() {
                    let undoubled = undouble(stem);
                    if let Some(u) = undoubled {
                        if dict.contains(u.as_str()) {
                            return u;
                        }
                    }
                }
            }
        }
        // 4. Conservative fallback for unknown vocabulary: strip plural -s
        //    and -es where unambiguous, leave everything else alone.
        self.fallback(token)
    }

    fn fallback(&self, token: &str) -> String {
        if let Some(stem) = token.strip_suffix("ies") {
            if stem.len() >= 2 {
                return format!("{stem}y");
            }
        }
        if token.ends_with("ss") || token.ends_with("us") || token.ends_with("is") {
            return token.to_string();
        }
        if let Some(stem) = token.strip_suffix('s') {
            if stem.len() >= 3 && !stem.ends_with('s') {
                return stem.to_string();
            }
        }
        token.to_string()
    }

    /// Lemmatize a token stream.
    pub fn lemmatize_all(&self, tokens: &[String]) -> Vec<String> {
        tokens.iter().map(|t| self.lemmatize(t)).collect()
    }
}

/// If `stem` ends in a doubled consonant (not l/s/z which legitimately
/// double), return it with one dropped.
fn undouble(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    if bytes.len() >= 2 {
        let last = bytes[bytes.len() - 1];
        if last == bytes[bytes.len() - 2]
            && last.is_ascii_alphabetic()
            && !matches!(last, b'l' | b's' | b'z' | b'e' | b'o')
        {
            return Some(stem[..stem.len() - 1].to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lem(word: &str) -> String {
        Lemmatizer::new().lemmatize(word)
    }

    #[test]
    fn paper_example_fail_family() {
        // §4.3.2: "The system has failed", "a failure in the system",
        // "The system is failing" — all forms of "fail".
        assert_eq!(lem("failed"), "fail");
        assert_eq!(lem("failing"), "fail");
        assert_eq!(lem("fails"), "fail");
        assert_eq!(lem("fail"), "fail");
    }

    #[test]
    fn thermal_vocabulary() {
        assert_eq!(lem("throttled"), "throttle");
        assert_eq!(lem("throttling"), "throttle");
        assert_eq!(lem("temperatures"), "temperature");
        assert_eq!(lem("sensors"), "sensor");
        assert_eq!(lem("overheating"), "overheat");
    }

    #[test]
    fn plurals() {
        assert_eq!(lem("cpus"), "cpu");
        assert_eq!(lem("devices"), "device");
        assert_eq!(lem("buses"), "bus");
        assert_eq!(lem("processes"), "process");
        assert_eq!(lem("batteries"), "battery");
        assert_eq!(lem("addresses"), "address");
    }

    #[test]
    fn irregulars() {
        assert_eq!(lem("was"), "be");
        assert_eq!(lem("broken"), "break");
        assert_eq!(lem("went"), "go");
        assert_eq!(lem("found"), "find");
    }

    #[test]
    fn doubled_consonants() {
        assert_eq!(lem("stopped"), "stop");
        assert_eq!(lem("dropped"), "drop");
        assert_eq!(lem("plugged"), "plug");
    }

    #[test]
    fn non_words_pass_through() {
        assert_eq!(lem("lpi_hbm_nn"), "lpi_hbm_nn");
        assert_eq!(lem("eth0"), "eth0");
        assert_eq!(lem("0x1f"), "0x1f");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(lem("its"), "its");
        assert_eq!(lem("bus"), "bus");
        assert_eq!(lem("is"), "be"); // exception, not a rule
    }

    #[test]
    fn words_ending_in_ss_us_is_keep_s() {
        assert_eq!(lem("status"), "status");
        assert_eq!(lem("analysis"), "analysis");
        assert_eq!(lem("access"), "access");
    }

    #[test]
    fn unknown_plural_fallback() {
        // Not in the dictionary, but safely strippable.
        assert_eq!(lem("gizmotrons"), "gizmotron");
        assert_eq!(lem("frobberies"), "frobbery");
    }

    #[test]
    fn idempotent_on_lemmas() {
        for w in ["fail", "throttle", "temperature", "memory", "connection"] {
            assert_eq!(lem(&lem(w)), lem(w));
        }
    }
}
