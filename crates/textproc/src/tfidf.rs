//! TF-IDF vectorization (§4.3.1 of the paper).
//!
//! Two uses, matching the paper:
//!
//! 1. [`TfidfVectorizer`] — per-message feature vectors for the traditional
//!    classifiers (fit document frequencies on a training corpus, transform
//!    any message into a sparse vector).
//! 2. [`category_top_tokens`] — the Table 1 analysis, where each *category*
//!    is treated as one document and the corpus is the set of categories;
//!    the top-scoring tokens per category become both human-readable
//!    explanations and prompt material for the LLM classifiers.

use crate::hash::{FxHashMap, FxHashSet};
use crate::sparse::{csr_from_items, CsrMatrix, SparseVec};
use crate::vocab::Vocabulary;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Vectorizer options, mirroring the scikit-learn defaults the paper used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TfidfConfig {
    /// Ignore tokens appearing in fewer than this many documents.
    pub min_df: usize,
    /// Ignore tokens appearing in more than this fraction of documents.
    pub max_df_ratio: f64,
    /// Cap the vocabulary at the `max_features` highest-document-frequency
    /// tokens (`None` = unlimited).
    pub max_features: Option<usize>,
    /// Use `1 + ln(tf)` instead of raw term frequency.
    pub sublinear_tf: bool,
    /// Smooth idf: `ln((1+n)/(1+df)) + 1` (scikit-learn default).
    pub smooth_idf: bool,
    /// L2-normalize each output vector.
    pub l2_normalize: bool,
}

impl Default for TfidfConfig {
    fn default() -> Self {
        TfidfConfig {
            min_df: 1,
            max_df_ratio: 1.0,
            max_features: None,
            sublinear_tf: false,
            smooth_idf: true,
            l2_normalize: true,
        }
    }
}

/// A fitted TF-IDF vectorizer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TfidfVectorizer {
    config: TfidfConfig,
    vocab: Vocabulary,
    idf: Vec<f64>,
    n_documents: usize,
}

impl TfidfVectorizer {
    /// Create an unfitted vectorizer.
    pub fn new(config: TfidfConfig) -> TfidfVectorizer {
        TfidfVectorizer {
            config,
            ..TfidfVectorizer::default()
        }
    }

    /// Fit document frequencies over tokenized documents.
    pub fn fit<D: AsRef<[String]>>(&mut self, documents: &[D]) {
        let mut df: FxHashMap<String, usize> = FxHashMap::default();
        // Hashed per-document dedup: the linear `Vec::contains` scan this
        // replaces was quadratic in document length.
        let mut seen: FxHashSet<&str> = FxHashSet::default();
        for doc in documents {
            seen.clear();
            for tok in doc.as_ref() {
                if seen.insert(tok.as_str()) {
                    *df.entry(tok.clone()).or_insert(0) += 1;
                }
            }
        }
        let n = documents.len();
        let max_df = (self.config.max_df_ratio * n as f64).ceil() as usize;
        let mut kept: Vec<(String, usize)> = df
            .into_iter()
            .filter(|&(_, c)| c >= self.config.min_df && c <= max_df.max(1))
            .collect();
        // Deterministic vocabulary order: by df desc, then token asc.
        kept.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if let Some(cap) = self.config.max_features {
            kept.truncate(cap);
        }

        self.vocab = Vocabulary::new();
        self.idf = Vec::with_capacity(kept.len());
        self.n_documents = n;
        for (token, count) in kept {
            self.vocab.intern(&token);
            self.idf.push(self.idf_value(count, n));
        }
    }

    fn idf_value(&self, df: usize, n: usize) -> f64 {
        if self.config.smooth_idf {
            ((1.0 + n as f64) / (1.0 + df as f64)).ln() + 1.0
        } else {
            (n as f64 / df as f64).ln() + 1.0
        }
    }

    /// Transform one tokenized document into a sparse TF-IDF vector.
    /// Tokens outside the fitted vocabulary are ignored.
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        let mut counts: FxHashMap<u32, f64> = FxHashMap::default();
        for tok in tokens {
            if let Some(id) = self.vocab.get(tok) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let pairs: Vec<(u32, f64)> = counts
            .into_iter()
            .map(|(id, tf)| {
                let tf = if self.config.sublinear_tf {
                    1.0 + tf.ln()
                } else {
                    tf
                };
                (id, tf * self.idf[id as usize])
            })
            .collect();
        let mut v = SparseVec::from_pairs(pairs);
        if self.config.l2_normalize {
            v.l2_normalize();
        }
        v
    }

    /// Transform many documents in parallel.
    pub fn transform_batch<D: AsRef<[String]> + Sync>(&self, documents: &[D]) -> Vec<SparseVec> {
        documents
            .par_iter()
            .map(|d| self.transform(d.as_ref()))
            .collect()
    }

    /// Transform many documents straight into one CSR matrix — the batch
    /// inference path. Parallel over document chunks; each chunk reuses its
    /// count map and pair scratch across documents instead of allocating a
    /// [`SparseVec`] per document. Row `i` is bit-identical to
    /// `self.transform(documents[i])`.
    pub fn transform_batch_csr<D: AsRef<[String]> + Sync>(&self, documents: &[D]) -> CsrMatrix {
        csr_from_items(
            documents,
            self.n_features(),
            FxHashMap::default,
            |doc, pairs, counts| {
                counts.clear();
                for tok in doc.as_ref() {
                    if let Some(id) = self.vocab.get(tok) {
                        *counts.entry(id).or_insert(0.0) += 1.0;
                    }
                }
                self.fill_pairs_from_counts(counts, pairs)
            },
        )
    }

    /// Vocabulary id for one (already preprocessed) token.
    pub fn token_id(&self, token: &str) -> Option<u32> {
        self.vocab.get(token)
    }

    /// Append one document's TF-IDF `(id, weight)` pairs given its per-id
    /// term counts — the same math as [`TfidfVectorizer::transform`] after
    /// vocabulary lookup. Returns whether the finished row should be
    /// L2-normalized. Callers that resolve tokens to ids themselves (e.g. a
    /// batch path with a token cache) use this to stay bit-identical to the
    /// per-document transform.
    pub fn fill_pairs_from_counts(
        &self,
        counts: &FxHashMap<u32, f64>,
        pairs: &mut Vec<(u32, f64)>,
    ) -> bool {
        pairs.extend(counts.iter().map(|(&id, &tf)| {
            let tf = if self.config.sublinear_tf {
                1.0 + tf.ln()
            } else {
                tf
            };
            (id, tf * self.idf[id as usize])
        }));
        self.config.l2_normalize
    }

    /// Fit then transform in one call.
    pub fn fit_transform<D: AsRef<[String]> + Sync>(&mut self, documents: &[D]) -> Vec<SparseVec> {
        self.fit(documents);
        self.transform_batch(documents)
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The idf weight for a feature id.
    pub fn idf(&self, id: u32) -> Option<f64> {
        self.idf.get(id as usize).copied()
    }

    /// Number of documents the vectorizer was fitted on.
    pub fn n_documents(&self) -> usize {
        self.n_documents
    }

    /// Number of features (= vocabulary size).
    pub fn n_features(&self) -> usize {
        self.vocab.len()
    }
}

/// One category's ranked token list (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryTokens {
    /// Category label as supplied.
    pub category: String,
    /// `(token, score)` in descending score order.
    pub tokens: Vec<(String, f64)>,
}

/// Rank tokens per category, treating each category's concatenated messages
/// as a single document and the set of categories as the corpus — exactly
/// the construction the paper uses for Table 1.
///
/// `grouped` maps a category label to the tokenized messages belonging to
/// it. Returns one entry per category in the input order, each holding the
/// `top_k` highest TF-IDF tokens.
pub fn category_top_tokens(
    grouped: &[(String, Vec<Vec<String>>)],
    top_k: usize,
) -> Vec<CategoryTokens> {
    let n_categories = grouped.len();
    // Term frequency inside each category-document.
    let per_cat_tf: Vec<FxHashMap<&str, f64>> = grouped
        .iter()
        .map(|(_, docs)| {
            let mut tf: FxHashMap<&str, f64> = FxHashMap::default();
            for doc in docs {
                for tok in doc {
                    *tf.entry(tok.as_str()).or_insert(0.0) += 1.0;
                }
            }
            tf
        })
        .collect();
    // Document frequency across category-documents.
    let mut df: FxHashMap<&str, usize> = FxHashMap::default();
    for tf in &per_cat_tf {
        for tok in tf.keys() {
            *df.entry(tok).or_insert(0) += 1;
        }
    }

    grouped
        .iter()
        .zip(&per_cat_tf)
        .map(|((category, _), tf)| {
            let total: f64 = tf.values().sum::<f64>().max(1.0);
            let mut scored: Vec<(String, f64)> = tf
                .iter()
                .map(|(tok, &count)| {
                    let idf = ((1.0 + n_categories as f64) / (1.0 + df[tok] as f64)).ln() + 1.0;
                    ((*tok).to_string(), (count / total) * idf)
                })
                .collect();
            scored.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            scored.truncate(top_k);
            CategoryTokens {
                category: category.clone(),
                tokens: scored,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts
            .iter()
            .map(|t| t.split_whitespace().map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn fit_transform_shapes() {
        let d = docs(&["cpu hot cpu", "disk cold", "cpu disk"]);
        let mut v = TfidfVectorizer::new(TfidfConfig::default());
        let rows = v.fit_transform(&d);
        assert_eq!(rows.len(), 3);
        assert_eq!(v.n_features(), 4);
        assert_eq!(v.n_documents(), 3);
        for r in &rows {
            assert!((r.norm() - 1.0).abs() < 1e-9, "rows must be unit length");
        }
    }

    #[test]
    fn rare_terms_outweigh_common() {
        let d = docs(&["cpu hot", "cpu cold", "cpu slow", "gpu fast"]);
        let mut v = TfidfVectorizer::new(TfidfConfig {
            l2_normalize: false,
            ..TfidfConfig::default()
        });
        v.fit(&d);
        let cpu = v.vocab.get("cpu").unwrap();
        let gpu = v.vocab.get("gpu").unwrap();
        assert!(v.idf(gpu).unwrap() > v.idf(cpu).unwrap());
    }

    #[test]
    fn min_df_filters() {
        let d = docs(&["a b", "a c", "a d"]);
        let mut v = TfidfVectorizer::new(TfidfConfig {
            min_df: 2,
            ..TfidfConfig::default()
        });
        v.fit(&d);
        assert_eq!(v.n_features(), 1); // only "a" appears twice+
        assert!(v.vocabulary().get("a").is_some());
    }

    #[test]
    fn max_df_filters_ubiquitous() {
        let d = docs(&["a b", "a c", "a d", "a e"]);
        let mut v = TfidfVectorizer::new(TfidfConfig {
            max_df_ratio: 0.5,
            ..TfidfConfig::default()
        });
        v.fit(&d);
        assert!(v.vocabulary().get("a").is_none());
        assert!(v.vocabulary().get("b").is_some());
    }

    #[test]
    fn max_features_caps() {
        let d = docs(&["a a b c", "a b d", "a b e"]);
        let mut v = TfidfVectorizer::new(TfidfConfig {
            max_features: Some(2),
            ..TfidfConfig::default()
        });
        v.fit(&d);
        assert_eq!(v.n_features(), 2);
        // Highest-df tokens kept: a (3 docs), b (3 docs).
        assert!(v.vocabulary().get("a").is_some());
        assert!(v.vocabulary().get("b").is_some());
    }

    #[test]
    fn unseen_tokens_ignored() {
        let d = docs(&["a b"]);
        let mut v = TfidfVectorizer::new(TfidfConfig::default());
        v.fit(&d);
        let out = v.transform(&["zzz".to_string()]);
        assert!(out.is_empty());
    }

    #[test]
    fn transform_batch_matches_sequential() {
        let d = docs(&["cpu hot now", "disk cold", "net slow cpu"]);
        let mut v = TfidfVectorizer::new(TfidfConfig::default());
        v.fit(&d);
        let batch = v.transform_batch(&d);
        for (i, doc) in d.iter().enumerate() {
            assert_eq!(batch[i], v.transform(doc));
        }
    }

    #[test]
    fn category_tokens_pick_discriminative_words() {
        let grouped = vec![
            (
                "Thermal".to_string(),
                docs(&[
                    "cpu temperature threshold throttle",
                    "sensor temperature high throttle",
                    "processor throttle temperature",
                ]),
            ),
            (
                "USB".to_string(),
                docs(&[
                    "usb device hub new",
                    "usb device number new",
                    "usb hub power",
                ]),
            ),
        ];
        let ranked = category_top_tokens(&grouped, 3);
        assert_eq!(ranked.len(), 2);
        let thermal: Vec<&str> = ranked[0].tokens.iter().map(|(t, _)| t.as_str()).collect();
        assert!(thermal.contains(&"temperature") || thermal.contains(&"throttle"));
        let usb: Vec<&str> = ranked[1].tokens.iter().map(|(t, _)| t.as_str()).collect();
        assert!(usb.contains(&"usb") || usb.contains(&"device"));
        // Scores are sorted descending.
        for ct in &ranked {
            for w in ct.tokens.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn category_tokens_empty_category() {
        let grouped = vec![("Empty".to_string(), Vec::new())];
        let ranked = category_top_tokens(&grouped, 5);
        assert!(ranked[0].tokens.is_empty());
    }

    #[test]
    fn sublinear_tf_damps_repeats() {
        let d = docs(&["a a a a b", "c d"]);
        let mut lin = TfidfVectorizer::new(TfidfConfig {
            l2_normalize: false,
            ..TfidfConfig::default()
        });
        let mut sub = TfidfVectorizer::new(TfidfConfig {
            l2_normalize: false,
            sublinear_tf: true,
            ..TfidfConfig::default()
        });
        lin.fit(&d);
        sub.fit(&d);
        let a_lin = lin.transform(&d[0]).get(lin.vocabulary().get("a").unwrap());
        let a_sub = sub.transform(&d[0]).get(sub.vocabulary().get("a").unwrap());
        assert!(a_sub < a_lin);
    }
}
