//! Embedded dictionary for the lemmatizer.
//!
//! The morphy algorithm needs a word list to validate suffix-detachment
//! candidates against. This is a compact union of (a) high-frequency English
//! lemmas and (b) the HPC/syslog domain vocabulary observed across vendor
//! dialects — roughly what the WordNet index contributes for this corpus.
//! Keep entries lowercase and alphabetically grouped.

/// Dictionary of accepted lemmas.
pub const DICTIONARY: &[&str] = &[
    // -- a --
    "abort", "accept", "access", "account", "acknowledge", "act", "action", "activate",
    "active", "adapter", "add", "address", "adjust", "admin", "agent", "alarm", "alert",
    "alias", "align", "alloc", "allocate", "allocation", "allow", "analysis", "analyze",
    "anomaly", "answer", "append", "application", "apply", "architecture", "archive",
    "argument", "arm", "array", "assert", "assign", "attach", "attempt", "audit", "auth",
    "authenticate", "authentication", "authorize", "available", "average",
    // -- b --
    "backup", "bad", "balance", "bandwidth", "bank", "bar", "base", "baseboard", "battery",
    "begin", "bind", "bit", "block", "board", "boot", "bound", "branch", "break", "bridge",
    "bring", "broadcast", "buffer", "bug", "build", "burst", "bus", "busy", "byte",
    // -- c --
    "cable", "cache", "calculate", "call", "cancel", "capacity", "card", "case", "cell",
    "certificate", "chain", "change", "channel", "charge", "chassis", "check", "child",
    "chip", "clean", "clear", "client", "clock", "clone", "close", "cluster", "code",
    "cold", "collect", "command", "commit", "compare", "complete", "compute", "condition",
    "config", "configuration", "configure", "confirm", "congest", "congestion", "connect",
    "connection", "console", "consume", "contain", "container", "context", "control",
    "controller", "cool", "copy", "core", "correct", "corrupt", "corruption", "count",
    "cpu", "crash", "create", "critical", "cron", "current", "cycle",
    // -- d --
    "daemon", "damage", "data", "database", "deactivate", "debug", "decode", "decrease",
    "default", "defer", "degrade", "delay", "delete", "deliver", "deny", "depend",
    "deploy", "detach", "detect", "device", "diagnose", "diagnostic", "die", "dimm",
    "direct", "directory", "disable", "disconnect", "discover", "disk", "dispatch",
    "dock", "document", "domain", "down", "download", "drain", "drift", "drive", "driver",
    "drop", "dump", "duplicate",
    // -- e --
    "echo", "edge", "edit", "eject", "elapse", "emit", "empty", "enable", "encode",
    "encounter", "end", "enforce", "engine", "enter", "entry", "enumerate", "environment",
    "error", "establish", "event", "evict", "example", "exceed", "exception", "exchange",
    "exclude", "execute", "exist", "exit", "expand", "expect", "expire", "export",
    "express", "extend", "extract",
    // -- f --
    "fabric", "fail", "failure", "fall", "fan", "fatal", "fault", "fetch", "field",
    "file", "filesystem", "filter", "find", "fine", "finish", "firmware", "fix", "flag",
    "flap", "flash", "flood", "flow", "flush", "foot", "force", "forget", "fork",
    "format", "forward", "frame", "free", "freeze", "frequency", "full", "function",
    // -- g --
    "gate", "gateway", "generate", "get", "give", "go", "good", "gpu", "grant", "group",
    "grow", "guard",
    // -- h --
    "halt", "handle", "hang", "hard", "hardware", "hash", "header", "health", "heat",
    "high", "hit", "hold", "hook", "host", "hot", "hub",
    // -- i --
    "identify", "identity", "idle", "ignore", "image", "imbalance", "import", "increase",
    "index", "indicate", "info", "inform", "init", "initialize", "inject", "input",
    "insert", "inspect", "install", "instance", "instruction", "interface", "interrupt",
    "intrusion", "invalid", "invalidate", "invoke", "issue", "item",
    // -- j --
    "job", "join", "journal",
    // -- k --
    "keep", "kernel", "key", "kill", "know",
    // -- l --
    "label", "lane", "last", "latency", "launch", "layer", "lead", "leak", "lease",
    "leave", "level", "library", "license", "limit", "line", "link", "list", "listen",
    "load", "lock", "log", "login", "logout", "lose", "loss", "low",
    // -- m --
    "machine", "mail", "main", "maintain", "make", "man", "manage", "manager", "map",
    "mark", "mask", "master", "match", "maximum", "measure", "mechanism", "media",
    "member", "memory", "message", "metric", "migrate", "minimum", "mirror", "miss",
    "mode", "model", "modify", "module", "monitor", "mount", "mouse", "move",
    // -- n --
    "name", "network", "new", "nic", "node", "noise", "normal", "note", "notice",
    "notify", "number",
    // -- o --
    "object", "occur", "offline", "old", "online", "open", "operate", "operation",
    "option", "order", "output", "overflow", "overheat", "override", "overrun", "owner",
    // -- p --
    "pack", "package", "packet", "page", "pair", "panic", "parameter", "parity", "parse",
    "part", "partition", "pass", "password", "patch", "path", "pause", "peer", "pend",
    "perform", "persist", "phase", "ping", "pipe", "place", "plan", "platform", "plug",
    "pool", "port", "position", "post", "power", "preempt", "prepare", "present",
    "preserve", "press", "prevent", "print", "probe", "problem", "process", "processor",
    "produce", "profile", "program", "progress", "protect", "protocol", "prove",
    "provide", "provision", "proxy", "publish", "pull", "purge", "push",
    // -- q --
    "query", "queue", "quit", "quota",
    // -- r --
    "rack", "raid", "raise", "range", "rate", "reach", "read", "reading", "ready",
    "reason", "reboot", "receive", "record", "recover", "recoverable", "redirect",
    "reduce", "refresh", "refuse", "region", "register", "registration", "reject",
    "relay", "release", "reload", "remain", "remote", "remove", "render", "renew",
    "repair", "repeat", "replace", "reply", "report", "request", "require", "reset",
    "resize", "resolve", "resource", "respond", "response", "restart", "restore",
    "restrict", "result", "resume", "retire", "retry", "return", "reverse", "revoke",
    "ring", "rise", "risk", "roll", "root", "route", "router", "rule", "run",
    // -- s --
    "sample", "save", "scale", "scan", "schedule", "scheduler", "scrub", "search",
    "section", "sector", "secure", "security", "seek", "segment", "segfault", "select",
    "send", "sensor", "serial", "serve", "server", "service", "session", "set",
    "settle", "setup", "share", "shell", "shift", "show", "shut", "shutdown", "side",
    "sign", "signal", "size", "skip", "slave", "sleep", "slot", "slow", "slurm",
    "socket", "soft", "software", "space", "spawn", "speak", "speed", "spike", "spin",
    "split", "stack", "stage", "stall", "stand", "start", "state", "station", "status",
    "stay", "step", "stick", "stop", "storage", "store", "stream", "stress", "strip",
    "submit", "subscribe", "subsystem", "succeed", "success", "supply", "support",
    "surge", "suspend", "swap", "switch", "sync", "synchronize", "syslog", "system",
    // -- t --
    "table", "tag", "take", "target", "task", "temperature", "terminate", "test",
    "thermal", "thread", "threshold", "throttle", "throughput", "throw", "time",
    "timeout", "timestamp", "token", "tool", "top", "trace", "track", "traffic",
    "transaction", "transfer", "transition", "translate", "transmit", "trap", "trigger",
    "trip", "try", "tune", "turn", "type",
    // -- u --
    "unit", "unmount", "unplug", "unreachable", "unrecoverable", "update", "upgrade",
    "upload", "usb", "use", "user", "utility",
    // -- v --
    "valid", "validate", "value", "vendor", "verify", "version", "violate", "violation",
    "virtual", "voltage", "volume",
    // -- w --
    "wait", "wake", "walk", "warn", "warning", "watch", "watchdog", "wear", "wire",
    "word", "work", "wrap", "write",
    // -- x/y/z --
    "yield", "zone",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_sorted_unique_lowercase() {
        let mut sorted = DICTIONARY.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), DICTIONARY.len(), "duplicate dictionary entries");
        assert!(DICTIONARY
            .iter()
            .all(|w| w.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn core_domain_vocabulary_present() {
        for w in ["throttle", "temperature", "slurm", "usb", "memory", "preauth"] {
            if w == "preauth" {
                continue; // identifier, deliberately not a lemma
            }
            assert!(DICTIONARY.contains(&w), "{w} missing from dictionary");
        }
    }
}
