//! Syslog-aware tokenization.
//!
//! The tokens the paper reports in Table 1 include plain words
//! (`temperature`, `throttled`), snake_case identifiers
//! (`slurm_rpc_node_registration`, `lpi_hbm_nn`, `real_memory`, `cn`), and
//! short codes. A generic word tokenizer would shred the identifiers, so
//! this one treats `_` as a word character, splits on everything else
//! non-alphanumeric, and lowercases.

use serde::{Deserialize, Serialize};

/// Tokenizer options.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizerConfig {
    /// Lowercase tokens (default true).
    pub lowercase: bool,
    /// Keep `_` inside tokens (default true — preserves syslog identifiers).
    pub keep_underscores: bool,
    /// Drop tokens consisting only of digits (default true; raw numbers are
    /// per-instance noise for classification).
    pub drop_pure_numbers: bool,
    /// Minimum token length in chars (default 1).
    pub min_len: usize,
    /// Maximum token length in chars; longer tokens are dropped as line
    /// noise / encoded blobs (default 48).
    pub max_len: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            lowercase: true,
            keep_underscores: true,
            drop_pure_numbers: true,
            min_len: 1,
            max_len: 48,
        }
    }
}

/// A configurable tokenizer. Cheap to construct and `Copy`-sized; share one
/// per thread in hot loops.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Construct with a custom config.
    pub fn with_config(config: TokenizerConfig) -> Tokenizer {
        Tokenizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Tokenize `text` into owned tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        self.tokenize_each(text, |t| tokens.push(t.to_string()));
        tokens
    }

    /// Streaming tokenization: invoke `f` on each token in place, reusing
    /// one scratch buffer — no per-token allocation. Tokens arrive in the
    /// same order and with the same content as [`Tokenizer::tokenize`].
    pub fn tokenize_each(&self, text: &str, mut f: impl FnMut(&str)) {
        if text.is_ascii() {
            // Syslog traffic is overwhelmingly ASCII; byte-wise scanning
            // with borrowed token slices avoids the per-char Unicode
            // case-mapping that dominates the generic path.
            self.tokenize_each_ascii(text, &mut f)
        } else {
            self.tokenize_each_unicode(text, &mut f)
        }
    }

    /// Byte-oriented fast path for pure-ASCII text: tokens that are
    /// already lowercase are handed to `f` as borrowed slices of `text`
    /// (zero copies); mixed-case tokens are lowercased into one reused
    /// scratch buffer. Must produce exactly what the Unicode path would.
    fn tokenize_each_ascii(&self, text: &str, f: &mut impl FnMut(&str)) {
        let bytes = text.as_bytes();
        let mut scratch = String::new();
        let mut i = 0;
        while i < bytes.len() {
            while i < bytes.len() && !self.is_ascii_word(bytes[i]) {
                i += 1;
            }
            let start = i;
            while i < bytes.len() && self.is_ascii_word(bytes[i]) {
                i += 1;
            }
            if start == i {
                break;
            }
            // ASCII: char count == byte count.
            let len = i - start;
            if len < self.config.min_len || len > self.config.max_len {
                continue;
            }
            let token = &text[start..i];
            if self.config.drop_pure_numbers && token.bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            if self.config.lowercase && token.bytes().any(|b| b.is_ascii_uppercase()) {
                scratch.clear();
                scratch.push_str(token);
                scratch.make_ascii_lowercase();
                f(&scratch);
            } else {
                f(token);
            }
        }
    }

    fn is_ascii_word(&self, b: u8) -> bool {
        b.is_ascii_alphanumeric() || (self.config.keep_underscores && b == b'_')
    }

    fn tokenize_each_unicode(&self, text: &str, mut f: &mut impl FnMut(&str)) {
        let mut current = String::new();
        for c in text.chars() {
            if self.is_word_char(c) {
                if self.config.lowercase {
                    // Lowercase expansion can emit combining marks (e.g.
                    // 'İ' → "i\u{307}"); keep only word characters so the
                    // output invariant (alphanumeric or '_') holds.
                    current.extend(c.to_lowercase().filter(|&lc| self.is_word_char(lc)));
                } else {
                    current.push(c);
                }
            } else if !current.is_empty() {
                self.flush(&mut current, &mut f);
            }
        }
        if !current.is_empty() {
            self.flush(&mut current, &mut f);
        }
    }

    fn is_word_char(&self, c: char) -> bool {
        c.is_alphanumeric() || (self.config.keep_underscores && c == '_')
    }

    fn flush(&self, current: &mut String, f: &mut impl FnMut(&str)) {
        let len = current.chars().count();
        let keep = len >= self.config.min_len
            && len <= self.config.max_len
            && !(self.config.drop_pure_numbers && current.bytes().all(|b| b.is_ascii_digit()));
        if keep {
            f(current);
        }
        current.clear();
    }
}

/// Tokenize with the default configuration.
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::default().tokenize(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_fast_path_matches_unicode_path() {
        let configs = [
            TokenizerConfig::default(),
            TokenizerConfig {
                lowercase: false,
                ..TokenizerConfig::default()
            },
            TokenizerConfig {
                drop_pure_numbers: false,
                min_len: 2,
                max_len: 8,
                keep_underscores: false,
                ..TokenizerConfig::default()
            },
        ];
        let inputs = [
            "CPU temperature above threshold",
            "error in slurm_rpc_node_registration for lpi_hbm_nn",
            "port 22 open; retry=3  \t (code 0x7F)",
            "ALLCAPS MiXeD lower 123 _ _x_ a",
            "",
            "!!! --- ...",
            "trailing_token",
        ];
        for config in configs {
            let t = Tokenizer::with_config(config);
            for input in inputs {
                assert!(input.is_ascii());
                let mut fast = Vec::new();
                t.tokenize_each_ascii(input, &mut |tok: &str| fast.push(tok.to_string()));
                let mut slow = Vec::new();
                t.tokenize_each_unicode(input, &mut |tok: &str| slow.push(tok.to_string()));
                assert_eq!(fast, slow, "paths diverge on {input:?} with {:?}", t.config);
            }
        }
    }

    #[test]
    fn basic_words() {
        assert_eq!(
            tokenize("CPU temperature above threshold"),
            vec!["cpu", "temperature", "above", "threshold"]
        );
    }

    #[test]
    fn keeps_snake_case_identifiers() {
        assert_eq!(
            tokenize("error in slurm_rpc_node_registration for lpi_hbm_nn"),
            vec![
                "error",
                "in",
                "slurm_rpc_node_registration",
                "for",
                "lpi_hbm_nn"
            ]
        );
    }

    #[test]
    fn splits_punctuation_and_drops_numbers() {
        assert_eq!(
            tokenize(
                "CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C"
            ),
            vec![
                "cpu",
                "temperature",
                "above",
                "non",
                "recoverable",
                "asserted",
                "current",
                "temperature",
                "95c"
            ]
        );
    }

    #[test]
    fn mixed_alnum_tokens_survive() {
        assert_eq!(
            tokenize("usb 1-1 device eth0"),
            vec!["usb", "device", "eth0"]
        );
    }

    #[test]
    fn pure_numbers_kept_when_configured() {
        let t = Tokenizer::with_config(TokenizerConfig {
            drop_pure_numbers: false,
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("port 22"), vec!["port", "22"]);
    }

    #[test]
    fn case_preserved_when_configured() {
        let t = Tokenizer::with_config(TokenizerConfig {
            lowercase: false,
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("CPU Hot"), vec!["CPU", "Hot"]);
    }

    #[test]
    fn max_len_drops_blobs() {
        let blob = "a".repeat(100);
        assert!(tokenize(&format!("ok {blob} fine")) == vec!["ok", "fine"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n ").is_empty());
        assert!(tokenize("!!! --- ...").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(
            tokenize("überhitzung am knoten"),
            vec!["überhitzung", "am", "knoten"]
        );
    }
}
