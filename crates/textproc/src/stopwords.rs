//! English stopword list.
//!
//! The standard short English function-word list (close to NLTK's), plus
//! nothing domain-specific: words like `error` or `failed` are *features*
//! for syslog classification, not noise, so the list is deliberately
//! conservative.

use crate::hash::FxHashSet;
use std::sync::OnceLock;

/// The raw stopword list, lowercase.
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

fn stopword_set() -> &'static FxHashSet<&'static str> {
    static SET: OnceLock<FxHashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is `token` (already lowercase) a stopword?
pub fn is_stopword(token: &str) -> bool {
    stopword_set().contains(token)
}

/// Remove stopwords from a token stream in place.
pub fn remove_stopwords(tokens: &mut Vec<String>) {
    tokens.retain(|t| !is_stopword(t));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_words_are_stopwords() {
        for w in ["the", "is", "a", "of", "and"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn domain_words_are_not() {
        for w in [
            "error",
            "failed",
            "temperature",
            "cpu",
            "usb",
            "root",
            "user",
            "warning",
        ] {
            assert!(!is_stopword(w), "{w} must NOT be a stopword");
        }
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), STOPWORDS.len());
        assert!(STOPWORDS
            .iter()
            .all(|w| w.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn remove_in_place() {
        let mut toks: Vec<String> = ["the", "cpu", "is", "hot"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        remove_stopwords(&mut toks);
        assert_eq!(toks, vec!["cpu", "hot"]);
    }
}
