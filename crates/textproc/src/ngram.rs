//! N-gram extraction.
//!
//! The paper's related work anchors on "N-gram analysis" (Cavnar & Trenkle)
//! as the traditional text-categorization baseline; word n-grams are also a
//! standard feature augmentation for the classifiers in `hetsyslog-ml`.

/// Produce word n-grams of order `n` over `tokens`, joined with `_`.
///
/// Returns an empty vector when `n == 0` or `tokens.len() < n`.
pub fn word_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join("_")).collect()
}

/// Word n-grams for every order in `1..=max_n`, concatenated (the
/// "ngram_range=(1, max_n)" convention).
pub fn word_ngram_range(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        out.extend(word_ngrams(tokens, n));
    }
    out
}

/// Character n-grams of a single string (Cavnar-Trenkle style, including
/// word-boundary padding with `_`).
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('_')
        .chain(text.chars())
        .chain(std::iter::once('_'))
        .collect();
    if padded.len() < n {
        return Vec::new();
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn bigrams() {
        assert_eq!(
            word_ngrams(&toks("cpu temp high"), 2),
            vec!["cpu_temp", "temp_high"]
        );
    }

    #[test]
    fn unigrams_are_identity() {
        assert_eq!(word_ngrams(&toks("a b"), 1), vec!["a", "b"]);
    }

    #[test]
    fn degenerate_cases() {
        assert!(word_ngrams(&toks("a"), 2).is_empty());
        assert!(word_ngrams(&toks("a b"), 0).is_empty());
        assert!(word_ngrams(&[], 1).is_empty());
    }

    #[test]
    fn range_concatenates_orders() {
        let grams = word_ngram_range(&toks("a b c"), 2);
        assert_eq!(grams, vec!["a", "b", "c", "a_b", "b_c"]);
    }

    #[test]
    fn char_trigrams_padded() {
        let grams = char_ngrams("ab", 3);
        assert_eq!(grams, vec!["_ab", "ab_"]);
    }

    #[test]
    fn char_ngrams_short_input() {
        assert!(char_ngrams("", 4).is_empty());
        assert_eq!(char_ngrams("", 2), vec!["__"]);
    }
}
