//! Token ↔ id interning for feature vectors.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A bidirectional token ↔ `u32` id mapping.
///
/// Ids are dense and assigned in first-seen order, so a fitted vocabulary
/// doubles as the feature-index space of every vectorizer built on it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: FxHashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Intern `token`, returning its id (existing or new).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        id
    }

    /// Look up an id without interning.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// The token for `id`.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Iterate `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("cpu");
        let b = v.intern("temperature");
        assert_eq!(v.intern("cpu"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.token(a), Some("cpu"));
        assert_eq!(v.token(b), Some("temperature"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.token(99), None);
    }

    #[test]
    fn ids_are_dense_first_seen_order() {
        let mut v = Vocabulary::new();
        for (i, t) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(v.intern(t), i as u32);
        }
        let collected: Vec<_> = v.iter().map(|(_, t)| t.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let json = serde_json::to_string(&v).unwrap();
        let back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("y"), Some(1));
        assert_eq!(back.len(), 2);
    }
}
