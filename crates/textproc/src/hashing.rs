//! Feature hashing (the "hashing trick") — a vocabulary-free vectorizer.
//!
//! The fitted TF-IDF vocabulary is the weak point under vocabulary drift
//! (experiment X3: unseen vendor jargon simply vanishes from the feature
//! vector). A hashing vectorizer needs no fit: every token — including one
//! never seen before — maps to a stable bucket `hash(token) % n_buckets`,
//! so new vocabulary still lands somewhere a model can learn from
//! incrementally. The cost is collisions and the loss of inverse
//! document-frequency weighting (there is no corpus statistic to weight
//! by), traded for zero-maintenance deployment.
//!
//! Signed hashing (`+1/−1` by one hash bit, as in scikit-learn and
//! Weinberger et al.) keeps collisions unbiased in expectation.

use crate::hash::FxHasher;
use crate::sparse::{csr_from_items, CsrMatrix, SparseVec};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Stateless hashing vectorizer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashingVectorizer {
    /// Number of feature buckets (a power of two keeps the modulo cheap).
    pub n_buckets: u32,
    /// Use the sign bit to make collisions cancel in expectation.
    pub signed: bool,
    /// L2-normalize the output vector.
    pub l2_normalize: bool,
}

impl Default for HashingVectorizer {
    fn default() -> Self {
        HashingVectorizer {
            n_buckets: 1 << 15, // 32 768, sklearn-ish default scale
            signed: true,
            l2_normalize: true,
        }
    }
}

impl HashingVectorizer {
    /// A vectorizer with `n_buckets` features.
    pub fn with_buckets(n_buckets: u32) -> HashingVectorizer {
        HashingVectorizer {
            n_buckets: n_buckets.max(1),
            ..HashingVectorizer::default()
        }
    }

    fn bucket_and_sign(&self, token: &str) -> (u32, f64) {
        let mut h = FxHasher::default();
        token.hash(&mut h);
        let hash = h.finish();
        let bucket = (hash % self.n_buckets as u64) as u32;
        let sign = if self.signed && (hash >> 63) == 1 {
            -1.0
        } else {
            1.0
        };
        (bucket, sign)
    }

    /// Vectorize a tokenized document. Never fails, never needs fitting.
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        let pairs: Vec<(u32, f64)> = tokens.iter().map(|t| self.bucket_and_sign(t)).collect();
        let mut v = SparseVec::from_pairs(pairs);
        if self.l2_normalize {
            v.l2_normalize();
        }
        v
    }

    /// Vectorize many documents straight into one CSR matrix (the batch
    /// inference path; see [`crate::tfidf::TfidfVectorizer::transform_batch_csr`]).
    /// Row `i` is bit-identical to `self.transform(documents[i])`.
    pub fn transform_batch_csr<D: AsRef<[String]> + Sync>(&self, documents: &[D]) -> CsrMatrix {
        csr_from_items(
            documents,
            self.n_features(),
            || (),
            |doc, pairs, _| {
                pairs.extend(doc.as_ref().iter().map(|t| self.bucket_and_sign(t)));
                self.l2_normalize
            },
        )
    }

    /// Feature-space dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_buckets as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn deterministic_and_stateless() {
        let v = HashingVectorizer::default();
        let a = v.transform(&toks("cpu temperature throttled"));
        let b = v.transform(&toks("cpu temperature throttled"));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn unseen_tokens_still_get_features() {
        let v = HashingVectorizer::default();
        // "tjunction" was never in any corpus; it must still vectorize.
        let out = v.transform(&toks("tjunction downclocked setpoint"));
        assert_eq!(out.nnz(), 3);
    }

    #[test]
    fn buckets_bound_indices() {
        let v = HashingVectorizer::with_buckets(64);
        let out = v.transform(&toks("a b c d e f g h i j k l m n"));
        assert!(out.max_dim() <= 64);
    }

    #[test]
    fn repeated_tokens_accumulate() {
        let v = HashingVectorizer {
            l2_normalize: false,
            signed: false,
            ..HashingVectorizer::default()
        };
        let once = v.transform(&toks("cpu"));
        let thrice = v.transform(&toks("cpu cpu cpu"));
        let idx = once.indices()[0];
        assert_eq!(thrice.get(idx), 3.0 * once.get(idx));
    }

    #[test]
    fn signed_collisions_can_cancel() {
        // With signing enabled, values may be negative — the point is
        // unbiased collisions, so just assert signs occur.
        let v = HashingVectorizer {
            l2_normalize: false,
            ..HashingVectorizer::default()
        };
        let words: Vec<String> = (0..200).map(|i| format!("tok{i}")).collect();
        let out = v.transform(&words);
        let has_negative = out.values().iter().any(|&x| x < 0.0);
        let has_positive = out.values().iter().any(|&x| x > 0.0);
        assert!(has_negative && has_positive, "sign bit never varied");
    }

    #[test]
    fn normalized_output_is_unit_length() {
        let v = HashingVectorizer::default();
        let out = v.transform(&toks("cpu temperature above threshold"));
        assert!((out.norm() - 1.0).abs() < 1e-9);
        assert!(v.transform(&[]).is_empty());
    }

    #[test]
    fn different_bucket_counts_disagree() {
        let small = HashingVectorizer::with_buckets(8);
        let large = HashingVectorizer::with_buckets(1 << 20);
        let t = toks("cpu temperature above threshold sensor throttle");
        assert!(small.transform(&t).max_dim() <= 8);
        assert!(
            large.transform(&t).nnz() == 6,
            "collisions unlikely at 1M buckets"
        );
    }
}
