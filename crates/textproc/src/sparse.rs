//! Sparse vectors and CSR matrices for text features.
//!
//! TF-IDF vectors over a syslog vocabulary are extremely sparse (a message
//! has ~5-15 active features out of thousands), so every classifier in the
//! workspace operates on these types. Vectors keep indices sorted, which
//! makes dot products a linear merge and keeps cache behaviour predictable
//! (see the perf-book guidance on contiguous data).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A sparse `f64` vector with sorted, unique indices.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// An empty vector.
    pub fn new() -> SparseVec {
        SparseVec::default()
    }

    /// Build from parallel `(index, value)` pairs; sorts, merges duplicates
    /// (summing their values), and drops explicit zeros.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> SparseVec {
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        merge_pairs_into(&mut pairs, &mut indices, &mut values);
        SparseVec { indices, values }
    }

    fn prune_zeros(&mut self) {
        if self.values.contains(&0.0) {
            let mut indices = Vec::with_capacity(self.indices.len());
            let mut values = Vec::with_capacity(self.values.len());
            for (&i, &v) in self.indices.iter().zip(&self.values) {
                if v != 0.0 {
                    indices.push(i);
                    values.push(v);
                }
            }
            self.indices = indices;
            self.values = values;
        }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted feature indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The values, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The value at `index` (0.0 when absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse-sparse dot product via linear merge.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut sum = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        sum
    }

    /// Dot product against a dense weight slice.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut sum = 0.0;
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            // Features beyond the training vocabulary contribute nothing.
            if let Some(w) = dense.get(i as usize) {
                sum += w * v;
            }
        }
        sum
    }

    /// `dense[i] += scale * self[i]` for every stored entry.
    pub fn add_scaled_to_dense(&self, dense: &mut [f64], scale: f64) {
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if let Some(slot) = dense.get_mut(i as usize) {
                *slot += scale * v;
            }
        }
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// L1 norm.
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Scale all values in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
        if factor == 0.0 {
            self.prune_zeros();
        }
    }

    /// Normalize to unit L2 length (no-op on the zero vector).
    pub fn l2_normalize(&mut self) {
        l2_normalize_slice(&mut self.values);
    }

    /// Cosine similarity in `[−1, 1]`; 0 for zero vectors.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Squared Euclidean distance.
    pub fn euclidean_sq(&self, other: &SparseVec) -> f64 {
        // ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a·b
        (self.norm_sq() + other.norm_sq() - 2.0 * self.dot(other)).max(0.0)
    }

    /// The largest stored index plus one (0 for an empty vector).
    pub fn max_dim(&self) -> usize {
        self.indices.last().map(|&i| i as usize + 1).unwrap_or(0)
    }
}

/// Sort `pairs` by index, merge duplicate indices by summation, and append
/// the surviving (non-zero) entries to `indices`/`values`.
///
/// This is the single canonical pair-merging routine: [`SparseVec::from_pairs`]
/// and the batch CSR vectorizer paths both call it, which is what keeps
/// per-row CSR construction bit-identical to per-document `SparseVec`
/// construction.
pub(crate) fn merge_pairs_into(
    pairs: &mut [(u32, f64)],
    indices: &mut Vec<u32>,
    values: &mut Vec<f64>,
) {
    pairs.sort_unstable_by_key(|&(i, _)| i);
    let mut run = 0;
    while run < pairs.len() {
        let (index, mut sum) = pairs[run];
        run += 1;
        while run < pairs.len() && pairs[run].0 == index {
            sum += pairs[run].1;
            run += 1;
        }
        if sum != 0.0 {
            indices.push(index);
            values.push(sum);
        }
    }
}

/// L2-normalize a value slice in place (no-op on all-zero input), summing
/// squares in slice order — the same operation order as
/// [`SparseVec::l2_normalize`], so both paths produce identical bits.
pub(crate) fn l2_normalize_slice(values: &mut [f64]) {
    let norm = values.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        let factor = 1.0 / norm;
        for v in values {
            *v *= factor;
        }
    }
}

/// Documents per parallel vectorization chunk. Large enough to amortize the
/// per-chunk scratch allocations, small enough to spread over cores.
const VECTORIZE_CHUNK: usize = 256;

/// Build a [`CsrMatrix`] from arbitrary items, chunk-parallel with per-chunk
/// scratch state.
///
/// `init` creates one scratch state per chunk (token caches, count maps —
/// whatever the caller needs to amortize across a chunk's items).
/// `fill_pairs` turns one item into unsorted `(index, value)` pairs
/// (appended to the supplied scratch) and returns whether the finished row
/// should be L2-normalized. Pairs are merged with [`merge_pairs_into`] and
/// normalized with [`l2_normalize_slice`], so each row is bit-identical to
/// `SparseVec::from_pairs(pairs).l2_normalize()` built per item.
pub fn csr_from_items<T, S, I, F>(items: &[T], n_cols: usize, init: I, fill_pairs: F) -> CsrMatrix
where
    T: Sync,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut Vec<(u32, f64)>, &mut S) -> bool + Sync,
{
    let n_chunks = items.len().div_ceil(VECTORIZE_CHUNK).max(1);
    let chunks: Vec<(Vec<usize>, Vec<u32>, Vec<f64>)> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * VECTORIZE_CHUNK;
            let hi = (lo + VECTORIZE_CHUNK).min(items.len());
            let chunk = &items[lo..hi];
            let mut state = init();
            let mut row_lens = Vec::with_capacity(chunk.len());
            let mut indices: Vec<u32> = Vec::new();
            let mut values: Vec<f64> = Vec::new();
            let mut pairs: Vec<(u32, f64)> = Vec::new();
            for item in chunk {
                pairs.clear();
                let l2 = fill_pairs(item, &mut pairs, &mut state);
                let start = indices.len();
                merge_pairs_into(&mut pairs, &mut indices, &mut values);
                if l2 {
                    l2_normalize_slice(&mut values[start..]);
                }
                row_lens.push(indices.len() - start);
            }
            (row_lens, indices, values)
        })
        .collect();
    stitch_chunks(n_cols, &chunks)
}

/// Stitch per-chunk `(row_lens, indices, values)` parts into one
/// [`CsrMatrix`].
fn stitch_chunks(n_cols: usize, chunks: &[(Vec<usize>, Vec<u32>, Vec<f64>)]) -> CsrMatrix {
    let nnz = chunks.iter().map(|(_, i, _)| i.len()).sum();
    let n_rows = chunks.iter().map(|(l, _, _)| l.len()).sum::<usize>();
    let mut m = CsrMatrix {
        row_offsets: Vec::with_capacity(n_rows + 1),
        indices: Vec::with_capacity(nnz),
        values: Vec::with_capacity(nnz),
        n_cols,
    };
    m.row_offsets.push(0);
    for (row_lens, indices, values) in chunks {
        m.append_concat_rows(row_lens, indices, values);
    }
    m
}

/// A compressed-sparse-row matrix: one [`SparseVec`]-shaped row per sample.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CsrMatrix {
    row_offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    n_cols: usize,
}

impl CsrMatrix {
    /// An empty matrix with a fixed column count.
    pub fn with_columns(n_cols: usize) -> CsrMatrix {
        CsrMatrix {
            row_offsets: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            n_cols,
        }
    }

    /// Build from rows. The column count is the max over rows unless a
    /// larger `n_cols` is given.
    pub fn from_rows(rows: &[SparseVec], n_cols: usize) -> CsrMatrix {
        let nnz: usize = rows.iter().map(|r| r.nnz()).sum();
        let mut m = CsrMatrix {
            row_offsets: Vec::with_capacity(rows.len() + 1),
            indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
            n_cols,
        };
        m.row_offsets.push(0);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Append a row.
    pub fn push_row(&mut self, row: &SparseVec) {
        self.indices.extend_from_slice(row.indices());
        self.values.extend_from_slice(row.values());
        self.row_offsets.push(self.indices.len());
        self.n_cols = self.n_cols.max(row.max_dim());
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Bytes of heap storage behind this matrix (capacity, not length —
    /// what the allocator is actually holding).
    pub fn heap_bytes(&self) -> usize {
        self.row_offsets.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// Borrow row `r` as `(indices, values)`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (start, end) = (self.row_offsets[r], self.row_offsets[r + 1]);
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Copy row `r` into an owned [`SparseVec`].
    pub fn row_vec(&self, r: usize) -> SparseVec {
        let (idx, vals) = self.row(r);
        SparseVec {
            indices: idx.to_vec(),
            values: vals.to_vec(),
        }
    }

    /// Append a row given pre-sorted, pre-merged parts (the CSR-direct
    /// construction path used by the batch vectorizers).
    pub fn push_row_parts(&mut self, indices: &[u32], values: &[f64]) {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "row indices must be sorted unique"
        );
        self.indices.extend_from_slice(indices);
        self.values.extend_from_slice(values);
        self.row_offsets.push(self.indices.len());
        if let Some(&last) = indices.last() {
            self.n_cols = self.n_cols.max(last as usize + 1);
        }
    }

    /// Append many rows at once from concatenated storage: `row_lens[i]`
    /// entries belong to appended row `i`. One bulk copy per chunk — the
    /// stitch step after parallel per-chunk vectorization.
    pub fn append_concat_rows(&mut self, row_lens: &[usize], indices: &[u32], values: &[f64]) {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert_eq!(row_lens.iter().sum::<usize>(), indices.len());
        self.indices.extend_from_slice(indices);
        self.values.extend_from_slice(values);
        let mut offset = *self.row_offsets.last().expect("offsets never empty");
        for &len in row_lens {
            offset += len;
            self.row_offsets.push(offset);
        }
        for &i in indices {
            self.n_cols = self.n_cols.max(i as usize + 1);
        }
    }

    /// Iterate rows as `(indices, values)` slice pairs, in row order.
    pub fn iter_rows(&self) -> impl Iterator<Item = (&[u32], &[f64])> + '_ {
        (0..self.n_rows()).map(move |r| self.row(r))
    }

    /// Expand back into one owned [`SparseVec`] per row (the inverse of
    /// [`CsrMatrix::from_rows`]).
    pub fn to_rows(&self) -> Vec<SparseVec> {
        (0..self.n_rows()).map(|r| self.row_vec(r)).collect()
    }

    /// L2-normalize every row in place (zero rows untouched), with the same
    /// operation order as [`SparseVec::l2_normalize`] row by row.
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.row_offsets.len() - 1 {
            let (start, end) = (self.row_offsets[r], self.row_offsets[r + 1]);
            l2_normalize_slice(&mut self.values[start..end]);
        }
    }

    /// Dot of row `r` with a dense weight slice.
    pub fn row_dot_dense(&self, r: usize, dense: &[f64]) -> f64 {
        let (idx, vals) = self.row(r);
        let mut sum = 0.0;
        for (&i, &v) in idx.iter().zip(vals) {
            if let Some(w) = dense.get(i as usize) {
                sum += w * v;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_merges_prunes() {
        let v = sv(&[(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[2.0, 4.0]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_products() {
        let a = sv(&[(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = sv(&[(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        assert_eq!(a.dot(&SparseVec::new()), 0.0);
    }

    #[test]
    fn dense_interop() {
        let a = sv(&[(1, 2.0), (3, 4.0)]);
        let dense = [1.0, 10.0, 100.0, 1000.0];
        assert_eq!(a.dot_dense(&dense), 2.0 * 10.0 + 4.0 * 1000.0);

        let mut acc = vec![0.0; 4];
        a.add_scaled_to_dense(&mut acc, 0.5);
        assert_eq!(acc, vec![0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn out_of_range_dense_indices_ignored() {
        let a = sv(&[(10, 1.0)]);
        assert_eq!(a.dot_dense(&[1.0, 2.0]), 0.0);
        let mut acc = vec![0.0; 2];
        a.add_scaled_to_dense(&mut acc, 1.0);
        assert_eq!(acc, vec![0.0, 0.0]);
    }

    #[test]
    fn norms_and_cosine() {
        let a = sv(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.l1_norm(), 7.0);
        let mut u = a.clone();
        u.l2_normalize();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        let orth = sv(&[(2, 1.0)]);
        assert_eq!(a.cosine(&orth), 0.0);
        assert_eq!(SparseVec::new().cosine(&a), 0.0);
    }

    #[test]
    fn euclidean_matches_definition() {
        let a = sv(&[(0, 1.0), (1, 2.0)]);
        let b = sv(&[(1, 5.0), (2, 1.0)]);
        // (1-0)^2 handled: a has (0,1), b missing → 1; (2-5)^2=9; (0-1)^2=1
        assert!((a.euclidean_sq(&b) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn get_and_max_dim() {
        let a = sv(&[(3, 7.0)]);
        assert_eq!(a.get(3), 7.0);
        assert_eq!(a.get(2), 0.0);
        assert_eq!(a.max_dim(), 4);
        assert_eq!(SparseVec::new().max_dim(), 0);
    }

    #[test]
    fn csr_roundtrip() {
        let rows = vec![sv(&[(0, 1.0), (5, 2.0)]), SparseVec::new(), sv(&[(2, 3.0)])];
        let m = CsrMatrix::from_rows(&rows, 0);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 6);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_vec(0), rows[0]);
        assert_eq!(m.row_vec(1), rows[1]);
        assert_eq!(m.row(2).0, &[2]);
    }

    #[test]
    fn csr_row_dot_dense() {
        let m = CsrMatrix::from_rows(&[sv(&[(1, 2.0)])], 3);
        assert_eq!(m.row_dot_dense(0, &[0.0, 4.0, 0.0]), 8.0);
    }

    #[test]
    fn scale_zero_prunes() {
        let mut a = sv(&[(1, 2.0)]);
        a.scale(0.0);
        assert!(a.is_empty());
    }
}
