//! Property tests for the NLP substrate.

use proptest::prelude::*;
use textproc::sparse::{CsrMatrix, SparseVec};
use textproc::tfidf::{TfidfConfig, TfidfVectorizer};
use textproc::{preprocess, tokenize, Lemmatizer};

fn sparse_vec_strategy() -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec((0u32..64, -10.0f64..10.0), 0..16).prop_map(SparseVec::from_pairs)
}

proptest! {
    /// Tokenization never panics and yields only lowercase word characters.
    #[test]
    fn tokenizer_output_is_clean(text in ".{0,300}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric() || c == '_'));
            // Lowercasing is a fixpoint (some uppercase chars, e.g. math
            // letters, have no lowercase mapping and pass through).
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    /// Lemmatization is idempotent.
    #[test]
    fn lemmatizer_idempotent(word in "[a-z]{1,20}") {
        let l = Lemmatizer::new();
        let once = l.lemmatize(&word);
        prop_assert_eq!(l.lemmatize(&once), once);
    }

    /// The lemma is never longer than the input plus one char (the `+e`
    /// and `ies→y` rules can only shrink or keep length).
    #[test]
    fn lemma_does_not_grow(word in "[a-z]{1,20}") {
        let lemma = Lemmatizer::new().lemmatize(&word);
        prop_assert!(lemma.len() <= word.len() + 1);
    }

    /// Dot product is symmetric and Cauchy-Schwarz holds.
    #[test]
    fn dot_symmetric_cauchy_schwarz(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-9);
    }

    /// Cosine similarity is bounded in [-1, 1].
    #[test]
    fn cosine_bounded(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        let c = a.cosine(&b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    /// Euclidean distance is non-negative and zero against itself.
    #[test]
    fn euclidean_nonneg(a in sparse_vec_strategy()) {
        prop_assert!(a.euclidean_sq(&a) < 1e-9);
    }

    /// TF-IDF transforms are non-negative and confined to the fitted
    /// vocabulary dimensionality.
    #[test]
    fn tfidf_nonnegative_and_bounded(
        texts in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,8}", 1..12)
    ) {
        let docs: Vec<Vec<String>> = texts
            .iter()
            .map(|t| t.split_whitespace().map(str::to_string).collect())
            .collect();
        let mut v = TfidfVectorizer::new(TfidfConfig::default());
        let rows = v.fit_transform(&docs);
        for row in rows {
            prop_assert!(row.values().iter().all(|&x| x >= 0.0));
            prop_assert!(row.max_dim() <= v.n_features());
            if !row.is_empty() {
                prop_assert!((row.norm() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// The full preprocess pipeline never panics and never emits stopwords.
    #[test]
    fn preprocess_no_stopwords(text in ".{0,200}") {
        for tok in preprocess(&text) {
            prop_assert!(!textproc::stopwords::is_stopword(&tok));
        }
    }

    /// The hashing vectorizer confines indices to its bucket space, is
    /// deterministic, and (unsigned) keeps token-count mass: the L1 norm of
    /// the unnormalized vector equals the token count.
    #[test]
    fn hashing_vectorizer_invariants(
        tokens in proptest::collection::vec("[a-z_0-9]{1,12}", 0..40),
        buckets_log2 in 3u32..12,
    ) {
        let v = textproc::HashingVectorizer {
            n_buckets: 1 << buckets_log2,
            signed: false,
            l2_normalize: false,
        };
        let a = v.transform(&tokens);
        let b = v.transform(&tokens);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.max_dim() <= (1usize << buckets_log2));
        prop_assert!((a.l1_norm() - tokens.len() as f64).abs() < 1e-9);
    }

    /// CSR round trip: `from_rows` → `to_rows` reproduces every row
    /// exactly (indices, values, order), and incremental `push_row` agrees
    /// with the bulk constructor row by row.
    #[test]
    fn csr_round_trip(rows in proptest::collection::vec(sparse_vec_strategy(), 0..12)) {
        let m = CsrMatrix::from_rows(&rows, 0);
        prop_assert_eq!(m.n_rows(), rows.len());
        prop_assert_eq!(m.nnz(), rows.iter().map(|r| r.nnz()).sum::<usize>());
        prop_assert_eq!(m.to_rows(), rows.clone());

        let mut incremental = CsrMatrix::with_columns(0);
        for row in &rows {
            incremental.push_row(row);
        }
        prop_assert_eq!(incremental.n_cols(), m.n_cols());
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(&incremental.row_vec(r), row);
            let (idx, vals) = m.row(r);
            prop_assert_eq!(idx, row.indices());
            prop_assert_eq!(vals, row.values());
        }
    }

    /// The column count inferred by `from_rows` covers every index, and an
    /// explicit larger `n_cols` wins.
    #[test]
    fn csr_column_bounds(rows in proptest::collection::vec(sparse_vec_strategy(), 1..8)) {
        let m = CsrMatrix::from_rows(&rows, 0);
        let max_dim = rows.iter().map(|r| r.max_dim()).max().unwrap_or(0);
        prop_assert_eq!(m.n_cols(), max_dim);
        let wide = CsrMatrix::from_rows(&rows, max_dim + 7);
        prop_assert_eq!(wide.n_cols(), max_dim + 7);
    }

    /// Batch CSR vectorization is row-for-row identical to per-document
    /// transforms, for both TF-IDF and the hashing vectorizer.
    #[test]
    fn batch_csr_matches_per_doc_transform(
        texts in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,8}", 1..12)
    ) {
        let docs: Vec<Vec<String>> = texts
            .iter()
            .map(|t| t.split_whitespace().map(str::to_string).collect())
            .collect();

        let mut tfidf = TfidfVectorizer::new(TfidfConfig { min_df: 1, ..TfidfConfig::default() });
        tfidf.fit(&docs);
        let per_doc: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        prop_assert_eq!(tfidf.transform_batch_csr(&docs).to_rows(), per_doc);

        let hashing = textproc::HashingVectorizer {
            n_buckets: 1 << 10,
            signed: true,
            l2_normalize: true,
        };
        let per_doc: Vec<SparseVec> = docs.iter().map(|d| hashing.transform(d)).collect();
        prop_assert_eq!(hashing.transform_batch_csr(&docs).to_rows(), per_doc);
    }

    /// Signed hashing: each token contributes ±1, so the L1 norm is the
    /// token count minus an even number (each opposite-sign collision
    /// cancels a pair).
    #[test]
    fn signed_hashing_mass(tokens in proptest::collection::vec("[a-z]{1,8}", 1..30)) {
        let v = textproc::HashingVectorizer {
            n_buckets: 1 << 20,
            signed: true,
            l2_normalize: false,
        };
        let out = v.transform(&tokens);
        let l1 = out.l1_norm();
        prop_assert!(l1 <= tokens.len() as f64 + 1e-9);
        let cancelled = tokens.len() as f64 - l1;
        prop_assert!((cancelled / 2.0 - (cancelled / 2.0).round()).abs() < 1e-9);
    }
}
