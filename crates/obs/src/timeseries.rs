//! The flight recorder: an in-process time-series store fed by a
//! background [`Sampler`] thread.
//!
//! `/metrics` answers "what is the value this instant"; this module keeps
//! *history*. The sampler scrapes the live [`Registry`] on a fixed cadence
//! (default 250 ms) into fixed-size per-series ring buffers. Each point
//! keeps the raw cumulative value — and for histograms the full cumulative
//! [`HistogramSnapshot`] — so windowed aggregates are *delta-aware*:
//! counters become rates, histogram quantiles are computed over exactly
//! the observations that landed inside the window (end snapshot minus
//! start snapshot, exact because buckets are monotone cumulative).
//!
//! The same store also ingests a parsed remote [`Scrape`]
//! ([`TimeSeriesStore::ingest_scrape`]), which is how `hetsyslog top
//! --watch` reuses every aggregate client-side: the renderer emits bucket
//! upper bounds as `le` values, so [`bucket_index`] maps them back to the
//! exact fine-grained bucket.

use crate::export::Scrape;
use crate::metrics::{bucket_index, HistogramSnapshot, HIST_BUCKETS};
use crate::registry::{Labels, SeriesSnapshot};
use crate::Registry;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Default sampling cadence.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(250);

/// Default per-series ring capacity: 240 points = one minute of history at
/// the default cadence.
pub const DEFAULT_RING_CAPACITY: usize = 240;

/// One recorded observation of one series.
#[derive(Debug, Clone)]
pub struct Point {
    /// Milliseconds since the store's epoch (monotonic).
    pub at_ms: u64,
    /// Wall-clock milliseconds since the Unix epoch (for export).
    pub unix_ms: u64,
    /// Cumulative counter / gauge value (histograms report their count).
    pub value: f64,
    /// Full cumulative histogram snapshot (histograms only).
    pub hist: Option<HistogramSnapshot>,
}

#[derive(Debug)]
struct SeriesRing {
    kind: &'static str,
    points: VecDeque<Point>,
}

/// Windowed aggregate over one series, delta-aware by instrument kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowAggregate {
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Points inside the window.
    pub points: usize,
    /// Time actually covered (first to last point in the window), ms.
    pub span_ms: u64,
    /// First and last raw values in the window.
    pub first: f64,
    /// Last raw value in the window.
    pub last: f64,
    /// Counter: increase/sec over the window. Histogram: observations/sec.
    /// Gauge: net change/sec.
    pub rate_per_sec: f64,
    /// Gauge: mean of sampled values. Histogram: mean of the observations
    /// recorded inside the window. Counter: mean of sampled values.
    pub mean: f64,
    /// Minimum sampled value in the window.
    pub min: f64,
    /// Maximum sampled value in the window.
    pub max: f64,
    /// Histogram only: p50 of observations recorded inside the window.
    pub p50: u64,
    /// Histogram only: p99 of observations recorded inside the window.
    pub p99: u64,
    /// Histogram only: observations recorded inside the window.
    pub delta_count: u64,
}

/// The ring store: `(name, labels)` → bounded point history.
#[derive(Debug)]
pub struct TimeSeriesStore {
    capacity: usize,
    epoch: Instant,
    series: Mutex<BTreeMap<(String, Labels), SeriesRing>>,
}

impl TimeSeriesStore {
    /// A store retaining up to `capacity` points per series.
    pub fn new(capacity: usize) -> TimeSeriesStore {
        TimeSeriesStore {
            capacity: capacity.max(2),
            epoch: Instant::now(),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Milliseconds since this store was created (the sampler's clock).
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn unix_now_ms() -> u64 {
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    fn push(&self, key: (String, Labels), kind: &'static str, point: Point) {
        let mut series = self.series.lock();
        let ring = series.entry(key).or_insert_with(|| SeriesRing {
            kind,
            points: VecDeque::with_capacity(self.capacity),
        });
        if ring.points.len() == self.capacity {
            ring.points.pop_front();
        }
        ring.points.push_back(point);
    }

    /// Record one registry sweep (from [`Registry::gather`]) at `at_ms`.
    pub fn observe(&self, at_ms: u64, unix_ms: u64, series: &[SeriesSnapshot]) {
        for s in series {
            let (value, hist) = match &s.histogram {
                None => (s.value as f64, None),
                Some(h) => (h.count as f64, Some(h.clone())),
            };
            self.push(
                (s.name.clone(), s.labels.clone()),
                s.kind,
                Point {
                    at_ms,
                    unix_ms,
                    value,
                    hist,
                },
            );
        }
    }

    /// Scrape the registry right now and record the sweep.
    pub fn sample(&self, registry: &Registry) {
        self.observe(self.now_ms(), Self::unix_now_ms(), &registry.gather());
    }

    /// Record one parsed remote scrape at `at_ms` — the client-side path
    /// `hetsyslog top --watch` uses. Histogram families are reassembled
    /// from their cumulative `le` samples into exact fine-grained
    /// snapshots (the renderer emits bucket upper bounds as `le`).
    pub fn ingest_scrape(&self, scrape: &Scrape, at_ms: u64, unix_ms: u64) {
        for (family, kind) in &scrape.types {
            if kind == "histogram" {
                self.ingest_scrape_histograms(scrape, family, at_ms, unix_ms);
                continue;
            }
            for s in scrape.samples.iter().filter(|s| &s.name == family) {
                let kind: &'static str = if kind == "gauge" { "gauge" } else { "counter" };
                self.push(
                    (s.name.clone(), sorted_labels(&s.labels)),
                    kind,
                    Point {
                        at_ms,
                        unix_ms,
                        value: s.value,
                        hist: None,
                    },
                );
            }
        }
    }

    fn ingest_scrape_histograms(&self, scrape: &Scrape, family: &str, at_ms: u64, unix_ms: u64) {
        let bucket_name = format!("{family}_bucket");
        let sum_name = format!("{family}_sum");
        // Group bucket samples by their non-`le` label set.
        let mut groups: BTreeMap<Labels, Vec<(u64, u64)>> = BTreeMap::new();
        for s in scrape.samples.iter().filter(|s| s.name == bucket_name) {
            let Some(le) = s.label("le") else { continue };
            if le == "+Inf" {
                continue;
            }
            let Ok(upper) = le.parse::<u64>() else {
                continue;
            };
            let labels: Labels = sorted_labels(
                &s.labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect::<Vec<_>>(),
            );
            groups
                .entry(labels)
                .or_default()
                .push((upper, s.value as u64));
        }
        for (labels, mut rows) in groups {
            rows.sort_unstable();
            let mut snapshot = HistogramSnapshot::empty();
            let mut prev = 0u64;
            for (upper, cumulative) in rows {
                let c = cumulative.saturating_sub(prev);
                prev = cumulative;
                snapshot.buckets[bucket_index(upper).min(HIST_BUCKETS - 1)] += c;
            }
            let label_refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            snapshot.count = prev;
            snapshot.sum = scrape.value(&sum_name, &label_refs).unwrap_or(0.0) as u64;
            self.push(
                (family.to_string(), labels),
                "histogram",
                Point {
                    at_ms,
                    unix_ms,
                    value: snapshot.count as f64,
                    hist: Some(snapshot),
                },
            );
        }
    }

    /// Every stored series key, sorted.
    pub fn series_keys(&self) -> Vec<(String, Labels)> {
        self.series.lock().keys().cloned().collect()
    }

    /// The most recent point of a series.
    pub fn latest(&self, name: &str, labels: &[(&str, &str)]) -> Option<Point> {
        let series = self.series.lock();
        let ring = series.get(&(name.to_string(), sorted_ref_labels(labels)))?;
        ring.points.back().cloned()
    }

    /// Aggregate the last `window_ms` of a series, ending at its newest
    /// point. `None` if the series is unknown or has no point in range.
    pub fn window(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window_ms: u64,
    ) -> Option<WindowAggregate> {
        let series = self.series.lock();
        let ring = series.get(&(name.to_string(), sorted_ref_labels(labels)))?;
        let end = ring.points.back()?.at_ms;
        let start = end.saturating_sub(window_ms);
        let window: Vec<&Point> = ring.points.iter().filter(|p| p.at_ms >= start).collect();
        aggregate(ring.kind, &window)
    }

    /// Like [`TimeSeriesStore::window`], but the window ends `now_ms`
    /// (so a series that stopped updating shows an empty/stale window —
    /// what `Absence` alert rules key on).
    pub fn window_ending_now(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window_ms: u64,
        now_ms: u64,
    ) -> Option<WindowAggregate> {
        let series = self.series.lock();
        let ring = series.get(&(name.to_string(), sorted_ref_labels(labels)))?;
        let start = now_ms.saturating_sub(window_ms);
        let window: Vec<&Point> = ring.points.iter().filter(|p| p.at_ms >= start).collect();
        aggregate(ring.kind, &window)
    }

    /// Dump the whole ring as a JSON timeline, one entry per series with
    /// its points (histograms summarized as count/sum/p50/p99) — the
    /// `hetsyslog flight export` post-mortem format.
    pub fn export_json(&self) -> String {
        let series = self.series.lock();
        let mut entries: Vec<serde_json::Value> = Vec::new();
        for ((name, labels), ring) in series.iter() {
            let labels_json = serde_json::Value::Object(
                labels
                    .iter()
                    .map(|(k, v)| (k.clone(), serde_json::json!(v)))
                    .collect(),
            );
            let points: Vec<serde_json::Value> = ring
                .points
                .iter()
                .map(|p| match &p.hist {
                    None => serde_json::json!({
                        "at_ms": p.at_ms,
                        "unix_ms": p.unix_ms,
                        "value": p.value,
                    }),
                    Some(h) => serde_json::json!({
                        "at_ms": p.at_ms,
                        "unix_ms": p.unix_ms,
                        "count": h.count,
                        "sum": h.sum,
                        "p50": h.quantile(50.0),
                        "p99": h.quantile(99.0),
                    }),
                })
                .collect();
            entries.push(serde_json::json!({
                "name": name,
                "labels": labels_json,
                "kind": ring.kind,
                "points": points,
            }));
        }
        serde_json::to_string(&serde_json::json!({ "series": entries })).unwrap_or_default()
    }
}

impl Default for TimeSeriesStore {
    fn default() -> TimeSeriesStore {
        TimeSeriesStore::new(DEFAULT_RING_CAPACITY)
    }
}

fn sorted_labels(labels: &[(String, String)]) -> Labels {
    let mut out: Labels = labels.to_vec();
    out.sort();
    out
}

fn sorted_ref_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

fn aggregate(kind: &'static str, window: &[&Point]) -> Option<WindowAggregate> {
    let (first, last) = (window.first()?, window.last()?);
    let span_ms = last.at_ms.saturating_sub(first.at_ms);
    let span_secs = span_ms as f64 / 1000.0;
    let values: Vec<f64> = window.iter().map(|p| p.value).collect();
    let mut agg = WindowAggregate {
        kind: kind.to_string(),
        points: window.len(),
        span_ms,
        first: first.value,
        last: last.value,
        rate_per_sec: if span_ms > 0 {
            (last.value - first.value) / span_secs
        } else {
            0.0
        },
        mean: values.iter().sum::<f64>() / values.len() as f64,
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ..WindowAggregate::default()
    };
    if kind == "histogram" {
        if let (Some(start), Some(end)) = (&first.hist, &last.hist) {
            // Exact windowed distribution: cumulative buckets are
            // monotone, so end − start is the observations inside the
            // window. A single-point window has no delta.
            let mut delta = HistogramSnapshot::empty();
            for (i, d) in delta.buckets.iter_mut().enumerate() {
                *d = end.buckets[i].saturating_sub(start.buckets[i]);
            }
            delta.count = end.count.saturating_sub(start.count);
            delta.sum = end.sum.saturating_sub(start.sum);
            agg.delta_count = delta.count;
            agg.p50 = delta.quantile(50.0);
            agg.p99 = delta.quantile(99.0);
            agg.mean = delta.mean();
        }
    }
    Some(agg)
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Scrape cadence (default 250 ms).
    pub interval: Duration,
    /// Per-series ring capacity (default 240 points ≈ 1 min of history).
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: DEFAULT_SAMPLE_INTERVAL,
            capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

/// The background sampler: scrapes the registry into a
/// [`TimeSeriesStore`] every `interval`, then (when attached) evaluates
/// the alert engine against the fresh window. Stop with
/// [`Sampler::stop`]; dropping also stops it.
pub struct Sampler {
    store: Arc<TimeSeriesStore>,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling `registry`; alert rules in `engine` (if any) are
    /// evaluated after every sweep.
    pub fn start(
        registry: Arc<Registry>,
        config: SamplerConfig,
        engine: Option<Arc<crate::alert::AlertEngine>>,
    ) -> Sampler {
        let store = Arc::new(TimeSeriesStore::new(config.capacity));
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let store = store.clone();
            let registry = registry.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    store.sample(&registry);
                    if let Some(engine) = &engine {
                        engine.evaluate(&store, store.now_ms());
                    }
                    // Sleep in small slices so stop() never waits a full
                    // interval.
                    let deadline = Instant::now() + config.interval;
                    while Instant::now() < deadline && !shutdown.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(
                            (config.interval.as_millis() as u64).clamp(1, 10),
                        ));
                    }
                }
            })
        };
        Sampler {
            store,
            registry,
            shutdown,
            thread: Some(thread),
        }
    }

    /// The ring store the sampler writes into.
    pub fn store(&self) -> Arc<TimeSeriesStore> {
        self.store.clone()
    }

    /// Stop sampling, join the thread, and take one last sweep so the
    /// registry's final values are in the timeline (a drain's last counter
    /// updates would otherwise race the final periodic sample).
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
            self.store.sample(&self.registry);
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::parse_exposition;

    fn snap(name: &str, kind: &'static str, value: i64) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_string(),
            help: String::new(),
            kind,
            labels: Vec::new(),
            value,
            histogram: None,
        }
    }

    #[test]
    fn counter_window_becomes_a_rate() {
        let store = TimeSeriesStore::new(16);
        for (t, v) in [(0u64, 0i64), (250, 100), (500, 200), (750, 300)] {
            store.observe(t, t, &[snap("frames_total", "counter", v)]);
        }
        let w = store.window("frames_total", &[], 1_000).unwrap();
        assert_eq!(w.points, 4);
        assert_eq!(w.span_ms, 750);
        // 300 frames over 0.75 s = 400/s.
        assert!((w.rate_per_sec - 400.0).abs() < 1e-9, "{w:?}");
        assert_eq!(w.first, 0.0);
        assert_eq!(w.last, 300.0);
        // A narrower window only sees the tail.
        let w = store.window("frames_total", &[], 250).unwrap();
        assert_eq!(w.points, 2);
        assert!((w.rate_per_sec - 400.0).abs() < 1e-9);
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let store = TimeSeriesStore::new(4);
        for t in 0..10u64 {
            store.observe(t * 100, 0, &[snap("g", "gauge", t as i64)]);
        }
        let w = store.window("g", &[], u64::MAX).unwrap();
        assert_eq!(w.points, 4);
        assert_eq!(w.first, 6.0);
        assert_eq!(w.last, 9.0);
        assert_eq!(w.min, 6.0);
        assert_eq!(w.max, 9.0);
        assert!((w.mean - 7.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_window_quantiles_are_delta_exact() {
        let registry = Registry::new();
        let h = registry.histogram("lat_us", "", &[]);
        let store = TimeSeriesStore::new(16);
        // First sweep: 100 small observations.
        for _ in 0..100 {
            h.record(10);
        }
        store.observe(0, 0, &registry.gather());
        // Second sweep: 100 large observations arrive in the window.
        for _ in 0..100 {
            h.record(10_000);
        }
        store.observe(250, 250, &registry.gather());
        // Whole-history quantile would be pulled down by the first 100;
        // the windowed delta between the two sweeps sees only the large
        // observations... but our 2-point window includes sweep 0, so the
        // delta is exactly the second burst.
        let w = store.window("lat_us", &[], 250).unwrap();
        assert_eq!(w.delta_count, 100);
        assert!(w.p50 >= 10_000 && w.p99 >= 10_000, "{w:?}");
        assert!((w.mean - 10_000.0).abs() < 1500.0, "{w:?}");
        // Rate: 100 observations over 0.25 s.
        assert!((w.rate_per_sec - 400.0).abs() < 1e-9);
    }

    #[test]
    fn scrape_ingest_matches_direct_observation() {
        let registry = Registry::new();
        registry.counter("c_total", "", &[("shard", "0")]).add(42);
        registry.gauge("g", "", &[]).set(-5);
        let h = registry.histogram("lat_us", "", &[("stage", "parse")]);
        for v in [1u64, 5, 5, 100, 4000] {
            h.record(v);
        }

        let direct = TimeSeriesStore::new(8);
        direct.observe(100, 7, &registry.gather());

        let scraped = TimeSeriesStore::new(8);
        scraped.ingest_scrape(&parse_exposition(&registry.render_prometheus()), 100, 7);

        assert_eq!(
            direct.latest("c_total", &[("shard", "0")]).unwrap().value,
            scraped.latest("c_total", &[("shard", "0")]).unwrap().value,
        );
        assert_eq!(scraped.latest("g", &[]).unwrap().value, -5.0);
        let dh = direct.latest("lat_us", &[("stage", "parse")]).unwrap();
        let sh = scraped.latest("lat_us", &[("stage", "parse")]).unwrap();
        // Bucket reconstruction is exact: the renderer emits bucket upper
        // bounds, and bucket_index(upper) is the original bucket.
        assert_eq!(dh.hist.unwrap(), sh.hist.unwrap());
    }

    #[test]
    fn window_ending_now_sees_staleness() {
        let store = TimeSeriesStore::new(8);
        store.observe(0, 0, &[snap("c_total", "counter", 5)]);
        // Series exists but nothing landed in the last 1s by t=5000.
        assert!(store
            .window_ending_now("c_total", &[], 1_000, 5_000)
            .is_none());
        assert!(store
            .window_ending_now("c_total", &[], 6_000, 5_000)
            .is_some());
    }

    #[test]
    fn sampler_thread_collects_points_and_stops() {
        let registry = Arc::new(Registry::new());
        let c = registry.counter("ticks_total", "", &[]);
        let mut sampler = Sampler::start(
            registry.clone(),
            SamplerConfig {
                interval: Duration::from_millis(5),
                capacity: 64,
            },
            None,
        );
        let store = sampler.store();
        for _ in 0..50 {
            c.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        // Wait until at least 3 points accumulated.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(w) = store.window("ticks_total", &[], u64::MAX) {
                if w.points >= 3 {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "sampler never collected");
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let w = store.window("ticks_total", &[], u64::MAX).unwrap();
        assert!(w.last >= w.first);
        assert!(w.last <= 50.0);
    }

    #[test]
    fn export_json_dumps_the_timeline() {
        let store = TimeSeriesStore::new(8);
        store.observe(0, 1000, &[snap("c_total", "counter", 1)]);
        store.observe(250, 1250, &[snap("c_total", "counter", 3)]);
        let json = store.export_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let series = v.get("series").and_then(|s| s.as_array()).unwrap();
        assert_eq!(series.len(), 1);
        let s0 = &series[0];
        assert_eq!(s0.get("name").and_then(|v| v.as_str()), Some("c_total"));
        assert_eq!(s0.get("kind").and_then(|v| v.as_str()), Some("counter"));
        let points = s0.get("points").and_then(|p| p.as_array()).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("value").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(points[1].get("at_ms").and_then(|v| v.as_u64()), Some(250));
    }
}
