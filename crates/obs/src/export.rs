//! Prometheus text exposition (render + parse) and a JSON rendering of
//! the registry.
//!
//! The renderer emits format version 0.0.4: `# HELP` / `# TYPE` comments
//! per family, `name{labels} value` samples, and for histograms the
//! cumulative `_bucket{le="..."}` / `_sum` / `_count` triple. The parser
//! reads the same dialect back (it is what `hetsyslog top` and the
//! conformance tests scrape), reconstructing per-bucket counts from the
//! cumulative `le` series.

use crate::metrics::bucket_upper;
use crate::registry::SeriesSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Undo [`escape_label`] in one left-to-right pass. Sequential
/// `str::replace` passes corrupt adjacent escapes — a literal
/// backslash-then-`n` value escapes to `\\n`, which a later
/// `replace("\\n", "\n")` pass would wrongly rewrite into a newline —
/// so each `\` consumes exactly the one character that follows it.
fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(c) => out.push(c),
            // A trailing lone backslash is kept as written.
            None => out.push('\\'),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render series snapshots in Prometheus text format.
pub fn render_prometheus(series: &[SeriesSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for s in series {
        if s.name != last_family {
            if !s.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
            }
            let _ = writeln!(out, "# TYPE {} {}", s.name, s.kind);
            last_family = &s.name;
        }
        match &s.histogram {
            None => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    s.value
                );
            }
            Some(h) => {
                let mut cumulative = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let le = bucket_upper(i).to_string();
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_block(&s.labels, Some(("le", &le))),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf"))),
                    h.count
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

/// Render series snapshots as one JSON object `{name{labels}: value}` with
/// histograms as `{count, sum, p50, p90, p99}` summaries.
pub fn render_json(series: &[SeriesSnapshot]) -> String {
    let mut entries: Vec<(String, serde_json::Value)> = Vec::new();
    for s in series {
        let key = format!("{}{}", s.name, label_block(&s.labels, None));
        let value = match &s.histogram {
            None => serde_json::json!(s.value),
            Some(h) => serde_json::json!({
                "count": h.count,
                "sum": h.sum,
                "p50": h.quantile(50.0),
                "p90": h.quantile(90.0),
                "p99": h.quantile(99.0),
            }),
        };
        entries.push((key, value));
    }
    serde_json::to_string(&serde_json::Value::Object(entries)).unwrap_or_default()
}

/// One parsed sample: a metric line from a Prometheus exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (histograms appear as `*_bucket`, `*_sum`,
    /// `*_count` samples).
    pub name: String,
    /// Labels in file order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A scraped exposition: samples plus the family types declared by
/// `# TYPE` lines.
#[derive(Debug, Default, Clone)]
pub struct Scrape {
    /// Every metric sample, in file order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → kind.
    pub types: BTreeMap<String, String>,
}

impl Scrape {
    /// Sum of every sample named `name` (all label combinations).
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Distinct values of label `key` across every sample named `name`,
    /// in first-appearance order (e.g. every `sink=` a scrape mentions).
    pub fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in self.samples.iter().filter(|s| s.name == name) {
            if let Some(v) = s.label(key) {
                if !out.iter().any(|seen| seen == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// The single sample with this exact name and a matching label, if any.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
            .map(|s| s.value)
    }

    /// Reconstruct a histogram family's per-bucket counts from its
    /// cumulative `_bucket` samples, keyed by the non-`le` label set.
    /// Returns `(upper_bound, count)` pairs in ascending `le` order with
    /// the `+Inf` bucket folded away (its count is the total).
    pub fn histogram_buckets(&self, family: &str, labels: &[(&str, &str)]) -> Vec<(u64, u64)> {
        let bucket_name = format!("{family}_bucket");
        let mut rows: Vec<(u64, u64)> = Vec::new();
        for s in &self.samples {
            if s.name != bucket_name {
                continue;
            }
            if !labels.iter().all(|(k, v)| s.label(k) == Some(v)) {
                continue;
            }
            let Some(le) = s.label("le") else { continue };
            if le == "+Inf" {
                continue;
            }
            if let Ok(upper) = le.parse::<u64>() {
                rows.push((upper, s.value as u64));
            }
        }
        rows.sort();
        // Cumulative → per-bucket.
        let mut prev = 0u64;
        for row in rows.iter_mut() {
            let c = row.1.saturating_sub(prev);
            prev = row.1;
            row.1 = c;
        }
        rows
    }
}

/// Parse a Prometheus text exposition. Unparseable lines are skipped (the
/// caller can cross-check `samples.len()` if strictness matters).
pub fn parse_exposition(text: &str) -> Scrape {
    let mut scrape = Scrape::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                scrape.types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some(sample) = parse_sample(line) {
            scrape.samples.push(sample);
        }
    }
    scrape
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return None,
    };
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().ok()?,
    };
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some(open) => {
            let name = name_and_labels[..open].to_string();
            let body = name_and_labels[open + 1..].strip_suffix('}')?;
            let mut labels = Vec::new();
            for pair in split_label_pairs(body) {
                let (k, v) = pair.split_once('=')?;
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                labels.push((k.trim().to_string(), unescape_label(v)));
            }
            (name, labels)
        }
    };
    Some(Sample {
        name,
        labels,
        value,
    })
}

/// Split `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, ch) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' => escaped = true,
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                if start < i {
                    out.push(&body[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn render_and_parse_round_trip() {
        let reg = Registry::new();
        reg.counter("frames_total", "frames seen", &[("transport", "tcp")])
            .add(42);
        reg.gauge("queue_depth", "queued frames", &[]).set(-3);
        let h = reg.histogram("latency_us", "stage latency", &[("stage", "parse")]);
        for v in [1u64, 1, 5, 100, 100, 100] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE frames_total counter"));
        assert!(text.contains("# HELP latency_us stage latency"));
        assert!(text.contains("frames_total{transport=\"tcp\"} 42"));
        assert!(text.contains("queue_depth -3"));
        assert!(text.contains("le=\"+Inf\"} 6"));
        assert!(text.contains("latency_us_sum{stage=\"parse\"} 307"));

        let scrape = parse_exposition(&text);
        assert_eq!(
            scrape.types.get("latency_us").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(
            scrape.value("frames_total", &[("transport", "tcp")]),
            Some(42.0)
        );
        assert_eq!(scrape.value("queue_depth", &[]), Some(-3.0));
        assert_eq!(
            scrape.value("latency_us_count", &[("stage", "parse")]),
            Some(6.0)
        );
        let buckets = scrape.histogram_buckets("latency_us", &[("stage", "parse")]);
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
        // The value-1 bucket holds exactly the two 1µs records.
        assert!(buckets.contains(&(1, 2)));
    }

    #[test]
    fn parser_handles_escapes_and_junk() {
        let text = "junk line without value x\nm{k=\"a,b\",j=\"q\\\"c\"} 7\n# comment\n";
        let scrape = parse_exposition(text);
        assert_eq!(scrape.samples.len(), 1);
        let s = &scrape.samples[0];
        assert_eq!(s.label("k"), Some("a,b"));
        assert_eq!(s.label("j"), Some("q\"c"));
        assert_eq!(s.value, 7.0);
    }

    #[test]
    fn control_characters_in_label_values_round_trip() {
        // The regression case: a literal backslash-then-n value escapes to
        // `\\n`, which the old sequential-replace unescape corrupted into
        // backslash + newline. The single-pass unescape keeps it intact.
        let hostile = [
            "\\n",          // literal backslash, then 'n'
            "a\nb",         // real newline
            "\\",           // lone backslash
            "\\\\n",        // two backslashes, then 'n'
            "say \"hi\"",   // quotes
            "tab\there",    // raw tab survives mid-line
            "mix\\n\"\n\\", // everything at once
            "a,b=c}{d",     // label-syntax lookalikes inside quotes
        ];
        for value in hostile {
            let reg = Registry::new();
            reg.counter("m_total", "", &[("k", value)]).add(7);
            let scrape = parse_exposition(&reg.render_prometheus());
            assert_eq!(scrape.samples.len(), 1, "value {value:?} lost the sample");
            assert_eq!(
                scrape.samples[0].label("k"),
                Some(value),
                "round-trip corrupted {value:?}"
            );
        }
    }

    #[test]
    fn json_rendering_summarizes_histograms() {
        let reg = Registry::new();
        reg.histogram("h_us", "", &[]).record(10);
        reg.counter("c_total", "", &[]).inc();
        let json = crate::export::render_json(&reg.gather());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v.get("c_total").and_then(serde_json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("h_us")
                .and_then(|h| h.get("count"))
                .and_then(serde_json::Value::as_u64),
            Some(1)
        );
    }
}
