//! A minimal HTTP/1.1 responder for telemetry scrapes, plus the matching
//! one-shot client used by `hetsyslog top` and the tests.
//!
//! This is not a web server: one accept thread, requests served inline,
//! `GET` only, connection closed after every response. Scrapes are rare
//! (a dashboard poll every few seconds) and tiny, so simplicity wins over
//! concurrency — and the responder shares the listener runtime's
//! poll-and-check-shutdown discipline so it never blocks a drain.

use crate::Registry;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One additional route beyond the always-present `GET /metrics`.
pub struct Route {
    /// Absolute path, e.g. `"/health"`.
    pub path: &'static str,
    /// Response `Content-Type`.
    pub content_type: &'static str,
    /// Renders the response body at request time.
    pub render: Box<dyn Fn() -> String + Send + Sync>,
}

impl Route {
    /// Convenience constructor.
    pub fn new(
        path: &'static str,
        content_type: &'static str,
        render: impl Fn() -> String + Send + Sync + 'static,
    ) -> Route {
        Route {
            path,
            content_type,
            render: Box::new(render),
        }
    }
}

/// The running scrape endpoint. Serves `GET /metrics` (Prometheus text
/// format) from the registry plus any extra [`Route`]s; everything else is
/// 404. Stop with [`MetricsServer::stop`] (dropping also stops it).
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind an ephemeral loopback port and start serving.
    pub fn start(registry: Arc<Registry>, routes: Vec<Route>) -> std::io::Result<MetricsServer> {
        MetricsServer::bind("127.0.0.1:0", registry, routes)
    }

    /// Bind `addr` and start serving.
    pub fn bind(
        addr: &str,
        registry: Arc<Registry>,
        routes: Vec<Route>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Served inline: a scrape is one small request
                            // and one response; no per-connection thread.
                            let _ = serve_request(stream, &registry, &routes);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(MetricsServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (scrape at `http://{addr}/metrics`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serve thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_request(
    mut stream: TcpStream,
    registry: &Registry,
    routes: &[Route],
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    // Read until the header terminator; a scrape request has no body.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        )
    } else if path == "/metrics" {
        (
            "200 OK",
            "text/plain; version=0.0.4",
            registry.render_prometheus(),
        )
    } else if let Some(route) = routes.iter().find(|r| r.path == path) {
        ("200 OK", route.content_type, (route.render)())
    } else {
        ("404 Not Found", "text/plain", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal one-shot HTTP GET: returns the response body, failing on any
/// status other than 200. `addr` is `host:port`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("HTTP error: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_health_and_404() {
        let registry = Arc::new(Registry::new());
        registry.counter("up_total", "liveness", &[]).add(3);
        let server = MetricsServer::start(
            registry.clone(),
            vec![Route::new("/health", "application/json", || {
                "{\"ok\":true}".to_string()
            })],
        )
        .unwrap();
        let addr = server.addr().to_string();

        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("# TYPE up_total counter"));
        assert!(metrics.contains("up_total 3"));

        let health = http_get(&addr, "/health").unwrap();
        assert_eq!(health, "{\"ok\":true}");

        assert!(http_get(&addr, "/nope").is_err());
    }

    /// Send raw bytes and return the full response (status line included),
    /// for the error paths `http_get` deliberately hides.
    fn raw_request(addr: &str, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(request).unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn unknown_path_is_a_404_not_a_hang() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::start(registry, Vec::new()).unwrap();
        let addr = server.addr().to_string();
        let response = raw_request(&addr, b"GET /definitely-not-a-route HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        assert!(response.contains("not found"));
        // The server is still alive for the next scrape.
        assert!(http_get(&addr, "/metrics").is_ok());
    }

    #[test]
    fn malformed_request_lines_get_an_error_response() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::start(registry, Vec::new()).unwrap();
        let addr = server.addr().to_string();
        // No method/path at all, binary junk, and a bodyless POST — each
        // must produce a well-formed error response and leave the server
        // serving.
        for junk in [
            &b"\r\n\r\n"[..],
            &b"\x00\x01\x02\xff\r\n\r\n"[..],
            &b"POST /metrics HTTP/1.1\r\n\r\n"[..],
        ] {
            let response = raw_request(&addr, junk);
            assert!(response.starts_with("HTTP/1.1 405"), "{response:?}");
        }
        assert!(http_get(&addr, "/metrics").is_ok());
    }

    #[test]
    fn concurrent_scrapes_each_see_a_consistent_snapshot() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("scrapes_total", "", &[]);
        counter.add(5);
        let server = MetricsServer::start(registry.clone(), Vec::new()).unwrap();
        let addr = server.addr().to_string();
        // Writers keep incrementing while N clients scrape concurrently;
        // every scrape must parse cleanly and report a value within the
        // live counter's range at the time of the scrape.
        let writer = {
            let counter = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    counter.inc();
                }
            })
        };
        let scrapers: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || http_get(&addr, "/metrics").unwrap())
            })
            .collect();
        let bodies: Vec<String> = scrapers.into_iter().map(|h| h.join().unwrap()).collect();
        writer.join().unwrap();
        for body in bodies {
            let scrape = crate::parse_exposition(&body);
            let sample = scrape
                .samples
                .iter()
                .find(|s| s.name == "scrapes_total")
                .expect("counter present in every scrape");
            let v = sample.value as u64;
            assert!((5..=1_005).contains(&v), "out-of-range snapshot: {v}");
        }
        assert_eq!(counter.get(), 1_005);
    }

    #[test]
    fn stop_joins_the_serve_thread() {
        let registry = Arc::new(Registry::new());
        let mut server = MetricsServer::start(registry, Vec::new()).unwrap();
        let addr = server.addr().to_string();
        assert!(http_get(&addr, "/metrics").is_ok());
        server.stop();
        // Port is released: connects now fail or reset immediately.
        // (Double-stop is a no-op.)
        server.stop();
    }
}
