//! Telemetry substrate for the hetsyslog pipeline.
//!
//! The crate provides four layers, each usable alone:
//!
//! - [`metrics`]: atomic [`Counter`] / [`Gauge`] and a log-linear-bucketed
//!   atomic [`Histogram`] whose snapshots merge exactly and estimate
//!   quantiles to within one bucket of error.
//! - [`registry`]: a named, labeled instrument [`Registry`]. Registration
//!   locks once and hands back `Arc` handles; the record path is pure
//!   atomics.
//! - [`span`]: lightweight [`Span`] tracing (enter/exit timestamps, parent
//!   links, per-stage tags) feeding a fixed-size ring of recent slow spans.
//! - [`export`] / [`http`]: Prometheus text exposition (render *and*
//!   parse), a JSON rendering, and a minimal scrape endpoint
//!   ([`MetricsServer`]) plus the matching [`http_get`] client.
//! - [`timeseries`] / [`alert`]: the flight recorder — a background
//!   [`Sampler`] scraping the registry into per-series ring buffers with
//!   delta-aware windowed aggregates, and a rule-based [`AlertEngine`]
//!   (threshold / absence / burn-rate with `for`-duration hysteresis)
//!   evaluated on every sweep.
//!
//! The pipeline crates hold a shared [`Telemetry`] bundle (registry +
//! span log) and register their instruments at construction time;
//! everything else — scrape endpoint, `hetsyslog top`, conformance
//! invariant checks — reads from the same bundle.

pub mod alert;
pub mod export;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use alert::{AlertEngine, AlertEvent, AlertState, AlertStatus, Cmp, Rule, RuleInput, RuleKind};
pub use export::{parse_exposition, render_json, render_prometheus, Sample, Scrape};
pub use http::{http_get, MetricsServer, Route};
pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot,
    HIST_BUCKETS,
};
pub use registry::{Instrument, Labels, Registry, SeriesSnapshot};
pub use span::{Span, SpanLog, SpanRecord};
pub use timeseries::{Point, Sampler, SamplerConfig, TimeSeriesStore, WindowAggregate};

use std::sync::Arc;
use std::time::Duration;

/// Default slow-span threshold: spans shorter than this are counted but
/// not retained in the ring.
pub const DEFAULT_SLOW_SPAN_US: u64 = 1_000;

/// Default slow-span ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

/// The shared telemetry bundle: one metric registry plus one slow-span
/// ring, handed to every pipeline stage.
#[derive(Debug)]
pub struct Telemetry {
    /// The instrument registry backing `/metrics`.
    pub registry: Arc<Registry>,
    /// The slow-span ring backing `/spans`.
    pub spans: Arc<SpanLog>,
}

impl Telemetry {
    /// A bundle with default span retention (256 spans, 1ms threshold).
    pub fn new() -> Telemetry {
        Telemetry {
            registry: Arc::new(Registry::new()),
            spans: Arc::new(SpanLog::new(
                DEFAULT_SPAN_CAPACITY,
                Duration::from_micros(DEFAULT_SLOW_SPAN_US),
            )),
        }
    }

    /// A bundle with explicit span ring capacity and slow threshold.
    pub fn with_spans(capacity: usize, slow_threshold: Duration) -> Telemetry {
        Telemetry {
            registry: Arc::new(Registry::new()),
            spans: Arc::new(SpanLog::new(capacity, slow_threshold)),
        }
    }

    /// Convenience: a shared bundle.
    pub fn new_arc() -> Arc<Telemetry> {
        Arc::new(Telemetry::new())
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_wires_registry_and_spans_together() {
        let t = Telemetry::new_arc();
        t.registry.counter("x_total", "", &[]).inc();
        t.spans.span("probe").finish();
        assert_eq!(t.registry.counter_value("x_total", &[]), Some(1));
        assert_eq!(t.spans.spans_started(), 1);
    }
}
