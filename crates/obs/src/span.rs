//! Lightweight span tracing: enter/exit timestamps, parent links, and
//! per-stage tags, feeding a fixed-size ring of recent *slow* spans.
//!
//! This is deliberately not a general tracer: the pipeline opens a handful
//! of spans per batch (never per frame), and only spans at or above the
//! slow threshold are retained. The ring is the operator's "what was slow
//! lately" window; counters summarize everything else.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A finished span, as retained by the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// Unique id within this [`SpanLog`].
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Stage name (`"batch"`, `"classify"`, `"store_insert"`, …).
    pub name: &'static str,
    /// Free-form tag (batch size, source id, …). Empty when untagged.
    pub tag: String,
    /// Enter time, microseconds since the log's epoch.
    pub start_us: u64,
    /// Exit time, microseconds since the log's epoch.
    pub end_us: u64,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// The span sink: hands out [`Span`]s and retains the most recent slow
/// ones in a fixed-capacity ring.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    slow_threshold_us: u64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    next_id: AtomicU64,
    started: AtomicU64,
    retained: AtomicU64,
}

impl SpanLog {
    /// A log retaining up to `capacity` spans that ran for at least
    /// `slow_threshold`.
    pub fn new(capacity: usize, slow_threshold: Duration) -> SpanLog {
        SpanLog {
            epoch: Instant::now(),
            slow_threshold_us: slow_threshold.as_micros().min(u64::MAX as u128) as u64,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            next_id: AtomicU64::new(1),
            started: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// Open a root span. It records itself on drop (or [`Span::finish`]).
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        self.started.fetch_add(1, Ordering::Relaxed);
        Span {
            log: self.clone(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent: None,
            name,
            tag: String::new(),
            entered: Instant::now(),
        }
    }

    /// Spans opened over the log's lifetime.
    pub fn spans_started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Slow spans retained over the log's lifetime (including evicted).
    pub fn slow_spans_recorded(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// The retained slow spans, oldest first.
    pub fn recent_slow(&self) -> Vec<SpanRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Render the retained slow spans as a JSON document (the `/spans`
    /// endpoint body).
    pub fn render_json(&self) -> String {
        let spans = self.recent_slow();
        serde_json::to_string(&serde_json::json!({
            "slow_threshold_us": self.slow_threshold_us,
            "spans_started": self.spans_started(),
            "slow_spans_recorded": self.slow_spans_recorded(),
            "spans": spans,
        }))
        .unwrap_or_default()
    }

    fn record(&self, span: &Span) {
        let end = Instant::now();
        let duration = end.duration_since(span.entered);
        if duration.as_micros() < self.slow_threshold_us as u128 {
            return;
        }
        let end_us = end
            .duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let start_us = end_us.saturating_sub(duration.as_micros().min(u64::MAX as u128) as u64);
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name,
            tag: span.tag.clone(),
            start_us,
            end_us,
        });
    }
}

/// An open span. Exit is recorded on drop; only spans at or above the
/// log's slow threshold are retained.
#[derive(Debug)]
pub struct Span {
    log: Arc<SpanLog>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    tag: String,
    entered: Instant,
}

impl Span {
    /// Open a child span parented to this one.
    pub fn child(&self, name: &'static str) -> Span {
        self.log.started.fetch_add(1, Ordering::Relaxed);
        Span {
            log: self.log.clone(),
            id: self.log.next_id.fetch_add(1, Ordering::Relaxed),
            parent: Some(self.id),
            name,
            tag: String::new(),
            entered: Instant::now(),
        }
    }

    /// Attach a free-form tag.
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        self.tag = tag.into();
    }

    /// This span's id (for correlating children).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Close the span now instead of at scope end.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.log.record(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_spans_are_not_retained() {
        let log = Arc::new(SpanLog::new(8, Duration::from_secs(10)));
        log.span("quick").finish();
        assert_eq!(log.spans_started(), 1);
        assert_eq!(log.slow_spans_recorded(), 0);
        assert!(log.recent_slow().is_empty());
    }

    #[test]
    fn slow_spans_record_parent_links_and_tags() {
        let log = Arc::new(SpanLog::new(8, Duration::ZERO));
        let mut root = log.span("batch");
        root.set_tag("size=64");
        let child = root.child("classify");
        let root_id = root.id();
        child.finish();
        root.finish();
        let spans = log.recent_slow();
        assert_eq!(spans.len(), 2);
        // Child finishes (and records) first.
        assert_eq!(spans[0].name, "classify");
        assert_eq!(spans[0].parent, Some(root_id));
        assert_eq!(spans[1].name, "batch");
        assert_eq!(spans[1].tag, "size=64");
        assert_eq!(spans[1].parent, None);
        assert!(spans[1].end_us >= spans[1].start_us);
        let json = log.render_json();
        assert!(json.contains("\"classify\""));
        assert!(json.contains("slow_threshold_us"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = Arc::new(SpanLog::new(2, Duration::ZERO));
        for name in ["a", "b", "c"] {
            log.span(name).finish();
        }
        let spans = log.recent_slow();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "b");
        assert_eq!(log.slow_spans_recorded(), 3);
    }
}
