//! Rule-based alerting over the flight-recorder ring
//! ([`crate::timeseries::TimeSeriesStore`]).
//!
//! Three rule kinds, in the shape of the usual SRE alert taxonomy:
//!
//! - [`RuleKind::Threshold`] — a windowed aggregate (last value, rate,
//!   mean, p99, …) compared against a constant.
//! - [`RuleKind::Absence`] — the series produced no point inside the
//!   window ending *now* (stale or never-seen).
//! - [`RuleKind::BurnRate`] — the ratio of two counter rates (errors /
//!   traffic) compared against a constant, the multi-window burn-rate
//!   idiom's single-window core.
//!
//! Every rule carries `for`-duration hysteresis: the condition must hold
//! continuously for `for_ms` before the alert transitions
//! Pending → Firing (a single noisy sample never pages), and resolves on
//! the first evaluation where the condition is false. Transitions append
//! to a bounded event log; the full state is rendered as JSON at
//! `/alerts`.

use crate::registry::Labels;
use crate::timeseries::{TimeSeriesStore, WindowAggregate};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Default alert event-log capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Comparison operator for threshold-style conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl Cmp {
    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// Which windowed aggregate a threshold rule inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleInput {
    /// The newest raw sample value.
    Last,
    /// Increase per second over the window (counters / histogram counts).
    Rate,
    /// Windowed mean (gauge mean of samples, histogram mean of deltas).
    Mean,
    /// Windowed p50 (histograms).
    P50,
    /// Windowed p99 (histograms).
    P99,
    /// Observations recorded inside the window (histograms).
    Count,
}

impl RuleInput {
    fn extract(self, w: &WindowAggregate) -> f64 {
        match self {
            RuleInput::Last => w.last,
            RuleInput::Rate => w.rate_per_sec,
            RuleInput::Mean => w.mean,
            RuleInput::P50 => w.p50 as f64,
            RuleInput::P99 => w.p99 as f64,
            RuleInput::Count => w.delta_count as f64,
        }
    }

    fn name(self) -> &'static str {
        match self {
            RuleInput::Last => "last",
            RuleInput::Rate => "rate",
            RuleInput::Mean => "mean",
            RuleInput::P50 => "p50",
            RuleInput::P99 => "p99",
            RuleInput::Count => "count",
        }
    }
}

/// The condition a rule evaluates each tick.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// `input(window(metric)) cmp value`.
    Threshold {
        /// Aggregate to inspect.
        input: RuleInput,
        /// Comparison.
        cmp: Cmp,
        /// Constant to compare against.
        value: f64,
    },
    /// The series has no point inside the window ending now.
    Absence,
    /// `rate(metric) / rate(denominator) cmp value` — the burn-rate
    /// ratio. A zero denominator rate evaluates to condition-false
    /// (no traffic is not an elevated burn).
    BurnRate {
        /// Denominator metric name.
        denominator: String,
        /// Denominator label set.
        denominator_labels: Labels,
        /// Comparison.
        cmp: Cmp,
        /// Ratio threshold.
        value: f64,
    },
}

/// One alert rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name (`model_drift`, `ingest_stalled`, …).
    pub name: String,
    /// Metric family the rule watches.
    pub metric: String,
    /// Label set selecting the series.
    pub labels: Labels,
    /// The condition.
    pub kind: RuleKind,
    /// Window the aggregate is computed over, milliseconds.
    pub window_ms: u64,
    /// The condition must hold this long before firing, milliseconds.
    pub for_ms: u64,
}

impl Rule {
    /// A threshold rule with no labels. (Builder-style setters below.)
    pub fn threshold(name: &str, metric: &str, input: RuleInput, cmp: Cmp, value: f64) -> Rule {
        Rule {
            name: name.to_string(),
            metric: metric.to_string(),
            labels: Vec::new(),
            kind: RuleKind::Threshold { input, cmp, value },
            window_ms: 5_000,
            for_ms: 0,
        }
    }

    /// An absence rule: fires when the series goes stale for `window_ms`.
    pub fn absence(name: &str, metric: &str, window_ms: u64) -> Rule {
        Rule {
            name: name.to_string(),
            metric: metric.to_string(),
            labels: Vec::new(),
            kind: RuleKind::Absence,
            window_ms,
            for_ms: 0,
        }
    }

    /// A burn-rate rule: `rate(metric)/rate(denominator) cmp value`.
    pub fn burn_rate(name: &str, metric: &str, denominator: &str, cmp: Cmp, value: f64) -> Rule {
        Rule {
            name: name.to_string(),
            metric: metric.to_string(),
            labels: Vec::new(),
            kind: RuleKind::BurnRate {
                denominator: denominator.to_string(),
                denominator_labels: Vec::new(),
                cmp,
                value,
            },
            window_ms: 5_000,
            for_ms: 0,
        }
    }

    /// Select a labeled series.
    pub fn with_labels(mut self, labels: &[(&str, &str)]) -> Rule {
        self.labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.labels.sort();
        self
    }

    /// Set the aggregate window.
    pub fn over_ms(mut self, window_ms: u64) -> Rule {
        self.window_ms = window_ms;
        self
    }

    /// Set the `for`-duration hysteresis.
    pub fn for_ms(mut self, for_ms: u64) -> Rule {
        self.for_ms = for_ms;
        self
    }

    fn condition_text(&self) -> String {
        match &self.kind {
            RuleKind::Threshold { input, cmp, value } => format!(
                "{}({}[{}ms]) {} {}",
                input.name(),
                self.metric,
                self.window_ms,
                cmp.symbol(),
                value
            ),
            RuleKind::Absence => format!("absent({}[{}ms])", self.metric, self.window_ms),
            RuleKind::BurnRate {
                denominator,
                cmp,
                value,
                ..
            } => format!(
                "rate({})/rate({})[{}ms] {} {}",
                self.metric,
                denominator,
                self.window_ms,
                cmp.symbol(),
                value
            ),
        }
    }
}

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false.
    Inactive,
    /// Condition true, `for`-duration not yet served.
    Pending {
        /// When the condition first became true, ms.
        since_ms: u64,
    },
    /// Condition held for `for_ms`; the alert is active.
    Firing {
        /// When the alert started firing, ms.
        since_ms: u64,
    },
}

impl AlertState {
    fn name(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending { .. } => "pending",
            AlertState::Firing { .. } => "firing",
        }
    }
}

/// One state transition, appended to the bounded event log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Evaluation time, ms (store clock).
    pub at_ms: u64,
    /// Rule name.
    pub rule: String,
    /// `"pending"`, `"firing"`, or `"resolved"`.
    pub transition: &'static str,
    /// The evaluated condition value at transition time.
    pub value: f64,
}

/// Point-in-time view of one rule for `/alerts` and `top`.
#[derive(Debug, Clone)]
pub struct AlertStatus {
    /// Rule name.
    pub name: String,
    /// Human-readable condition.
    pub condition: String,
    /// Current lifecycle state.
    pub state: AlertState,
    /// The condition value at the last evaluation (NaN before the first).
    pub value: f64,
    /// Firing/resolved transition counts over the engine's lifetime.
    pub fired_count: u64,
}

#[derive(Debug)]
struct RuleRuntime {
    state: AlertState,
    last_value: f64,
    fired_count: u64,
}

/// The alert engine: rules + per-rule state machines + event log.
/// [`AlertEngine::evaluate`] is called by the sampler after every sweep.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<Rule>,
    runtime: Mutex<Vec<RuleRuntime>>,
    events: Mutex<VecDeque<AlertEvent>>,
    event_capacity: usize,
}

impl AlertEngine {
    /// An engine over a fixed rule set.
    pub fn new(rules: Vec<Rule>) -> AlertEngine {
        let runtime = rules
            .iter()
            .map(|_| RuleRuntime {
                state: AlertState::Inactive,
                last_value: f64::NAN,
                fired_count: 0,
            })
            .collect();
        AlertEngine {
            rules,
            runtime: Mutex::new(runtime),
            events: Mutex::new(VecDeque::new()),
            event_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate every rule against the store at `now_ms`, advancing the
    /// state machines and appending transitions to the event log.
    pub fn evaluate(&self, store: &TimeSeriesStore, now_ms: u64) {
        let mut runtime = self.runtime.lock();
        for (rule, rt) in self.rules.iter().zip(runtime.iter_mut()) {
            let (active, value) = self.eval_condition(rule, store, now_ms);
            rt.last_value = value;
            let next = match (rt.state, active) {
                (AlertState::Inactive, false) => AlertState::Inactive,
                (AlertState::Inactive, true) => {
                    if rule.for_ms == 0 {
                        AlertState::Firing { since_ms: now_ms }
                    } else {
                        AlertState::Pending { since_ms: now_ms }
                    }
                }
                (AlertState::Pending { since_ms }, true) => {
                    if now_ms.saturating_sub(since_ms) >= rule.for_ms {
                        AlertState::Firing { since_ms: now_ms }
                    } else {
                        AlertState::Pending { since_ms }
                    }
                }
                // Condition cleared before the for-duration was served:
                // back to inactive without ever firing (silently — a
                // pending alert never paged).
                (AlertState::Pending { .. }, false) => AlertState::Inactive,
                (AlertState::Firing { since_ms }, true) => AlertState::Firing { since_ms },
                (AlertState::Firing { .. }, false) => AlertState::Inactive,
            };
            if std::mem::discriminant(&next) != std::mem::discriminant(&rt.state) {
                let transition = match (&rt.state, &next) {
                    (_, AlertState::Pending { .. }) => Some("pending"),
                    (_, AlertState::Firing { .. }) => Some("firing"),
                    (AlertState::Firing { .. }, AlertState::Inactive) => Some("resolved"),
                    _ => None,
                };
                if let Some(transition) = transition {
                    if transition == "firing" {
                        rt.fired_count += 1;
                    }
                    let mut events = self.events.lock();
                    if events.len() == self.event_capacity {
                        events.pop_front();
                    }
                    events.push_back(AlertEvent {
                        at_ms: now_ms,
                        rule: rule.name.clone(),
                        transition,
                        value,
                    });
                }
            }
            rt.state = next;
        }
    }

    fn eval_condition(&self, rule: &Rule, store: &TimeSeriesStore, now_ms: u64) -> (bool, f64) {
        let labels: Vec<(&str, &str)> = rule
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        match &rule.kind {
            RuleKind::Threshold { input, cmp, value } => {
                match store.window(&rule.metric, &labels, rule.window_ms) {
                    Some(w) => {
                        let v = input.extract(&w);
                        (cmp.eval(v, *value), v)
                    }
                    // An unknown series is not a threshold breach (that is
                    // what Absence rules are for).
                    None => (false, f64::NAN),
                }
            }
            RuleKind::Absence => {
                let present = store
                    .window_ending_now(&rule.metric, &labels, rule.window_ms, now_ms)
                    .is_some();
                (!present, if present { 1.0 } else { 0.0 })
            }
            RuleKind::BurnRate {
                denominator,
                denominator_labels,
                cmp,
                value,
            } => {
                let den_labels: Vec<(&str, &str)> = denominator_labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let num = store.window(&rule.metric, &labels, rule.window_ms);
                let den = store.window(denominator, &den_labels, rule.window_ms);
                match (num, den) {
                    (Some(n), Some(d)) if d.rate_per_sec > 0.0 => {
                        let ratio = n.rate_per_sec / d.rate_per_sec;
                        (cmp.eval(ratio, *value), ratio)
                    }
                    _ => (false, f64::NAN),
                }
            }
        }
    }

    /// Current per-rule status.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        let runtime = self.runtime.lock();
        self.rules
            .iter()
            .zip(runtime.iter())
            .map(|(rule, rt)| AlertStatus {
                name: rule.name.clone(),
                condition: rule.condition_text(),
                state: rt.state,
                value: rt.last_value,
                fired_count: rt.fired_count,
            })
            .collect()
    }

    /// Names of currently firing rules.
    pub fn firing(&self) -> Vec<String> {
        self.statuses()
            .into_iter()
            .filter(|s| matches!(s.state, AlertState::Firing { .. }))
            .map(|s| s.name)
            .collect()
    }

    /// The event log, oldest first.
    pub fn events(&self) -> Vec<AlertEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Render statuses + events as the `/alerts` JSON document.
    pub fn render_json(&self) -> String {
        let statuses: Vec<serde_json::Value> = self
            .statuses()
            .iter()
            .map(|s| {
                serde_json::json!({
                    "name": s.name,
                    "condition": s.condition,
                    "state": s.state.name(),
                    "value": if s.value.is_finite() {
                        serde_json::json!(s.value)
                    } else {
                        serde_json::Value::Null
                    },
                    "fired_count": s.fired_count,
                })
            })
            .collect();
        let events: Vec<serde_json::Value> = self
            .events()
            .iter()
            .map(|e| {
                serde_json::json!({
                    "at_ms": e.at_ms,
                    "rule": e.rule,
                    "transition": e.transition,
                    "value": if e.value.is_finite() {
                        serde_json::json!(e.value)
                    } else {
                        serde_json::Value::Null
                    },
                })
            })
            .collect();
        serde_json::to_string(&serde_json::json!({
            "alerts": statuses,
            "events": events,
        }))
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SeriesSnapshot;

    fn counter_snap(name: &str, value: i64) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_string(),
            help: String::new(),
            kind: "counter",
            labels: Vec::new(),
            value,
            histogram: None,
        }
    }

    fn gauge_snap(name: &str, value: i64) -> SeriesSnapshot {
        SeriesSnapshot {
            kind: "gauge",
            ..counter_snap(name, value)
        }
    }

    #[test]
    fn threshold_fires_after_for_duration_and_resolves() {
        let store = TimeSeriesStore::new(64);
        let engine = AlertEngine::new(vec![Rule::threshold(
            "psi_high",
            "psi_milli",
            RuleInput::Last,
            Cmp::Gt,
            250.0,
        )
        .over_ms(10_000)
        .for_ms(500)]);

        // Below threshold: inactive.
        store.observe(0, 0, &[gauge_snap("psi_milli", 100)]);
        engine.evaluate(&store, 0);
        assert!(matches!(engine.statuses()[0].state, AlertState::Inactive));

        // Breach: pending first (for-duration not served).
        store.observe(250, 0, &[gauge_snap("psi_milli", 400)]);
        engine.evaluate(&store, 250);
        assert!(matches!(
            engine.statuses()[0].state,
            AlertState::Pending { .. }
        ));
        assert!(engine.firing().is_empty());

        // Still breached 500ms later: firing.
        store.observe(750, 0, &[gauge_snap("psi_milli", 420)]);
        engine.evaluate(&store, 750);
        assert_eq!(engine.firing(), vec!["psi_high".to_string()]);
        assert_eq!(engine.statuses()[0].fired_count, 1);

        // Recovered: resolved immediately.
        store.observe(1000, 0, &[gauge_snap("psi_milli", 50)]);
        engine.evaluate(&store, 1000);
        assert!(engine.firing().is_empty());
        let transitions: Vec<&str> = engine.events().iter().map(|e| e.transition).collect();
        assert_eq!(transitions, vec!["pending", "firing", "resolved"]);
    }

    #[test]
    fn pending_that_recovers_never_fires() {
        let store = TimeSeriesStore::new(64);
        let engine = AlertEngine::new(vec![Rule::threshold(
            "spiky",
            "g",
            RuleInput::Last,
            Cmp::Gt,
            10.0,
        )
        .for_ms(1_000)]);
        store.observe(0, 0, &[gauge_snap("g", 50)]);
        engine.evaluate(&store, 0);
        store.observe(100, 0, &[gauge_snap("g", 5)]);
        engine.evaluate(&store, 100);
        assert!(matches!(engine.statuses()[0].state, AlertState::Inactive));
        assert_eq!(engine.statuses()[0].fired_count, 0);
        let transitions: Vec<&str> = engine.events().iter().map(|e| e.transition).collect();
        assert_eq!(transitions, vec!["pending"]);
    }

    #[test]
    fn absence_rule_detects_stale_series() {
        let store = TimeSeriesStore::new(64);
        let engine = AlertEngine::new(vec![Rule::absence("stalled", "frames_total", 1_000)]);
        // Never-seen series is absent.
        engine.evaluate(&store, 0);
        assert_eq!(engine.firing(), vec!["stalled".to_string()]);
        // Fresh point: resolved.
        store.observe(100, 0, &[counter_snap("frames_total", 10)]);
        engine.evaluate(&store, 150);
        assert!(engine.firing().is_empty());
        // Stale again 2s later.
        engine.evaluate(&store, 2_000);
        assert_eq!(engine.firing(), vec!["stalled".to_string()]);
    }

    #[test]
    fn burn_rate_compares_two_counter_rates() {
        let store = TimeSeriesStore::new(64);
        let engine = AlertEngine::new(vec![Rule::burn_rate(
            "drop_burn",
            "dropped_total",
            "frames_total",
            Cmp::Gt,
            0.05,
        )
        .over_ms(10_000)]);
        // 1000 frames/s, 10 drops/s → ratio 0.01: fine.
        store.observe(
            0,
            0,
            &[
                counter_snap("dropped_total", 0),
                counter_snap("frames_total", 0),
            ],
        );
        store.observe(
            1_000,
            0,
            &[
                counter_snap("dropped_total", 10),
                counter_snap("frames_total", 1_000),
            ],
        );
        engine.evaluate(&store, 1_000);
        assert!(engine.firing().is_empty());
        let v = engine.statuses()[0].value;
        assert!((v - 0.01).abs() < 1e-9, "{v}");
        // Drop storm: 200 more drops over the next second → ratio spikes.
        store.observe(
            2_000,
            0,
            &[
                counter_snap("dropped_total", 210),
                counter_snap("frames_total", 2_000),
            ],
        );
        engine.evaluate(&store, 2_000);
        assert_eq!(engine.firing(), vec!["drop_burn".to_string()]);
        // No traffic at all: not a burn.
        let idle = TimeSeriesStore::new(8);
        idle.observe(0, 0, &[counter_snap("dropped_total", 0)]);
        let engine2 = AlertEngine::new(vec![Rule::burn_rate(
            "b",
            "dropped_total",
            "frames_total",
            Cmp::Gt,
            0.0,
        )]);
        engine2.evaluate(&idle, 0);
        assert!(engine2.firing().is_empty());
    }

    #[test]
    fn render_json_is_parseable_and_complete() {
        let store = TimeSeriesStore::new(8);
        let engine = AlertEngine::new(vec![
            Rule::threshold("t", "g", RuleInput::Last, Cmp::Gt, 1.0),
            Rule::absence("a", "missing_total", 1_000),
        ]);
        store.observe(0, 0, &[gauge_snap("g", 5)]);
        engine.evaluate(&store, 0);
        let v: serde_json::Value = serde_json::from_str(&engine.render_json()).unwrap();
        let alerts = v.get("alerts").and_then(|a| a.as_array()).unwrap();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].get("name").and_then(|x| x.as_str()), Some("t"));
        assert_eq!(
            alerts[0].get("state").and_then(|x| x.as_str()),
            Some("firing")
        );
        assert_eq!(
            alerts[1].get("state").and_then(|x| x.as_str()),
            Some("firing")
        );
        assert!(v.get("events").and_then(|e| e.as_array()).unwrap().len() >= 2);
        // NaN values render as null, keeping the document valid JSON.
        let engine2 = AlertEngine::new(vec![Rule::threshold(
            "u",
            "unknown",
            RuleInput::Last,
            Cmp::Gt,
            0.0,
        )]);
        engine2.evaluate(&store, 0);
        let v2: serde_json::Value = serde_json::from_str(&engine2.render_json()).unwrap();
        let a0 = &v2.get("alerts").and_then(|a| a.as_array()).unwrap()[0];
        assert!(a0.get("value").unwrap().is_null());
    }

    #[test]
    fn event_log_is_bounded() {
        let store = TimeSeriesStore::new(8);
        let engine = AlertEngine::new(vec![Rule::absence("flap", "m", 100)]);
        let mut t = 0u64;
        for _ in 0..(DEFAULT_EVENT_CAPACITY * 2) {
            engine.evaluate(&store, t); // absent → firing
            store.observe(t + 10, 0, &[counter_snap("m", 1)]);
            engine.evaluate(&store, t + 20); // present → resolved
            t += 1_000;
        }
        assert_eq!(engine.events().len(), DEFAULT_EVENT_CAPACITY);
    }
}
