//! The three instrument primitives: [`Counter`], [`Gauge`], and the
//! log-linear-bucketed [`Histogram`].
//!
//! Every instrument is a plain bundle of atomics. Handles are shared as
//! `Arc`s (usually obtained from a [`crate::Registry`], which deduplicates
//! by name + labels), so the record path is wait-free: no locks, no
//! allocation, just `fetch_add`s on cache lines the recorder already owns.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave (8 → ≤ 12.5 % relative bucket
/// width). Values below [`HIST_SUB`] get one exact bucket each.
pub const HIST_SUB_BITS: u32 = 3;

/// `2^HIST_SUB_BITS`.
pub const HIST_SUB: u64 = 1 << HIST_SUB_BITS;

/// Total buckets needed to cover the full `u64` range at [`HIST_SUB`]
/// sub-buckets per octave: `bucket_index(u64::MAX)` is
/// `(63 - HIST_SUB_BITS) × HIST_SUB + (HIST_SUB - 1)` = 495.
pub const HIST_BUCKETS: usize =
    (63 - HIST_SUB_BITS as usize) * HIST_SUB as usize + 2 * HIST_SUB as usize;

/// Bucket index for value `v`.
///
/// Layout: values `0..HIST_SUB` map to their own exact bucket; above that,
/// each power-of-two octave `[2^e, 2^(e+1))` is split into [`HIST_SUB`]
/// linear sub-buckets. Indices are continuous and monotone in `v`, and no
/// bucket straddles a power of two — which is what lets the pipeline fold
/// these buckets *exactly* into its legacy log₂ histograms.
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let shift = e - HIST_SUB_BITS;
        ((shift as u64 * HIST_SUB) + (v >> shift)) as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * HIST_SUB {
        i
    } else {
        let shift = i / HIST_SUB - 1;
        let mantissa = i - shift * HIST_SUB;
        mantissa << shift
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1).saturating_sub(1).max(bucket_lower(i))
    }
}

/// An immutable histogram snapshot: per-bucket counts plus total count and
/// sum. Merging snapshots is plain `u64` addition, so it is exactly
/// associative and commutative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count (or weight) per bucket, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Total recorded count (sum of weights).
    pub count: u64,
    /// Sum of `value × weight` over all records (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Merge `other` into `self` (exact: u64 saturating adds).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The bucket holding the `q`-th percentile rank (`0 ≤ q ≤ 100`), or
    /// `None` for an empty histogram. With rank `ceil(q/100 × count)`
    /// clamped to at least 1, this is exactly the bucket containing the
    /// rank-th smallest recorded value.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        None
    }

    /// Estimate the `q`-th percentile as the upper bound of the bucket
    /// holding that rank — an overestimate by at most one bucket width
    /// (≤ 12.5 % relative error above [`HIST_SUB`], exact below). Zero for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bucket(q).map(bucket_upper).unwrap_or(0)
    }

    /// Mean of recorded values (weighted), or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold the fine-grained buckets into `N` legacy log₂ buckets with the
    /// pipeline's convention: values ≤ 1 land in bucket 0, otherwise
    /// `floor(log2 v)` clamped to `N-1`. Exact, because no fine bucket
    /// straddles a power of two.
    pub fn counts_log2<const N: usize>(&self) -> [u64; N] {
        let mut out = [0u64; N];
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lower = bucket_lower(i);
            let idx = if lower <= 1 {
                0
            } else {
                ((63 - lower.leading_zeros()) as usize).min(N - 1)
            };
            out[idx] += c;
        }
        out
    }
}

/// A log-linear-bucketed atomic histogram over `u64` values (durations in
/// microseconds, sizes, byte counts).
///
/// Recording is wait-free (three relaxed `fetch_add`s). Buckets cover the
/// full `u64` range with ≤ 12.5 % relative width ([`HIST_SUB`] sub-buckets
/// per octave) and exact integer buckets below [`HIST_SUB`].
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A detached histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation of `v`.
    pub fn record(&self, v: u64) {
        self.record_weighted(v, 1);
    }

    /// Record `v` with weight `w`: the bucket and count gain `w`, the sum
    /// gains `v × w`. Weighted recording is what lets a per-*frame*
    /// histogram be fed one entry per *batch*.
    pub fn record_weighted(&self, v: u64, w: u64) {
        if w == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(w, Ordering::Relaxed);
        self.count.fetch_add(w, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(w), Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total recorded count (sum of weights).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of `value × weight` over all records.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Atomically-read point-in-time snapshot. (Individual bucket loads are
    /// relaxed; a snapshot taken while recorders run may be mid-update by a
    /// few counts, exactly like the legacy atomic-array histograms.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Add every bucket of `other` into `self` (live merge).
    pub fn merge_from(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Shorthand for `snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..4096u64 {
            let i = bucket_index(v);
            assert!(i == prev || i == prev + 1, "gap at {v}: {prev} -> {i}");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn bucket_bounds_cover_their_values() {
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "{v} > upper({i})");
        }
        // Exact buckets below HIST_SUB.
        for v in 0..HIST_SUB {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v);
        }
    }

    #[test]
    fn buckets_never_straddle_powers_of_two() {
        for i in 0..HIST_BUCKETS - 1 {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            if lo <= 1 {
                continue;
            }
            assert_eq!(
                63 - lo.leading_zeros(),
                63 - hi.leading_zeros(),
                "bucket {i} [{lo}, {hi}] spans an octave boundary"
            );
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let s = h.snapshot();
        // p50 rank is value 50; its bucket is [48, 55].
        let b = s.quantile_bucket(50.0).unwrap();
        assert!(bucket_lower(b) <= 50 && 50 <= bucket_upper(b));
        assert_eq!(s.quantile(100.0), bucket_upper(bucket_index(100)));
        assert_eq!(HistogramSnapshot::empty().quantile(99.0), 0);
    }

    #[test]
    fn weighted_records_accumulate_weight() {
        let h = Histogram::new();
        h.record_weighted(64, 64);
        h.record_weighted(3, 3);
        assert_eq!(h.count(), 67);
        assert_eq!(h.sum(), 64 * 64 + 9);
        let s = h.snapshot();
        assert_eq!(s.buckets[bucket_index(64)], 64);
        assert_eq!(s.buckets[bucket_index(3)], 3);
    }

    #[test]
    fn log2_fold_matches_direct_bucketing() {
        // The pipeline's legacy convention: ≤1 → bucket 0, else floor(log2)
        // clamped. Folding the fine histogram must agree value-for-value.
        fn legacy(v: u64, n: usize) -> usize {
            if v <= 1 {
                0
            } else {
                ((63 - v.leading_zeros()) as usize).min(n - 1)
            }
        }
        let h = Histogram::new();
        let mut reference = [0u64; 20];
        for v in [0u64, 1, 2, 3, 4, 7, 8, 100, 1023, 1024, 1 << 19, 1 << 25] {
            h.record(v);
            reference[legacy(v, 20)] += 1;
        }
        assert_eq!(h.snapshot().counts_log2::<20>(), reference);
    }

    #[test]
    fn merge_adds_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(1000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 1020);
        assert_eq!(sa.buckets[bucket_index(10)], 2);
        a.merge_from(&b);
        assert_eq!(a.snapshot(), sa);
    }
}
