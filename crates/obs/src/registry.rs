//! The instrument registry: named, labeled counters/gauges/histograms with
//! a lock-free record path.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a mutex and
//! get-or-creates the instrument, returning a shared `Arc` handle. Callers
//! register once at construction time, cache the handle, and record through
//! plain atomics — the registry lock is never on the hot path. The same
//! (name, labels) pair always resolves to the same instrument, so two
//! components describing the same stage share one time series.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn labels_of(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// One registered instrument.
#[derive(Debug, Clone)]
pub enum Instrument {
    /// A monotonic counter.
    Counter(Arc<Counter>),
    /// An up/down gauge.
    Gauge(Arc<Gauge>),
    /// A log-linear histogram.
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: every labeled instrument sharing a name, plus its
/// help text and type.
#[derive(Debug, Default)]
struct Family {
    help: String,
    series: BTreeMap<Labels, Instrument>,
}

/// A point-in-time copy of one labeled series, for export and scraping.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Metric family name.
    pub name: String,
    /// Family help text (may be empty).
    pub help: String,
    /// Instrument kind: `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// The series labels, sorted by key.
    pub labels: Labels,
    /// Counter/gauge value (histograms report 0 here).
    pub value: i64,
    /// Histogram data (counters/gauges report `None`).
    pub histogram: Option<HistogramSnapshot>,
}

/// The registry. Cheap to create; share as `Arc<Registry>`.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// A new empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T, F: FnOnce() -> Instrument, G: Fn(&Instrument) -> Option<Arc<T>>>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: F,
        cast: G,
        fallback: Arc<T>,
    ) -> Arc<T> {
        let mut families = self.families.lock();
        let family = families.entry(name.to_string()).or_default();
        if family.help.is_empty() && !help.is_empty() {
            family.help = help.to_string();
        }
        let instrument = family
            .series
            .entry(labels_of(labels))
            .or_insert_with(make)
            .clone();
        // A kind collision (same name registered as a different type)
        // hands back a detached instrument rather than corrupting the
        // existing series; recording still works, export ignores it.
        cast(&instrument).unwrap_or(fallback)
    }

    /// Get-or-create a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Arc::new(Counter::new()),
        )
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Arc::new(Gauge::new()),
        )
    }

    /// Get-or-create a histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Arc::new(Histogram::new()),
        )
    }

    /// Snapshot every registered series, sorted by (name, labels).
    pub fn gather(&self) -> Vec<SeriesSnapshot> {
        let families = self.families.lock();
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, instrument) in &family.series {
                let (value, histogram) = match instrument {
                    Instrument::Counter(c) => (c.get() as i64, None),
                    Instrument::Gauge(g) => (g.get(), None),
                    Instrument::Histogram(h) => (0, Some(h.snapshot())),
                };
                out.push(SeriesSnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: instrument.kind(),
                    labels: labels.clone(),
                    value,
                    histogram,
                });
            }
        }
        out
    }

    /// Look up a counter's current value by name + labels (for invariant
    /// checks and tests; the hot path holds handles instead).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.lock();
        match families.get(name)?.series.get(&labels_of(labels))? {
            Instrument::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Look up a gauge's current value by name + labels (same contract as
    /// [`Registry::counter_value`]).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let families = self.families.lock();
        match families.get(name)?.series.get(&labels_of(labels))? {
            Instrument::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (version 0.0.4). Histograms emit cumulative `_bucket{le=...}` lines
    /// for each non-empty bucket plus `+Inf`, then `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        crate::export::render_prometheus(&self.gather())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_instrument() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", "requests", &[("stage", "parse")]);
        let b = reg.counter("requests_total", "", &[("stage", "parse")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(
            reg.counter_value("requests_total", &[("stage", "parse")]),
            Some(3)
        );
        // Different labels → different series.
        let c = reg.counter("requests_total", "", &[("stage", "predict")]);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(reg.gather().len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        let a = reg.gauge("depth", "", &[("a", "1"), ("b", "2")]);
        let b = reg.gauge("depth", "", &[("b", "2"), ("a", "1")]);
        a.set(7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn kind_collision_yields_detached_instrument() {
        let reg = Registry::new();
        let c = reg.counter("mixed", "", &[]);
        c.inc();
        let g = reg.gauge("mixed", "", &[]);
        g.set(99);
        // The original counter series is untouched.
        assert_eq!(reg.counter_value("mixed", &[]), Some(1));
    }

    #[test]
    fn gather_reports_histograms() {
        let reg = Registry::new();
        let h = reg.histogram("latency_us", "stage latency", &[("stage", "decode")]);
        h.record(5);
        h.record(100);
        let all = reg.gather();
        assert_eq!(all.len(), 1);
        let s = &all[0];
        assert_eq!(s.kind, "histogram");
        let hist = s.histogram.as_ref().unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 105);
    }
}
