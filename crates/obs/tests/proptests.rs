//! Property tests for the telemetry primitives (issue satellite):
//! histogram merge is associative and commutative, quantile estimates
//! bracket the true order statistics to within bucket error, concurrent
//! counter increments sum exactly, and label values — control characters
//! included — round-trip through the exposition renderer and parser.

use obs::metrics::{bucket_lower, bucket_upper};
use obs::{parse_exposition, Counter, Histogram, HistogramSnapshot, Registry};
use proptest::prelude::*;
use std::sync::Arc;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The true q-th percentile of `values` under the histogram's rank
/// convention: the `ceil(q/100 × n)`-th smallest value (rank at least 1).
fn true_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a), element for element.
    #[test]
    fn merge_is_commutative(
        xs in collection::vec(0u64..1_000_000, 0..64),
        ys in collection::vec(0u64..1_000_000, 0..64),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)), and both equal the
    /// histogram of the concatenated inputs.
    #[test]
    fn merge_is_associative_and_exact(
        xs in collection::vec(0u64..1_000_000, 0..48),
        ys in collection::vec(0u64..1_000_000, 0..48),
        zs in collection::vec(0u64..1_000_000, 0..48),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        let mut all = Vec::new();
        all.extend_from_slice(&xs);
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        prop_assert_eq!(left, hist_of(&all));
    }

    /// The estimated quantile's bucket brackets the true order statistic:
    /// bucket_lower ≤ true value ≤ bucket_upper (= the estimate). Values
    /// span nine orders of magnitude to exercise many octaves.
    #[test]
    fn quantiles_bracket_true_values(
        values in collection::vec(0u64..1_000_000_000, 1..128),
        q in 0.0f64..=100.0,
    ) {
        let snapshot = hist_of(&values);
        let truth = true_quantile(&values, q);
        let bucket = snapshot.quantile_bucket(q).expect("non-empty");
        prop_assert!(
            bucket_lower(bucket) <= truth && truth <= bucket_upper(bucket),
            "q={q}: true {truth} outside bucket [{}, {}]",
            bucket_lower(bucket),
            bucket_upper(bucket)
        );
        prop_assert_eq!(snapshot.quantile(q), bucket_upper(bucket));
    }

    /// N threads × M increments each lose nothing.
    #[test]
    fn concurrent_counter_increments_sum_exactly(
        threads in 1usize..8,
        per_thread in 1u64..2_000,
    ) {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(counter.get(), threads as u64 * per_thread);
    }

    /// Label values round-trip exactly through render → parse, including
    /// the escape-sensitive characters (`\`, `"`, newline, the literal
    /// two-character `\n`, tabs) and label-syntax lookalikes.
    #[test]
    fn label_values_round_trip_through_exposition(
        value in collection::vec(0usize..14, 0..24).prop_map(|idxs| {
            // Escape-sensitive characters, label-syntax lookalikes, and
            // plain filler, weighted equally.
            const CHARS: [char; 14] = [
                '\\', '"', '\n', '\t', 'n', ',', '=', '{', '}', ' ',
                'a', 'z', '0', '9',
            ];
            idxs.into_iter().map(|i| CHARS[i]).collect::<String>()
        }),
    ) {
        let reg = Registry::new();
        reg.counter("m_total", "", &[("k", &value)]).add(3);
        let scrape = parse_exposition(&reg.render_prometheus());
        prop_assert_eq!(scrape.samples.len(), 1);
        prop_assert_eq!(scrape.samples[0].label("k"), Some(value.as_str()));
        prop_assert_eq!(scrape.samples[0].value, 3.0);
    }

    /// Weighted recording is equivalent to repeating the plain record.
    #[test]
    fn weighted_equals_repeated(
        v in 0u64..100_000,
        w in 1u64..200,
    ) {
        let weighted = Histogram::new();
        weighted.record_weighted(v, w);
        let repeated = Histogram::new();
        for _ in 0..w {
            repeated.record(v);
        }
        prop_assert_eq!(weighted.snapshot(), repeated.snapshot());
    }
}
