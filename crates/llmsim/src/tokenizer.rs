//! Subword token counting.
//!
//! Latency scales with token counts, so the simulator needs a tokenizer
//! whose counts behave like a BPE vocabulary's: short common words ≈ 1
//! token, long/rare identifiers split into several pieces. This is a
//! deterministic approximation (≈1.3 tokens per English word), not a real
//! BPE — the latency model only needs the scaling, not the ids.

/// Number of model tokens `text` would occupy.
pub fn count_tokens(text: &str) -> usize {
    text.split_whitespace().map(word_tokens).sum()
}

/// Tokens for a single whitespace-delimited word: 1 for the first 6 chars,
/// +1 per further 4 chars (numbers and punctuation fragment faster).
fn word_tokens(word: &str) -> usize {
    let chars = word.chars().count();
    if chars == 0 {
        return 0;
    }
    let has_digit_or_punct = word.chars().any(|c| !c.is_alphabetic());
    let base_len = if has_digit_or_punct { 4 } else { 6 };
    if chars <= base_len {
        1
    } else {
        1 + (chars - base_len).div_ceil(4)
    }
}

/// Split `text` into approximately `n` leading tokens' worth of words —
/// used to truncate generations at a `max_new_tokens` cap.
pub fn truncate_to_tokens(text: &str, n: usize) -> String {
    let mut used = 0usize;
    let mut end = 0usize;
    for word in text.split_whitespace() {
        let cost = word_tokens(word);
        if used + cost > n {
            break;
        }
        used += cost;
        // Find this word's end position in the original text.
        let start = text[end..].find(word).map(|p| p + end).unwrap_or(end);
        end = start + word.len();
    }
    text[..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(count_tokens("the cpu is hot"), 4);
    }

    #[test]
    fn long_identifiers_fragment() {
        assert!(count_tokens("slurm_rpc_node_registration") >= 4);
        assert_eq!(count_tokens("temperature"), 3);
    }

    #[test]
    fn numbers_fragment_faster() {
        assert_eq!(count_tokens("12345678"), 2);
        assert_eq!(count_tokens("deadbeef"), 2); // alphabetic 8 chars: 1+(8-6)/4→2
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   "), 0);
    }

    #[test]
    fn truncation_respects_cap() {
        let text = "one two three four five six seven eight";
        let t = truncate_to_tokens(text, 3);
        assert_eq!(t, "one two three");
        assert!(count_tokens(&t) <= 3);
    }

    #[test]
    fn truncation_with_large_cap_is_identity() {
        let text = "short message";
        assert_eq!(truncate_to_tokens(text, 100), text);
    }

    #[test]
    fn truncation_zero_is_empty() {
        assert_eq!(truncate_to_tokens("anything here", 0), "");
    }
}
