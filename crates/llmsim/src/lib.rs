//! Deterministic simulated LLM substrate.
//!
//! The paper evaluates Falcon-7b, Falcon-40b (generative classification)
//! and facebook/bart-large-mnli (zero-shot) on a 4×A100 node. Neither the
//! models nor the GPUs are available here, so this crate builds the closest
//! synthetic equivalent that exercises the same code paths and reproduces
//! the same *observed behaviours*:
//!
//! * [`tokenizer`] — subword-ish token counting for latency accounting;
//! * [`latency`] — per-token latency models calibrated to the paper's
//!   Table 3 measurements, driven through a [`clock::VirtualClock`];
//! * [`lm`] — a category-conditioned bigram language model trained on the
//!   corpus, used both as the simulated model's "knowledge" and to
//!   fabricate plausible hallucinated text;
//! * [`prompt`] — the §5.2 prompt recipe (task intro, category list,
//!   TF-IDF top words per category, output format, one-shot example);
//! * [`generative`] — the generative pseudo-LLM with the paper's failure
//!   modes: out-of-taxonomy "generated classification", excessive
//!   generation (unsolicited justifications), and runaway prompt
//!   continuation — all mitigated by a `max_new_tokens` cap exactly as the
//!   authors did;
//! * [`parse`] — response parsing back into the taxonomy;
//! * [`zeroshot`] — a BART-MNLI-style zero-shot scorer that always returns
//!   an in-taxonomy label;
//! * [`classifier`] — adapters implementing
//!   [`hetsyslog_core::TextClassifier`];
//! * [`summarize`] — the Future Work (§7) low-frequency tasks: status
//!   summaries, group explanations, admin-reply drafting.

pub mod classifier;
pub mod clock;
pub mod generative;
pub mod latency;
pub mod lm;
pub mod parse;
pub mod prompt;
pub mod summarize;
pub mod tokenizer;
pub mod zeroshot;

pub use classifier::{GenerativeLlmClassifier, ZeroShotLlmClassifier};
pub use clock::VirtualClock;
pub use generative::{GenerativeLlm, GenerativeOutput, ModelPreset};
pub use latency::LatencyModel;
pub use lm::CategoryLm;
pub use parse::{parse_response, ParseFailure};
pub use prompt::PromptBuilder;
pub use summarize::{StatusSummarizer, SummaryReport};
pub use zeroshot::ZeroShotModel;
