//! The generative pseudo-LLM with the paper's observed failure modes.
//!
//! §5.2 reports three behaviours that made generative classification
//! painful, all reproduced here:
//!
//! 1. **Generated classification** — "the chosen classification … was an
//!    entirely new category that we hadn't previously defined, but that
//!    makes sense in the context of the message".
//! 2. **Excessive generation** — unsolicited justifications for the chosen
//!    category.
//! 3. **Prompt continuation** — in the worst case the model fabricated a
//!    new prompt introducing "a system administrator character" plus an
//!    artificial syslog message for it to classify.
//!
//! The authors' mitigation — "placing a limit on the number of new tokens"
//! — is the `max_new_tokens` argument.

use crate::latency::LatencyModel;
use crate::lm::CategoryLm;
use crate::tokenizer::{count_tokens, truncate_to_tokens};
use hetsyslog_core::Category;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Behavioural profile of one simulated model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPreset {
    /// Display name (matches the paper's Hugging Face ids loosely).
    pub name: &'static str,
    /// Latency profile.
    pub latency: LatencyModel,
    /// Gaussian noise added to category log-scores: smaller models choose
    /// worse.
    pub score_noise: f64,
    /// Probability of inventing an out-of-taxonomy category.
    pub novel_category_rate: f64,
    /// Probability of appending an unsolicited justification.
    pub excessive_generation_rate: f64,
    /// Probability of runaway prompt continuation.
    pub continuation_rate: f64,
}

impl ModelPreset {
    /// Falcon-7b: fast, fairly inaccurate, very chatty.
    pub fn falcon_7b() -> ModelPreset {
        ModelPreset {
            name: "Falcon-7b",
            latency: LatencyModel::falcon_7b(),
            score_noise: 2.2,
            novel_category_rate: 0.14,
            excessive_generation_rate: 0.30,
            continuation_rate: 0.06,
        }
    }

    /// Falcon-40b: slower, better aligned, still imperfect.
    pub fn falcon_40b() -> ModelPreset {
        ModelPreset {
            name: "Falcon-40b",
            latency: LatencyModel::falcon_40b(),
            score_noise: 0.8,
            novel_category_rate: 0.07,
            excessive_generation_rate: 0.22,
            continuation_rate: 0.02,
        }
    }
}

/// Out-of-taxonomy categories the simulator invents, keyed by the true
/// category's flavour (these "make sense in the context of the message").
fn novel_category_for(category: Category) -> &'static str {
    match category {
        Category::ThermalIssue => "Overheating Event",
        Category::MemoryIssue => "RAM Degradation",
        Category::SshConnection => "Remote Access Log",
        Category::IntrusionDetection => "Privilege Escalation",
        Category::UsbDevice => "Peripheral Change",
        Category::SlurmIssue => "Scheduler Malfunction",
        Category::HardwareIssue => "Component Failure",
        Category::Unimportant => "Routine Operational Message",
    }
}

/// One generation result with full cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerativeOutput {
    /// The raw generated text (post-truncation).
    pub text: String,
    /// Tokens in the prompt (prefill cost).
    pub prompt_tokens: usize,
    /// Tokens generated (decode cost).
    pub generated_tokens: usize,
    /// Modeled inference wall time on the paper's 4×A100 node.
    pub inference_seconds: f64,
    /// True when the `max_new_tokens` cap cut the generation short.
    pub truncated: bool,
}

/// A deterministic simulated generative LLM.
#[derive(Debug, Clone)]
pub struct GenerativeLlm {
    preset: ModelPreset,
    lm: CategoryLm,
    rng: ChaCha8Rng,
}

impl GenerativeLlm {
    /// Build a model: `corpus` plays the role of pretraining exposure,
    /// `seed` fixes all stochastic behaviour.
    pub fn new(preset: ModelPreset, corpus: &[(String, Category)], seed: u64) -> GenerativeLlm {
        GenerativeLlm {
            preset,
            lm: CategoryLm::train(corpus),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The preset in force.
    pub fn preset(&self) -> &ModelPreset {
        &self.preset
    }

    /// Standard-normal draw (Box–Muller; rand's distributions live in
    /// rand_distr, which we avoid pulling in for one function).
    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    }

    /// The model's internal category belief: corpus likelihood plus
    /// preset-scaled noise.
    fn choose_category(&mut self, message: &str) -> Category {
        let mut best = Category::Unimportant;
        let mut best_score = f64::NEG_INFINITY;
        let n_tokens = count_tokens(message).max(1) as f64;
        for &c in &Category::ALL {
            // Length-normalized likelihood keeps noise comparable across
            // message lengths.
            let ll = self.lm.log_likelihood(message, c) / n_tokens;
            let score = ll + self.normal() * self.preset.score_noise / n_tokens.sqrt();
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Run one classification generation against `prompt` (already built
    /// by [`crate::prompt::PromptBuilder`]) for `message`.
    ///
    /// `max_new_tokens = None` lets the failure modes run unbounded (the
    /// authors' initial configuration); `Some(cap)` reproduces their fix.
    pub fn generate(
        &mut self,
        prompt: &str,
        message: &str,
        max_new_tokens: Option<usize>,
    ) -> GenerativeOutput {
        let category = self.choose_category(message);

        let answer = if self.rng.gen_bool(self.preset.novel_category_rate) {
            novel_category_for(category).to_string()
        } else {
            category.label().to_string()
        };
        // Even well-behaved instruct models rarely emit the bare label;
        // about half the time they wrap it in a sentence.
        let mut text = if self.rng.gen_bool(0.5) {
            format!("The given syslog message would be classified as: {answer}")
        } else {
            answer
        };

        if self.rng.gen_bool(self.preset.excessive_generation_rate) {
            let strongest = textproc::tokenize(message)
                .into_iter()
                .max_by_key(|t| t.len())
                .unwrap_or_else(|| "message".to_string());
            text.push_str(&format!(
                ". The message \"{message}\" would fall under this category because \
                 \"{strongest}\" indicates {}. This can help prevent damage to the system.",
                category.description()
            ));
        }

        if self.rng.gen_bool(self.preset.continuation_rate) {
            // The infamous runaway: fabricate a new character, a new
            // syslog message, and instructions for the fiction to classify.
            let fake_cat = Category::ALL[self.rng.gen_range(0..Category::ALL.len())];
            let fake_seed = ["error", "cpu", "usb", "connection", "node"][self.rng.gen_range(0..5)];
            let fake_msg = self.lm.generate(fake_cat, fake_seed, 12, &mut self.rng);
            text.push_str(&format!(
                "\n\nYou are a system administrator named Alex reviewing cluster logs. \
                 Classify the following syslog message.\nMessage: \"{fake_msg}\"\nCategory: {}",
                fake_cat.label()
            ));
        }

        let mut truncated = false;
        if let Some(cap) = max_new_tokens {
            if count_tokens(&text) > cap {
                text = truncate_to_tokens(&text, cap);
                truncated = true;
            }
        }

        let prompt_tokens = count_tokens(prompt);
        let generated_tokens = count_tokens(&text).max(1);
        let inference_seconds = self
            .preset
            .latency
            .inference_seconds(prompt_tokens, generated_tokens);
        GenerativeOutput {
            text,
            prompt_tokens,
            generated_tokens,
            inference_seconds,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_response, ParseFailure};

    fn corpus() -> Vec<(String, Category)> {
        let mut c = Vec::new();
        for i in 0..10 {
            c.push((
                format!("cpu {i} temperature above threshold clock throttled sensor"),
                Category::ThermalIssue,
            ));
            c.push((
                format!("usb device {i} new number hub high speed"),
                Category::UsbDevice,
            ));
            c.push((
                format!("connection closed port {i} preauth user"),
                Category::SshConnection,
            ));
            c.push((
                format!("slurm_rpc_node_registration complete usec {i}"),
                Category::Unimportant,
            ));
        }
        c
    }

    #[test]
    fn mostly_correct_on_clear_messages() {
        let mut llm = GenerativeLlm::new(ModelPreset::falcon_40b(), &corpus(), 7);
        let mut correct = 0;
        let n = 40;
        for i in 0..n {
            let msg = format!("cpu {i} temperature above threshold throttled");
            let out = llm.generate("prompt", &msg, Some(64));
            if let Ok(c) = parse_response(&out.text) {
                if c == Category::ThermalIssue {
                    correct += 1;
                }
            }
        }
        assert!(correct > n / 2, "falcon-40b sim too weak: {correct}/{n}");
    }

    #[test]
    fn failure_modes_all_occur_unbounded() {
        let mut llm = GenerativeLlm::new(ModelPreset::falcon_7b(), &corpus(), 13);
        let mut novel = 0;
        let mut excessive = 0;
        let mut continuation = 0;
        for i in 0..300 {
            let out = llm.generate("prompt", &format!("usb device {i} new"), None);
            if matches!(
                parse_response(&out.text),
                Err(ParseFailure::NovelCategory(_))
            ) {
                novel += 1;
            }
            if out.text.contains("would fall under") {
                excessive += 1;
            }
            if out.text.contains("system administrator") {
                continuation += 1;
            }
        }
        assert!(novel > 0, "novel-category failure never occurred");
        assert!(excessive > 0, "excessive generation never occurred");
        assert!(continuation > 0, "prompt continuation never occurred");
    }

    #[test]
    fn max_new_tokens_caps_cost() {
        let corpus = corpus();
        let mut unbounded = GenerativeLlm::new(ModelPreset::falcon_7b(), &corpus, 21);
        let mut capped = GenerativeLlm::new(ModelPreset::falcon_7b(), &corpus, 21);
        let mut total_unbounded = 0.0;
        let mut total_capped = 0.0;
        let mut saw_truncation = false;
        for i in 0..200 {
            let msg = format!("cpu {i} temperature throttled");
            let a = unbounded.generate("prompt", &msg, None);
            let b = capped.generate("prompt", &msg, Some(16));
            assert!(b.generated_tokens <= 16);
            total_unbounded += a.inference_seconds;
            total_capped += b.inference_seconds;
            saw_truncation |= b.truncated;
        }
        assert!(saw_truncation, "cap never triggered");
        assert!(
            total_capped < total_unbounded,
            "token cap failed to reduce modeled cost"
        );
    }

    #[test]
    fn latency_matches_preset_model() {
        let mut llm = GenerativeLlm::new(ModelPreset::falcon_40b(), &corpus(), 3);
        let out = llm.generate(
            "a twelve token prompt for checking latency model here now ok",
            "cpu hot",
            Some(8),
        );
        let expected = ModelPreset::falcon_40b()
            .latency
            .inference_seconds(out.prompt_tokens, out.generated_tokens);
        assert!((out.inference_seconds - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = corpus();
        let mut a = GenerativeLlm::new(ModelPreset::falcon_7b(), &corpus, 5);
        let mut b = GenerativeLlm::new(ModelPreset::falcon_7b(), &corpus, 5);
        for i in 0..20 {
            let msg = format!("message {i}");
            assert_eq!(
                a.generate("p", &msg, Some(32)),
                b.generate("p", &msg, Some(32))
            );
        }
    }
}
