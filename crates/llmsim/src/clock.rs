//! Virtual time for inference-cost accounting.
//!
//! The paper's Table 3 numbers are wall-clock seconds on 4×A100; we model
//! that cost analytically and accumulate it on a virtual clock, so the
//! experiments report "GPU seconds" without needing the GPUs. (The
//! simulator's own CPU time is negligible and measured separately.)

use serde::{Deserialize, Serialize};

/// An accumulating virtual clock, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VirtualClock {
    elapsed: f64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance by `seconds` (negative advances are ignored).
    pub fn advance(&mut self, seconds: f64) {
        if seconds > 0.0 {
            self.elapsed += seconds;
        }
    }

    /// Total accumulated seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.elapsed = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = VirtualClock::new();
        c.advance(0.5);
        c.advance(1.25);
        assert!((c.elapsed_seconds() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn ignores_negative() {
        let mut c = VirtualClock::new();
        c.advance(-5.0);
        assert_eq!(c.elapsed_seconds(), 0.0);
    }

    #[test]
    fn reset() {
        let mut c = VirtualClock::new();
        c.advance(3.0);
        c.reset();
        assert_eq!(c.elapsed_seconds(), 0.0);
    }
}
