//! Zero-shot classification à la facebook/bart-large-mnli.
//!
//! §5.2: zero-shot "fixes the problems with generated classification, and
//! the need to format the classification in the form of a prompt" — the
//! model scores each candidate label by entailment and always returns an
//! in-taxonomy answer. The trade-off the paper notes: no way to inject
//! TF-IDF hints into the labels.
//!
//! The simulator scores entailment with the category language model's
//! normalized likelihood, softmaxed over labels.

use crate::latency::{LatencyModel, ZEROSHOT_LABELS};
use crate::lm::CategoryLm;
use crate::tokenizer::count_tokens;
use hetsyslog_core::Category;

/// A zero-shot entailment classifier.
#[derive(Debug, Clone)]
pub struct ZeroShotModel {
    lm: CategoryLm,
    latency: LatencyModel,
}

/// One zero-shot result.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroShotOutput {
    /// Labels with softmax scores, best first.
    pub scores: Vec<(Category, f64)>,
    /// Modeled inference seconds.
    pub inference_seconds: f64,
}

impl ZeroShotOutput {
    /// The winning category.
    pub fn top(&self) -> Category {
        self.scores[0].0
    }

    /// The winning score.
    pub fn confidence(&self) -> f64 {
        self.scores[0].1
    }
}

impl ZeroShotModel {
    /// Build with the BART-MNLI latency preset.
    pub fn new(corpus: &[(String, Category)]) -> ZeroShotModel {
        ZeroShotModel {
            lm: CategoryLm::train(corpus),
            latency: LatencyModel::bart_large_mnli(),
        }
    }

    /// Classify one message over all eight labels.
    pub fn classify(&self, message: &str) -> ZeroShotOutput {
        let n_tokens = count_tokens(message).max(1) as f64;
        let raw: Vec<(Category, f64)> = Category::ALL
            .iter()
            .map(|&c| (c, self.lm.log_likelihood(message, c) / n_tokens))
            .collect();
        // Softmax over length-normalized likelihoods.
        let max = raw
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = raw.iter().map(|(_, s)| ((s - max) * 4.0).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let mut scores: Vec<(Category, f64)> = raw
            .iter()
            .zip(&exps)
            .map(|(&(c, _), &e)| (c, e / sum))
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let premise_tokens = count_tokens(message) + 20; // hypothesis template
        ZeroShotOutput {
            scores,
            inference_seconds: self
                .latency
                .inference_seconds(premise_tokens, ZEROSHOT_LABELS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(String, Category)> {
        let mut c = Vec::new();
        for i in 0..8 {
            c.push((
                format!("cpu {i} temperature above threshold throttled"),
                Category::ThermalIssue,
            ));
            c.push((
                format!("usb device {i} new number hub"),
                Category::UsbDevice,
            ));
        }
        c
    }

    #[test]
    fn always_returns_valid_taxonomy_label() {
        let m = ZeroShotModel::new(&corpus());
        for msg in ["complete gibberish qqq", "", "cpu hot", "usb thing"] {
            let out = m.classify(msg);
            assert!(Category::ALL.contains(&out.top()));
            assert_eq!(out.scores.len(), 8);
        }
    }

    #[test]
    fn scores_are_a_distribution() {
        let m = ZeroShotModel::new(&corpus());
        let out = m.classify("cpu temperature throttled");
        let sum: f64 = out.scores.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(out.scores.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(out.confidence() > 1.0 / 8.0);
    }

    #[test]
    fn classifies_by_vocabulary() {
        let m = ZeroShotModel::new(&corpus());
        assert_eq!(
            m.classify("cpu temperature throttled").top(),
            Category::ThermalIssue
        );
        assert_eq!(
            m.classify("new usb device on hub").top(),
            Category::UsbDevice
        );
    }

    #[test]
    fn latency_is_bart_scale() {
        let m = ZeroShotModel::new(&corpus());
        let out = m.classify("Warning: Socket 2 CPU 23 throttling");
        assert!(
            (0.05..0.4).contains(&out.inference_seconds),
            "zero-shot latency {} out of BART envelope",
            out.inference_seconds
        );
    }
}
