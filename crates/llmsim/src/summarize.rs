//! The paper's Future Work (§7), implemented: low-frequency LLM tasks.
//!
//! "We are hopeful that … there still might be use-cases for these tools in
//! the context of a test-bed cluster. Some examples could be summarizing
//! the system status, explanation of groups of syslog messages within a
//! given node, generating recommended responses to admin emails … These
//! models excel in tasks that involve unstructured text."
//!
//! Unlike per-message classification — where Table 3 shows the cost is
//! fatal — these run a few times an hour, so even Falcon-40b-class latency
//! is acceptable. [`StatusSummarizer`] implements all three tasks over the
//! simulated model, with the same virtual-clock cost accounting.

use crate::generative::ModelPreset;
use crate::lm::CategoryLm;
use crate::tokenizer::count_tokens;
use hetsyslog_core::Category;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// One summarization/explanation result, with cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryReport {
    /// The generated prose.
    pub text: String,
    /// Prompt tokens (prefill cost).
    pub prompt_tokens: usize,
    /// Generated tokens (decode cost).
    pub generated_tokens: usize,
    /// Modeled inference seconds on the paper's 4×A100 node.
    pub inference_seconds: f64,
}

/// LLM-backed summarization of cluster state.
#[derive(Debug, Clone)]
pub struct StatusSummarizer {
    preset: ModelPreset,
    lm: CategoryLm,
    rng: ChaCha8Rng,
}

impl StatusSummarizer {
    /// Build over a trained corpus (the model's domain exposure).
    pub fn new(preset: ModelPreset, corpus: &[(String, Category)], seed: u64) -> StatusSummarizer {
        StatusSummarizer {
            preset,
            lm: CategoryLm::train(corpus),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn report(&self, prompt: &str, text: String) -> SummaryReport {
        let prompt_tokens = count_tokens(prompt);
        let generated_tokens = count_tokens(&text).max(1);
        SummaryReport {
            inference_seconds: self
                .preset
                .latency
                .inference_seconds(prompt_tokens, generated_tokens),
            prompt_tokens,
            generated_tokens,
            text,
        }
    }

    /// Task 1: summarize system status from per-category message counts
    /// over a window (the input a Grafana panel would hand the model).
    pub fn summarize_status(
        &mut self,
        window_minutes: u64,
        counts: &[(Category, u64)],
    ) -> SummaryReport {
        let total: u64 = counts.iter().map(|(_, n)| n).sum();
        let prompt = format!(
            "Summarize the cluster status for the last {window_minutes} minutes given these \
             per-category syslog counts: {counts:?}"
        );
        let mut text = format!(
            "Over the last {window_minutes} minutes the cluster produced {total} syslog messages. "
        );
        let mut actionable: Vec<&(Category, u64)> = counts
            .iter()
            .filter(|(c, n)| c.is_actionable() && *n > 0)
            .collect();
        actionable.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        if actionable.is_empty() {
            text.push_str("All traffic was routine noise; no operator action is indicated.");
        } else {
            let _ = write!(
                text,
                "The dominant actionable category is {} with {} messages — {}. ",
                actionable[0].0,
                actionable[0].1,
                actionable[0].0.suggested_action()
            );
            for (c, n) in actionable.iter().skip(1).take(2) {
                let _ = write!(text, "{c} contributed {n} messages. ");
            }
            let noise = counts
                .iter()
                .find(|(c, _)| *c == Category::Unimportant)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            if total > 0 {
                let _ = write!(
                    text,
                    "{:.0}% of the volume was unimportant noise.",
                    noise as f64 / total as f64 * 100.0
                );
            }
        }
        self.report(&prompt, text)
    }

    /// Task 2: explain a group of syslog messages from one node — the
    /// bucket-exemplar explanation a human used to write by hand.
    pub fn explain_group(
        &mut self,
        node: &str,
        category: Category,
        messages: &[&str],
    ) -> SummaryReport {
        let prompt = format!(
            "Explain this group of {} syslog messages from node {node}: {:?}",
            messages.len(),
            messages.iter().take(4).collect::<Vec<_>>()
        );
        // Ground the explanation in the group's strongest recurring token.
        let mut token_counts: std::collections::BTreeMap<String, usize> = Default::default();
        for m in messages {
            for t in textproc::tokenize(m) {
                if t.len() > 3 {
                    *token_counts.entry(t).or_default() += 1;
                }
            }
        }
        let signature = token_counts
            .iter()
            .max_by_key(|(t, n)| (**n, t.len()))
            .map(|(t, _)| t.clone())
            .unwrap_or_else(|| "event".to_string());
        let flavor = self.lm.generate(category, &signature, 7, &mut self.rng);
        let mut text = format!(
            "Node {node} emitted {} messages classified as {category}: {}. Recurring term \
             \"{signature}\" ties the group together",
            messages.len(),
            category.description()
        );
        if !flavor.is_empty() {
            let _ = write!(text, " (typical content: \"{flavor}…\")");
        }
        let _ = write!(text, ". Suggested action: {}.", category.suggested_action());
        self.report(&prompt, text)
    }

    /// Task 3: draft a reply to an admin email given current stats.
    pub fn draft_admin_reply(
        &mut self,
        question: &str,
        counts: &[(Category, u64)],
    ) -> SummaryReport {
        let prompt = format!("Draft a reply to this admin question: {question:?} given {counts:?}");
        let relevant = Category::ALL
            .iter()
            .find(|c| {
                question.to_ascii_lowercase().contains(
                    &c.label()
                        .to_ascii_lowercase()
                        .split(' ')
                        .next()
                        .unwrap_or("")
                        .to_string(),
                )
            })
            .copied();
        let mut text = String::from("Hi,\n\nThanks for reaching out. ");
        match relevant {
            Some(c) => {
                let n = counts
                    .iter()
                    .find(|(cc, _)| *cc == c)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                let _ = write!(
                    text,
                    "We logged {n} {c} messages in the current window. Recommended next step: {}.",
                    c.suggested_action()
                );
            }
            None => {
                let total: u64 = counts.iter().map(|(_, n)| n).sum();
                let _ = write!(
                    text,
                    "Overall the test-bed logged {total} messages in the current window with no \
                     category you mentioned standing out; happy to dig into a specific node."
                );
            }
        }
        text.push_str("\n\n— Tivan monitoring");
        self.report(&prompt, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(String, Category)> {
        let mut c = Vec::new();
        for i in 0..6 {
            c.push((
                format!("cpu {i} temperature above threshold clock throttled"),
                Category::ThermalIssue,
            ));
            c.push((
                format!("usb device {i} new number on hub"),
                Category::UsbDevice,
            ));
        }
        c
    }

    fn summarizer() -> StatusSummarizer {
        StatusSummarizer::new(ModelPreset::falcon_40b(), &corpus(), 7)
    }

    #[test]
    fn status_summary_names_dominant_category() {
        let mut s = summarizer();
        let r = s.summarize_status(
            60,
            &[
                (Category::ThermalIssue, 412),
                (Category::MemoryIssue, 17),
                (Category::Unimportant, 3000),
            ],
        );
        assert!(r.text.contains("Thermal Issue"));
        assert!(r.text.contains("412"));
        assert!(r.text.contains("rack cooling"));
        assert!(r.text.contains('%'));
        assert!(r.inference_seconds > 0.0);
    }

    #[test]
    fn quiet_cluster_summary() {
        let mut s = summarizer();
        let r = s.summarize_status(10, &[(Category::Unimportant, 900)]);
        assert!(r.text.contains("routine noise"));
    }

    #[test]
    fn group_explanation_grounds_in_messages() {
        let mut s = summarizer();
        let msgs = [
            "CPU 3 temperature above threshold clock throttled",
            "CPU 7 temperature above threshold clock throttled",
            "CPU 9 temperature above threshold clock throttled",
        ];
        let r = s.explain_group("cn0042", Category::ThermalIssue, &msgs);
        assert!(r.text.contains("cn0042"));
        assert!(r.text.contains("3 messages"));
        // The signature term must come from the messages themselves.
        assert!(
            r.text.contains("temperature")
                || r.text.contains("threshold")
                || r.text.contains("throttled"),
            "{}",
            r.text
        );
        assert!(r.text.contains("Suggested action"));
    }

    #[test]
    fn admin_reply_answers_the_category_asked_about() {
        let mut s = summarizer();
        let r = s.draft_admin_reply(
            "Are we seeing thermal problems on the new rack?",
            &[(Category::ThermalIssue, 88), (Category::Unimportant, 500)],
        );
        assert!(r.text.contains("88"));
        assert!(r.text.contains("Thermal Issue"));
        let r = s.draft_admin_reply("How is the cluster doing?", &[(Category::Unimportant, 5)]);
        assert!(r.text.contains("5 messages"));
    }

    #[test]
    fn low_frequency_cost_is_acceptable() {
        // The point of §7: a handful of summaries per hour is fine even at
        // Falcon-40b latency, unlike per-message classification.
        let mut s = summarizer();
        let r = s.summarize_status(60, &[(Category::ThermalIssue, 10)]);
        assert!(
            r.inference_seconds < 30.0,
            "one hourly summary must cost seconds, not minutes: {}",
            r.inference_seconds
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let msgs = ["usb device 4 new number on hub"];
        let mut a = StatusSummarizer::new(ModelPreset::falcon_40b(), &corpus(), 3);
        let mut b = StatusSummarizer::new(ModelPreset::falcon_40b(), &corpus(), 3);
        assert_eq!(
            a.explain_group("n1", Category::UsbDevice, &msgs),
            b.explain_group("n1", Category::UsbDevice, &msgs)
        );
    }
}
