//! A category-conditioned bigram language model.
//!
//! This is the simulated LLM's "knowledge": trained on the same corpus the
//! real models would see in their pretraining-adjacent world, it serves two
//! purposes —
//!
//! 1. *Classification*: per-category unigram statistics give a naive-Bayes
//!    style score for how well a message fits each category (degraded by a
//!    per-preset noise term to model small-model fallibility).
//! 2. *Generation*: bigram sampling fabricates plausible syslog-like
//!    text for the hallucinated-continuation failure mode.

use hetsyslog_core::Category;
use rand::Rng;
use textproc::hash::FxHashMap;
use textproc::tokenize;

/// Per-category unigram + bigram statistics.
#[derive(Debug, Clone, Default)]
pub struct CategoryLm {
    /// token → count, per category index.
    unigrams: Vec<FxHashMap<String, f64>>,
    /// total token count per category.
    totals: Vec<f64>,
    /// bigram successor table per category: token → (successor, count).
    bigrams: Vec<FxHashMap<String, Vec<(String, f64)>>>,
    vocab_size: usize,
}

impl CategoryLm {
    /// Train on a labeled corpus.
    pub fn train(corpus: &[(String, Category)]) -> CategoryLm {
        let n = Category::ALL.len();
        let mut unigrams: Vec<FxHashMap<String, f64>> = vec![FxHashMap::default(); n];
        let mut totals = vec![0.0f64; n];
        let mut bigrams: Vec<FxHashMap<String, Vec<(String, f64)>>> = vec![FxHashMap::default(); n];
        for (text, category) in corpus {
            let c = category.index();
            let tokens = tokenize(text);
            for window in tokens.windows(2) {
                let succ = bigrams[c].entry(window[0].clone()).or_default();
                match succ.iter_mut().find(|(t, _)| *t == window[1]) {
                    Some((_, count)) => *count += 1.0,
                    None => succ.push((window[1].clone(), 1.0)),
                }
            }
            for token in tokens {
                *unigrams[c].entry(token).or_insert(0.0) += 1.0;
                totals[c] += 1.0;
            }
        }
        let vocab_size = unigrams
            .iter()
            .flat_map(|u| u.keys())
            .collect::<std::collections::HashSet<_>>()
            .len()
            .max(1);
        CategoryLm {
            unigrams,
            totals,
            bigrams,
            vocab_size,
        }
    }

    /// Log-likelihood of `message` under category `c`'s unigram model
    /// (Laplace-smoothed).
    pub fn log_likelihood(&self, message: &str, c: Category) -> f64 {
        let idx = c.index();
        let total = self.totals[idx] + self.vocab_size as f64;
        let mut ll = 0.0;
        for token in tokenize(message) {
            let count = self.unigrams[idx].get(&token).copied().unwrap_or(0.0);
            ll += ((count + 1.0) / total).ln();
        }
        ll
    }

    /// Best-fit category by unigram likelihood with a class-prior term.
    pub fn classify(&self, message: &str) -> Category {
        let total_all: f64 = self.totals.iter().sum::<f64>().max(1.0);
        Category::ALL
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let prior_a = ((self.totals[a.index()] + 1.0) / total_all).ln();
                let prior_b = ((self.totals[b.index()] + 1.0) / total_all).ln();
                let sa = self.log_likelihood(message, a) + prior_a;
                let sb = self.log_likelihood(message, b) + prior_b;
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(Category::Unimportant)
    }

    /// Sample `max_tokens` of syslog-flavoured text for `category`,
    /// starting from `seed_token` when it exists in the table.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        category: Category,
        seed_token: &str,
        max_tokens: usize,
        rng: &mut R,
    ) -> String {
        let idx = category.index();
        let table = &self.bigrams[idx];
        if table.is_empty() || max_tokens == 0 {
            return String::new();
        }
        let mut current: String = if table.contains_key(seed_token) {
            seed_token.to_string()
        } else {
            // Deterministically pick a common starting token.
            let mut keys: Vec<&String> = table.keys().collect();
            keys.sort_unstable();
            keys[rng.gen_range(0..keys.len())].clone()
        };
        let mut out = vec![current.clone()];
        for _ in 1..max_tokens {
            let Some(successors) = table.get(&current) else {
                break;
            };
            let total: f64 = successors.iter().map(|(_, c)| c).sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut next = successors[0].0.clone();
            for (tok, count) in successors {
                if pick < *count {
                    next = tok.clone();
                    break;
                }
                pick -= count;
            }
            out.push(next.clone());
            current = next;
        }
        out.join(" ")
    }

    /// Distinct vocabulary size seen in training.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn corpus() -> Vec<(String, Category)> {
        let mut c = Vec::new();
        for i in 0..6 {
            c.push((
                format!("cpu {i} temperature above threshold clock throttled"),
                Category::ThermalIssue,
            ));
            c.push((
                format!("usb device {i} new high speed number on hub"),
                Category::UsbDevice,
            ));
            c.push((
                format!("connection closed by port {i} preauth"),
                Category::SshConnection,
            ));
        }
        c
    }

    #[test]
    fn classifies_by_vocabulary() {
        let lm = CategoryLm::train(&corpus());
        assert_eq!(
            lm.classify("cpu temperature throttled"),
            Category::ThermalIssue
        );
        assert_eq!(lm.classify("new usb device on hub"), Category::UsbDevice);
        assert_eq!(
            lm.classify("connection closed preauth"),
            Category::SshConnection
        );
    }

    #[test]
    fn likelihood_prefers_home_category() {
        let lm = CategoryLm::train(&corpus());
        let msg = "temperature above threshold";
        assert!(
            lm.log_likelihood(msg, Category::ThermalIssue)
                > lm.log_likelihood(msg, Category::UsbDevice)
        );
    }

    #[test]
    fn generation_uses_category_vocabulary() {
        let lm = CategoryLm::train(&corpus());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let text = lm.generate(Category::ThermalIssue, "temperature", 8, &mut rng);
        assert!(!text.is_empty());
        assert!(text.starts_with("temperature"));
        // Generated tokens come from the thermal vocabulary.
        for tok in text.split(' ') {
            assert!(
                corpus().iter().any(|(m, _)| m.contains(tok)),
                "token {tok} not from corpus"
            );
        }
    }

    #[test]
    fn generation_respects_token_cap() {
        let lm = CategoryLm::train(&corpus());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let text = lm.generate(Category::ThermalIssue, "cpu", 3, &mut rng);
        assert!(text.split(' ').count() <= 3);
        assert_eq!(lm.generate(Category::ThermalIssue, "cpu", 0, &mut rng), "");
    }

    #[test]
    fn empty_corpus_degrades_gracefully() {
        let lm = CategoryLm::train(&[]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(lm.generate(Category::ThermalIssue, "x", 5, &mut rng), "");
        // classify still returns a valid category.
        let c = lm.classify("anything");
        assert!(Category::ALL.contains(&c));
    }
}
