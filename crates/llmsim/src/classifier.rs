//! Adapters implementing [`TextClassifier`] for the simulated LLMs, with
//! virtual-clock cost accounting.

use crate::clock::VirtualClock;
use crate::generative::{GenerativeLlm, ModelPreset};
use crate::parse::{parse_response, ParseFailure};
use crate::prompt::PromptBuilder;
use crate::zeroshot::ZeroShotModel;
use hetsyslog_core::{Category, Explanation, Prediction, TextClassifier};
use parking_lot::Mutex;

/// Running failure-mode counters for a generative classifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureCounters {
    /// Responses whose category was out of taxonomy.
    pub novel_category: u64,
    /// Responses with no parsable label at all.
    pub no_label: u64,
    /// Responses cut short by the token cap.
    pub truncated: u64,
    /// Total classifications.
    pub total: u64,
}

/// Generative LLM as a [`TextClassifier`].
pub struct GenerativeLlmClassifier {
    inner: Mutex<GenerativeLlm>,
    prompt: PromptBuilder,
    max_new_tokens: Option<usize>,
    clock: Mutex<VirtualClock>,
    counters: Mutex<FailureCounters>,
    /// Category used when parsing fails (production would queue for a
    /// human; evaluation needs a decision).
    pub fallback: Category,
}

impl GenerativeLlmClassifier {
    /// Wrap a model with the paper's prompt recipe and token cap.
    pub fn new(
        preset: ModelPreset,
        corpus: &[(String, Category)],
        prompt: PromptBuilder,
        max_new_tokens: Option<usize>,
        seed: u64,
    ) -> GenerativeLlmClassifier {
        GenerativeLlmClassifier {
            inner: Mutex::new(GenerativeLlm::new(preset, corpus, seed)),
            prompt,
            max_new_tokens,
            clock: Mutex::new(VirtualClock::new()),
            counters: Mutex::new(FailureCounters::default()),
            fallback: Category::Unimportant,
        }
    }

    /// Accumulated virtual inference seconds.
    pub fn virtual_seconds(&self) -> f64 {
        self.clock.lock().elapsed_seconds()
    }

    /// Snapshot the failure counters.
    pub fn counters(&self) -> FailureCounters {
        *self.counters.lock()
    }

    /// Mean virtual seconds per classified message.
    pub fn mean_inference_seconds(&self) -> f64 {
        let c = self.counters();
        if c.total == 0 {
            0.0
        } else {
            self.virtual_seconds() / c.total as f64
        }
    }
}

impl TextClassifier for GenerativeLlmClassifier {
    fn name(&self) -> String {
        self.inner.lock().preset().name.to_string()
    }

    fn classify(&self, message: &str) -> Prediction {
        let prompt_text = self.prompt.build(message);
        let output = self
            .inner
            .lock()
            .generate(&prompt_text, message, self.max_new_tokens);
        self.clock.lock().advance(output.inference_seconds);
        let parsed = parse_response(&output.text);
        {
            let mut c = self.counters.lock();
            c.total += 1;
            if output.truncated {
                c.truncated += 1;
            }
            match &parsed {
                Err(ParseFailure::NovelCategory(_)) => c.novel_category += 1,
                Err(ParseFailure::NoLabel) => c.no_label += 1,
                Ok(_) => {}
            }
        }
        let category = parsed.unwrap_or(self.fallback);
        Prediction {
            category,
            confidence: None,
            explanation: Some(Explanation::new(Vec::new(), output.text)),
        }
    }

    fn classify_batch(&self, messages: &[&str]) -> Vec<Prediction> {
        // Generation mutates shared RNG state; keep batch sequential so
        // results stay deterministic (the real bottleneck is the GPU
        // anyway — the paper ran single-node inference).
        messages.iter().map(|m| self.classify(m)).collect()
    }
}

/// Zero-shot model as a [`TextClassifier`].
pub struct ZeroShotLlmClassifier {
    model: ZeroShotModel,
    clock: Mutex<VirtualClock>,
    total: Mutex<u64>,
}

impl ZeroShotLlmClassifier {
    /// Wrap a zero-shot model.
    pub fn new(corpus: &[(String, Category)]) -> ZeroShotLlmClassifier {
        ZeroShotLlmClassifier {
            model: ZeroShotModel::new(corpus),
            clock: Mutex::new(VirtualClock::new()),
            total: Mutex::new(0),
        }
    }

    /// Accumulated virtual inference seconds.
    pub fn virtual_seconds(&self) -> f64 {
        self.clock.lock().elapsed_seconds()
    }

    /// Mean virtual seconds per message.
    pub fn mean_inference_seconds(&self) -> f64 {
        let n = *self.total.lock();
        if n == 0 {
            0.0
        } else {
            self.virtual_seconds() / n as f64
        }
    }
}

impl TextClassifier for ZeroShotLlmClassifier {
    fn name(&self) -> String {
        "facebook/Bart-Large-MNLI".to_string()
    }

    fn classify(&self, message: &str) -> Prediction {
        let out = self.model.classify(message);
        self.clock.lock().advance(out.inference_seconds);
        *self.total.lock() += 1;
        Prediction {
            category: out.top(),
            confidence: Some(out.confidence()),
            explanation: Some(Explanation::new(
                Vec::new(),
                format!(
                    "zero-shot entailment ranked '{}' at {:.2}",
                    out.top().label(),
                    out.confidence()
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(String, Category)> {
        let mut c = Vec::new();
        for i in 0..10 {
            c.push((
                format!("cpu {i} temperature above threshold throttled sensor"),
                Category::ThermalIssue,
            ));
            c.push((
                format!("usb device {i} new number hub"),
                Category::UsbDevice,
            ));
        }
        c
    }

    #[test]
    fn generative_classifier_accounts_costs() {
        let corpus = corpus();
        let clf = GenerativeLlmClassifier::new(
            ModelPreset::falcon_7b(),
            &corpus,
            PromptBuilder::new(),
            Some(32),
            3,
        );
        for i in 0..20 {
            let p = clf.classify(&format!("cpu {i} temperature throttled"));
            assert!(Category::ALL.contains(&p.category));
            assert!(p.explanation.is_some());
        }
        let counters = clf.counters();
        assert_eq!(counters.total, 20);
        assert!(clf.virtual_seconds() > 0.0);
        // Falcon-7b averages ~0.6 virtual seconds per message.
        let mean = clf.mean_inference_seconds();
        assert!((0.3..1.2).contains(&mean), "mean inference {mean}");
    }

    #[test]
    fn zero_shot_classifier_is_fast_and_valid() {
        let corpus = corpus();
        let clf = ZeroShotLlmClassifier::new(&corpus);
        let p = clf.classify("usb device new on hub");
        assert_eq!(p.category, Category::UsbDevice);
        let mean = clf.mean_inference_seconds();
        assert!((0.05..0.4).contains(&mean), "zero-shot mean {mean}");
    }

    #[test]
    fn batch_is_deterministic_given_seed() {
        let corpus = corpus();
        let msgs = ["cpu hot", "usb new device", "cpu throttled again"];
        let a = GenerativeLlmClassifier::new(
            ModelPreset::falcon_40b(),
            &corpus,
            PromptBuilder::new(),
            Some(32),
            11,
        );
        let b = GenerativeLlmClassifier::new(
            ModelPreset::falcon_40b(),
            &corpus,
            PromptBuilder::new(),
            Some(32),
            11,
        );
        let pa: Vec<Category> = a.classify_batch(&msgs).iter().map(|p| p.category).collect();
        let pb: Vec<Category> = b.classify_batch(&msgs).iter().map(|p| p.category).collect();
        assert_eq!(pa, pb);
    }
}
