//! The §5.2 prompt recipe.
//!
//! "Ultimately the prompt that generated the most success in our testing
//! contained the following elements: An introduction of the problem. a list
//! of the potential categories. A list of the most commonly used words
//! generated via TF-IDF for each category. A specification of the output
//! format, and finally … an example syslog message with its corresponding
//! classification."

use crate::tokenizer::count_tokens;
use hetsyslog_core::Category;

/// Builds classification prompts in the paper's most-successful shape.
#[derive(Debug, Clone)]
pub struct PromptBuilder {
    /// Per-category TF-IDF top words (Table 1 output), in
    /// [`Category::ALL`] order. Empty lists are allowed.
    top_words: Vec<Vec<String>>,
    /// The one-shot example `(message, category)`.
    example: (String, Category),
}

impl Default for PromptBuilder {
    fn default() -> Self {
        PromptBuilder {
            top_words: vec![Vec::new(); Category::ALL.len()],
            example: (
                "CPU 4 Temperature Above Non-Recoverable - Asserted".to_string(),
                Category::ThermalIssue,
            ),
        }
    }
}

impl PromptBuilder {
    /// A builder with no TF-IDF hints.
    pub fn new() -> PromptBuilder {
        PromptBuilder::default()
    }

    /// Attach per-category TF-IDF top words (Table 1 order). Lists beyond
    /// the category count are ignored.
    pub fn with_top_words(mut self, top_words: Vec<Vec<String>>) -> PromptBuilder {
        for (slot, words) in self.top_words.iter_mut().zip(top_words) {
            *slot = words;
        }
        self
    }

    /// Set the one-shot example.
    pub fn with_example(mut self, message: impl Into<String>, category: Category) -> PromptBuilder {
        self.example = (message.into(), category);
        self
    }

    /// Render the full prompt for `message`.
    pub fn build(&self, message: &str) -> String {
        let mut p = String::with_capacity(1200);
        p.push_str(
            "You are monitoring a heterogeneous test-bed cluster. Classify the given \
             syslog message into exactly one of the following categories:\n",
        );
        for &c in &Category::ALL {
            p.push_str("- ");
            p.push_str(c.label());
            p.push_str(": ");
            p.push_str(c.description());
            let words = &self.top_words[c.index()];
            if !words.is_empty() {
                p.push_str(" (commonly used words: ");
                p.push_str(&words.join(", "));
                p.push(')');
            }
            p.push('\n');
        }
        p.push_str("\nRespond with only the category name, nothing else.\n\nExample:\nMessage: \"");
        p.push_str(&self.example.0);
        p.push_str("\"\nCategory: ");
        p.push_str(self.example.1.label());
        p.push_str("\n\nMessage: \"");
        p.push_str(message);
        p.push_str("\"\nCategory:");
        p
    }

    /// Token count of the rendered prompt (latency accounting).
    pub fn token_count(&self, message: &str) -> usize {
        count_tokens(&self.build(message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_contains_all_recipe_elements() {
        let builder = PromptBuilder::new().with_top_words(vec![
            vec!["timestamp".into(), "sync".into()],
            vec!["root".into(), "session".into()],
            vec![],
            vec![],
            vec![],
            vec!["temperature".into(), "throttled".into()],
            vec![],
            vec![],
        ]);
        let p = builder.build("Warning: Socket 2 - CPU 23 throttling");
        // Introduction
        assert!(p.contains("Classify the given syslog message"));
        // Category list: every label present.
        for &c in &Category::ALL {
            assert!(p.contains(c.label()), "missing {}", c.label());
        }
        // TF-IDF hints where provided.
        assert!(p.contains("commonly used words: temperature, throttled"));
        // Output-format instruction.
        assert!(p.contains("only the category name"));
        // One-shot example.
        assert!(p.contains("Example:"));
        assert!(p.contains("Thermal Issue"));
        // The message itself, last.
        assert!(p.trim_end().ends_with("Category:"));
        assert!(p.contains("CPU 23 throttling"));
    }

    #[test]
    fn token_count_close_to_calibration_shape() {
        let words = |ws: &[&str]| ws.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let builder = PromptBuilder::new().with_top_words(vec![
            words(&["timestamp", "sync", "clock", "system", "event"]),
            words(&["root", "session", "user", "started", "boot"]),
            words(&["size", "real_memory", "low", "cn", "node"]),
            words(&["closed", "preauth", "connection", "port", "user"]),
            words(&["version", "update", "slurm", "please", "node"]),
            words(&["processor", "throttled", "sensor", "cpu", "temperature"]),
            words(&["usb", "device", "hub", "number", "new"]),
            words(&[
                "error",
                "lpi_hbm_nn",
                "job_argument",
                "slurm_rpc_node_registration",
            ]),
        ]);
        let tokens = builder.token_count("Warning: Socket 2 - CPU 23 throttling at 95C");
        // The latency presets calibrate against ~420 prompt tokens.
        assert!(
            (300..=550).contains(&tokens),
            "prompt token count {tokens} out of expected envelope"
        );
    }

    #[test]
    fn custom_example() {
        let b = PromptBuilder::new().with_example("usb 1-1 attached", Category::UsbDevice);
        let p = b.build("x");
        assert!(p.contains("usb 1-1 attached"));
        assert!(p.contains("USB-Device"));
    }
}
