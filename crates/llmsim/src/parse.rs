//! Parsing generated classifications back into the taxonomy — the
//! automation pain point §5.2 complains about.

use hetsyslog_core::Category;

/// Why a generated response could not be mapped to the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFailure {
    /// The model answered with a category that is not in the taxonomy
    /// (the "generated classification" failure).
    NovelCategory(String),
    /// The response contained no recognizable category at all.
    NoLabel,
}

impl std::fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFailure::NovelCategory(s) => {
                write!(f, "model invented category {s:?}")
            }
            ParseFailure::NoLabel => write!(f, "no category found in response"),
        }
    }
}

impl std::error::Error for ParseFailure {}

/// Extract the category from a generated response.
///
/// Strategy mirrors what the authors had to build: take the first line as
/// the answer, parse it leniently; if that fails, scan the whole response
/// for any known label (models bury the answer in prose); otherwise report
/// the first line as a novel category.
pub fn parse_response(text: &str) -> Result<Category, ParseFailure> {
    let first_line = text.lines().next().unwrap_or("").trim();
    // The answer may carry a trailing justification on the same line
    // ("Thermal Issue. The message …"); split at sentence punctuation.
    let head = first_line
        .split(['.', ',', ';', ':'])
        .next()
        .unwrap_or("")
        .trim();
    if let Some(c) = Category::parse_label(head) {
        return Ok(c);
    }
    // Models love wrapping the answer in quotes mid-prose ("…the category
    // of \"thermal\"") — try every quoted phrase. The message itself is
    // also quoted in such answers, but full messages never parse as a
    // bare label, so this stays precise.
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        if let Some(c) = Category::parse_label(&tail[..close]) {
            return Ok(c);
        }
        rest = &tail[close + 1..];
    }
    // Scan for any label appearing anywhere (earliest wins).
    let lower = text.to_ascii_lowercase();
    let mut earliest: Option<(usize, Category)> = None;
    for &c in &Category::ALL {
        let needle = c.label().to_ascii_lowercase();
        if let Some(pos) = lower.find(&needle) {
            if earliest.map(|(p, _)| pos < p).unwrap_or(true) {
                earliest = Some((pos, c));
            }
        }
    }
    if let Some((_, c)) = earliest {
        return Ok(c);
    }
    if head.is_empty() {
        Err(ParseFailure::NoLabel)
    } else {
        Err(ParseFailure::NovelCategory(head.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_answers() {
        assert_eq!(parse_response("Thermal Issue"), Ok(Category::ThermalIssue));
        assert_eq!(parse_response("USB-Device"), Ok(Category::UsbDevice));
        assert_eq!(
            parse_response("  unimportant \n"),
            Ok(Category::Unimportant)
        );
    }

    #[test]
    fn answer_with_trailing_justification() {
        let r = parse_response(
            "Thermal Issue. The message indicates the CPU is being throttled to prevent overheating.",
        );
        assert_eq!(r, Ok(Category::ThermalIssue));
    }

    #[test]
    fn answer_buried_in_prose() {
        let r = parse_response(
            "The message would fall under the category of \"Memory Issue\" because allocation failed.",
        );
        assert_eq!(r, Ok(Category::MemoryIssue));
    }

    #[test]
    fn novel_category_detected() {
        let r = parse_response("Overheating Event");
        assert_eq!(
            r,
            Err(ParseFailure::NovelCategory("Overheating Event".to_string()))
        );
    }

    #[test]
    fn empty_response() {
        assert_eq!(parse_response(""), Err(ParseFailure::NoLabel));
        assert_eq!(parse_response("\n\n"), Err(ParseFailure::NoLabel));
    }

    #[test]
    fn earliest_label_wins_in_scan() {
        let r = parse_response(
            "Category of Record: Hardware Issue — though some would argue Thermal Issue applies.",
        );
        assert_eq!(r, Ok(Category::HardwareIssue));
    }
}
