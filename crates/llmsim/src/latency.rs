//! Inference latency models calibrated to the paper's Table 3.
//!
//! | model                    | measured s/msg | messages/hour |
//! |--------------------------|---------------:|--------------:|
//! | Falcon-7b                |          0.639 |         5 633 |
//! | Falcon-40b               |          2.184 |         1 648 |
//! | facebook/bart-large-mnli |        0.13359 |        26 948 |
//!
//! The model is the standard two-phase cost: a prefill phase processing the
//! prompt at `prefill_tokens_per_second`, then autoregressive decode at
//! `seconds_per_generated_token`, plus a constant launch overhead. The
//! presets are solved so that the paper's prompt shape (≈420 prompt tokens
//! after adding TF-IDF word lists, ≈16 generated tokens) lands on the
//! measured per-message seconds.

use serde::{Deserialize, Serialize};

/// A two-phase (prefill + decode) latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Constant per-request overhead (tokenization, launch, sampling).
    pub overhead_seconds: f64,
    /// Prompt-processing throughput.
    pub prefill_tokens_per_second: f64,
    /// Decode cost per generated token.
    pub seconds_per_generated_token: f64,
}

impl LatencyModel {
    /// Falcon-7b on 4×A100 (Table 3: 0.639 s per message).
    pub fn falcon_7b() -> LatencyModel {
        LatencyModel {
            overhead_seconds: 0.035,
            prefill_tokens_per_second: 3_500.0,
            seconds_per_generated_token: 0.030,
        }
    }

    /// Falcon-40b on 4×A100 (Table 3: 2.184 s per message).
    pub fn falcon_40b() -> LatencyModel {
        LatencyModel {
            overhead_seconds: 0.070,
            prefill_tokens_per_second: 1_000.0,
            seconds_per_generated_token: 0.106,
        }
    }

    /// facebook/bart-large-mnli zero-shot (Table 3: 0.13359 s per message).
    /// Zero-shot entailment runs one forward pass per candidate label; the
    /// decode term models the per-label passes instead of token decoding.
    pub fn bart_large_mnli() -> LatencyModel {
        LatencyModel {
            overhead_seconds: 0.012,
            prefill_tokens_per_second: 6_000.0,
            seconds_per_generated_token: 0.0145, // per label pass
        }
    }

    /// Seconds to process `prompt_tokens` and produce `generated_tokens`
    /// (or, for zero-shot, score `generated_tokens` labels).
    pub fn inference_seconds(&self, prompt_tokens: usize, generated_tokens: usize) -> f64 {
        self.overhead_seconds
            + prompt_tokens as f64 / self.prefill_tokens_per_second
            + generated_tokens as f64 * self.seconds_per_generated_token
    }

    /// Messages classifiable per hour at a fixed per-message shape.
    pub fn messages_per_hour(&self, prompt_tokens: usize, generated_tokens: usize) -> f64 {
        3600.0 / self.inference_seconds(prompt_tokens, generated_tokens)
    }

    /// Amortized per-message seconds when `batch` requests are served
    /// together — the obvious engineering answer to the paper's cost
    /// problem, modeled with an Amdahl-style speedup: batching parallelizes
    /// the per-request work but a serial fraction (attention over the
    /// growing KV cache, scheduling, memory bandwidth) caps the gain.
    ///
    /// With the default serial fraction of 0.08 the speedup saturates near
    /// 12.5× — generous relative to measured LLM serving systems, which
    /// makes the experiment's conclusion (batching still doesn't reach
    /// syslog volumes) conservative.
    pub fn batched_seconds_per_message(
        &self,
        batch: usize,
        prompt_tokens: usize,
        generated_tokens: usize,
    ) -> f64 {
        const SERIAL_FRACTION: f64 = 0.08;
        let batch = batch.max(1) as f64;
        let single = self.inference_seconds(prompt_tokens, generated_tokens);
        let speedup = batch / (1.0 + (batch - 1.0) * SERIAL_FRACTION);
        single / speedup
    }
}

/// The paper's prompt shape used for calibration assertions.
pub const PAPER_PROMPT_TOKENS: usize = 420;
/// Generated tokens in a well-behaved classification answer.
pub const PAPER_GENERATED_TOKENS: usize = 16;
/// Tokens in a BART-MNLI premise (message + template) per label pass.
pub const ZEROSHOT_PROMPT_TOKENS: usize = 60;
/// Candidate labels (the eight categories).
pub const ZEROSHOT_LABELS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falcon_7b_matches_table3() {
        let t = LatencyModel::falcon_7b()
            .inference_seconds(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        assert!((t - 0.639).abs() < 0.02, "falcon-7b calibrated at {t}");
    }

    #[test]
    fn falcon_40b_matches_table3() {
        let t = LatencyModel::falcon_40b()
            .inference_seconds(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        assert!((t - 2.184).abs() < 0.05, "falcon-40b calibrated at {t}");
    }

    #[test]
    fn bart_matches_table3() {
        let t = LatencyModel::bart_large_mnli()
            .inference_seconds(ZEROSHOT_PROMPT_TOKENS, ZEROSHOT_LABELS);
        assert!((t - 0.13359).abs() < 0.01, "bart calibrated at {t}");
    }

    #[test]
    fn messages_per_hour_shapes() {
        let f7 = LatencyModel::falcon_7b()
            .messages_per_hour(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        let f40 = LatencyModel::falcon_40b()
            .messages_per_hour(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        let bart = LatencyModel::bart_large_mnli()
            .messages_per_hour(ZEROSHOT_PROMPT_TOKENS, ZEROSHOT_LABELS);
        // Paper: 5633 / 1648 / 26948 — check ordering and rough magnitude.
        assert!(bart > f7 && f7 > f40);
        assert!((f7 - 5633.0).abs() / 5633.0 < 0.05, "f7 mph {f7}");
        assert!((f40 - 1648.0).abs() / 1648.0 < 0.05, "f40 mph {f40}");
        assert!((bart - 26_948.0).abs() / 26_948.0 < 0.10, "bart mph {bart}");
    }

    #[test]
    fn batching_helps_but_saturates() {
        let m = LatencyModel::falcon_40b();
        let single = m.batched_seconds_per_message(1, PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        let b8 = m.batched_seconds_per_message(8, PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        let b64 = m.batched_seconds_per_message(64, PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        let b1024 =
            m.batched_seconds_per_message(1024, PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS);
        assert_eq!(
            single,
            m.inference_seconds(PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS)
        );
        assert!(b8 < single && b64 < b8 && b1024 < b64);
        // Saturation: the speedup never exceeds 1/serial_fraction.
        assert!(single / b1024 < 12.5);
        // Even saturated batching leaves Falcon-40b far below the >1M
        // msgs/hour stream (the experiment's conclusion is robust).
        assert!(3600.0 / b1024 < 50_000.0);
    }

    #[test]
    fn excessive_generation_costs_more() {
        let m = LatencyModel::falcon_40b();
        let normal = m.inference_seconds(PAPER_PROMPT_TOKENS, 16);
        let runaway = m.inference_seconds(PAPER_PROMPT_TOKENS, 256);
        assert!(runaway > normal * 5.0, "runaway generation must dominate");
    }
}
