//! Model-quality telemetry: prediction-share counters and population-
//! stability drift scoring for the live classify stage.
//!
//! The paper's premise is that a model trained on one site's syslog
//! vocabulary degrades silently when the stream shifts (new firmware, new
//! vendors, §6 "model maintenance"). [`ModelQuality`] instruments that
//! failure mode at serving time, with no labels required:
//!
//! - `hetsyslog_model_predictions_total{category=…}` — one counter per
//!   taxonomy category, counting predictions as they are made. Share
//!   drift across categories is the first observable symptom of input
//!   drift.
//! - `hetsyslog_model_drift_psi_milli` — the Population Stability Index
//!   between a **frozen baseline** (the first `baseline_target`
//!   predictions after startup, assumed healthy) and a **rolling window**
//!   of the most recent predictions, exported in milli-units on an
//!   integer gauge. The conventional reading: PSI < 0.1 stable,
//!   0.1–0.25 moderate shift, > 0.25 action required — i.e. alert at
//!   `psi_milli > 250`.
//!
//! The accounting is deliberately order-only: feeding the same category
//! sequence through the scalar or batch ingest paths produces identical
//! counter values and an identical final PSI, so the service's
//! scalar/batch parity guarantees extend to the quality layer.

use crate::taxonomy::Category;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::Arc;

/// Predictions absorbed into the frozen baseline before scoring starts.
pub const DEFAULT_BASELINE_TARGET: u64 = 512;

/// Rolling-window length compared against the baseline.
pub const DEFAULT_WINDOW_LEN: usize = 512;

const N_CATEGORIES: usize = 8;

/// Registry-backed (or detached) instruments for the quality layer.
struct QualityInstruments {
    per_category: [Arc<obs::Counter>; N_CATEGORIES],
    psi_milli: Arc<obs::Gauge>,
}

impl QualityInstruments {
    fn detached() -> QualityInstruments {
        QualityInstruments {
            per_category: std::array::from_fn(|_| Arc::new(obs::Counter::new())),
            psi_milli: Arc::new(obs::Gauge::new()),
        }
    }

    fn registered(registry: &obs::Registry) -> QualityInstruments {
        QualityInstruments {
            per_category: std::array::from_fn(|i| {
                let category = Category::from_index(i).expect("category index");
                registry.counter(
                    "hetsyslog_model_predictions_total",
                    "Model predictions by taxonomy category",
                    &[("category", category.label())],
                )
            }),
            psi_milli: registry.gauge(
                "hetsyslog_model_drift_psi_milli",
                "Population Stability Index of recent prediction shares vs the \
                 frozen startup baseline, in thousandths (250 = PSI 0.25)",
                &[],
            ),
        }
    }

    /// Carry accumulated values onto `self` from `old`, guarding against
    /// the same-instrument case (re-attachment to the same registry).
    fn carry_over(&self, old: &QualityInstruments) {
        for (new, prev) in self.per_category.iter().zip(&old.per_category) {
            if !Arc::ptr_eq(new, prev) {
                new.add(prev.get());
            }
        }
        if !Arc::ptr_eq(&self.psi_milli, &old.psi_milli) {
            self.psi_milli.set(old.psi_milli.get());
        }
    }
}

/// Baseline-vs-window category share accounting.
struct DriftState {
    baseline: [u64; N_CATEGORIES],
    baseline_total: u64,
    frozen: bool,
    window: VecDeque<u8>,
    window_counts: [u64; N_CATEGORIES],
}

/// Serving-time model-quality instruments; see the module docs.
pub struct ModelQuality {
    instruments: RwLock<QualityInstruments>,
    drift: Mutex<DriftState>,
    baseline_target: u64,
    window_len: usize,
}

impl ModelQuality {
    /// Default sizing: 512-prediction baseline, 512-prediction window.
    pub fn new() -> ModelQuality {
        ModelQuality::with_config(DEFAULT_BASELINE_TARGET, DEFAULT_WINDOW_LEN)
    }

    /// Explicit baseline / window sizing (both clamped to at least 1).
    pub fn with_config(baseline_target: u64, window_len: usize) -> ModelQuality {
        ModelQuality {
            instruments: RwLock::new(QualityInstruments::detached()),
            drift: Mutex::new(DriftState {
                baseline: [0; N_CATEGORIES],
                baseline_total: 0,
                frozen: false,
                window: VecDeque::with_capacity(window_len.max(1)),
                window_counts: [0; N_CATEGORIES],
            }),
            baseline_target: baseline_target.max(1),
            window_len: window_len.max(1),
        }
    }

    /// Record a run of predictions in input order: bump the per-category
    /// counters, feed the drift state, and refresh the PSI gauge once at
    /// the end. Calling this per message or once per batch with the same
    /// category sequence yields identical final state.
    pub fn record(&self, categories: &[Category]) {
        if categories.is_empty() {
            return;
        }
        let instruments = self.instruments.read();
        let mut drift = self.drift.lock();
        for &category in categories {
            let c = category.index();
            instruments.per_category[c].inc();
            if !drift.frozen {
                drift.baseline[c] += 1;
                drift.baseline_total += 1;
                if drift.baseline_total >= self.baseline_target {
                    drift.frozen = true;
                }
            } else {
                if drift.window.len() == self.window_len {
                    let evicted = drift.window.pop_front().expect("non-empty window");
                    drift.window_counts[evicted as usize] -= 1;
                }
                drift.window.push_back(c as u8);
                drift.window_counts[c] += 1;
            }
        }
        if drift.frozen && !drift.window.is_empty() {
            let psi = psi_score(
                &drift.baseline,
                drift.baseline_total,
                &drift.window_counts,
                drift.window.len() as u64,
            );
            instruments.psi_milli.set((psi * 1000.0).round() as i64);
        }
    }

    /// The current PSI (`None` until the baseline froze and at least one
    /// windowed prediction arrived).
    pub fn psi(&self) -> Option<f64> {
        let drift = self.drift.lock();
        if drift.frozen && !drift.window.is_empty() {
            Some(psi_score(
                &drift.baseline,
                drift.baseline_total,
                &drift.window_counts,
                drift.window.len() as u64,
            ))
        } else {
            None
        }
    }

    /// Whether the baseline has frozen (scoring is active).
    pub fn baseline_frozen(&self) -> bool {
        self.drift.lock().frozen
    }

    /// Move the instruments onto a shared registry, carrying accumulated
    /// values over exactly. Idempotent per registry.
    pub fn attach_telemetry(&self, registry: &obs::Registry) {
        let mut instruments = self.instruments.write();
        let registered = QualityInstruments::registered(registry);
        registered.carry_over(&instruments);
        *instruments = registered;
    }
}

impl Default for ModelQuality {
    fn default() -> ModelQuality {
        ModelQuality::new()
    }
}

/// Smoothed Population Stability Index over the 8 category shares:
/// `Σ (q_i − p_i) · ln(q_i / p_i)` with add-half smoothing
/// (`p_i = (b_i + ½) / (B + 4)`, likewise for `q`), so empty categories
/// on either side never produce infinities.
fn psi_score(
    baseline: &[u64; N_CATEGORIES],
    baseline_total: u64,
    window: &[u64; N_CATEGORIES],
    window_total: u64,
) -> f64 {
    let b_denom = baseline_total as f64 + N_CATEGORIES as f64 * 0.5;
    let w_denom = window_total as f64 + N_CATEGORIES as f64 * 0.5;
    let mut psi = 0.0;
    for c in 0..N_CATEGORIES {
        let p = (baseline[c] as f64 + 0.5) / b_denom;
        let q = (window[c] as f64 + 0.5) / w_denom;
        psi += (q - p) * (q / p).ln();
    }
    psi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(i: usize) -> Category {
        Category::from_index(i).unwrap()
    }

    #[test]
    fn identical_distributions_score_near_zero() {
        let q = ModelQuality::with_config(100, 100);
        let seq: Vec<Category> = (0..100).map(|i| cat(i % 4)).collect();
        q.record(&seq);
        assert!(q.baseline_frozen());
        assert!(q.psi().is_none(), "no windowed predictions yet");
        q.record(&seq);
        let psi = q.psi().unwrap();
        assert!(psi.abs() < 0.01, "identical shares should score ~0: {psi}");
    }

    #[test]
    fn shifted_distribution_scores_high() {
        let q = ModelQuality::with_config(100, 100);
        let baseline: Vec<Category> = (0..100).map(|i| cat(i % 4)).collect();
        q.record(&baseline);
        // Everything collapses onto one previously-rare category.
        let shifted: Vec<Category> = (0..100).map(|_| cat(6)).collect();
        q.record(&shifted);
        let psi = q.psi().unwrap();
        assert!(psi > 0.25, "full collapse must exceed the 0.25 bar: {psi}");
    }

    #[test]
    fn drift_resolves_when_stream_returns_to_baseline() {
        let q = ModelQuality::with_config(100, 50);
        let baseline: Vec<Category> = (0..100).map(|i| cat(i % 4)).collect();
        q.record(&baseline);
        q.record(&(0..50).map(|_| cat(6)).collect::<Vec<_>>());
        assert!(q.psi().unwrap() > 0.25);
        // The rolling window forgets the excursion.
        q.record(&(0..50).map(|i| cat(i % 4)).collect::<Vec<_>>());
        assert!(q.psi().unwrap() < 0.05);
    }

    #[test]
    fn scalar_and_batch_recording_agree() {
        let seq: Vec<Category> = (0..150).map(|i| cat((i * 7) % 8)).collect();
        let a = ModelQuality::with_config(60, 40);
        let b = ModelQuality::with_config(60, 40);
        for &c in &seq {
            a.record(&[c]);
        }
        b.record(&seq[..100]);
        b.record(&seq[100..]);
        assert_eq!(a.psi(), b.psi());
    }

    #[test]
    fn attach_telemetry_carries_counts_and_sets_gauge() {
        let q = ModelQuality::with_config(4, 4);
        q.record(&[cat(0), cat(0), cat(1), cat(1)]);
        q.record(&[cat(2), cat(2)]);
        let registry = obs::Registry::new();
        q.attach_telemetry(&registry);
        assert_eq!(
            registry.counter_value(
                "hetsyslog_model_predictions_total",
                &[("category", cat(0).label())]
            ),
            Some(2)
        );
        // Gauge value carried over, and future records update the
        // registry-backed gauge in place.
        let carried = registry
            .gauge_value("hetsyslog_model_drift_psi_milli", &[])
            .unwrap();
        q.record(&[cat(3)]);
        let after = registry
            .gauge_value("hetsyslog_model_drift_psi_milli", &[])
            .unwrap();
        assert!(after != carried || after > 0);
        // Re-attaching the same registry never double-counts.
        q.attach_telemetry(&registry);
        assert_eq!(
            registry.counter_value(
                "hetsyslog_model_predictions_total",
                &[("category", cat(0).label())]
            ),
            Some(2)
        );
    }
}
