//! Per-decision explanations.
//!
//! A recurring theme of the paper is explainability: TF-IDF top tokens give
//! humans a window into *why* a category was chosen (§4.3.1), and the LLMs'
//! prose justifications are called out as their one genuinely attractive
//! property (§5.2). Every classifier adapter in this crate can attach an
//! [`Explanation`] to its prediction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a message received its category.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Explanation {
    /// Tokens that contributed most to the decision, with weights,
    /// strongest first.
    pub top_tokens: Vec<(String, f64)>,
    /// Free-text rationale (LLM-style prose, or a template for the
    /// traditional models).
    pub rationale: String,
}

impl Explanation {
    /// Build from ranked tokens plus a rationale.
    pub fn new(top_tokens: Vec<(String, f64)>, rationale: impl Into<String>) -> Explanation {
        Explanation {
            top_tokens,
            rationale: rationale.into(),
        }
    }

    /// The single strongest token, if any.
    pub fn strongest_token(&self) -> Option<&str> {
        self.top_tokens.first().map(|(t, _)| t.as_str())
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.top_tokens.is_empty() {
            write!(f, "[")?;
            for (i, (t, w)) in self.top_tokens.iter().take(5).enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}:{w:.3}")?;
            }
            write!(f, "] ")?;
        }
        f.write_str(&self.rationale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strongest_token_is_first() {
        let e = Explanation::new(
            vec![("throttle".into(), 0.9), ("cpu".into(), 0.4)],
            "thermal vocabulary dominates",
        );
        assert_eq!(e.strongest_token(), Some("throttle"));
    }

    #[test]
    fn display_includes_tokens_and_text() {
        let e = Explanation::new(vec![("usb".into(), 1.0)], "usb event");
        let s = e.to_string();
        assert!(s.contains("usb:1.000"));
        assert!(s.ends_with("usb event"));
    }

    #[test]
    fn empty_explanation() {
        let e = Explanation::default();
        assert_eq!(e.strongest_token(), None);
        assert_eq!(e.to_string(), "");
    }
}
