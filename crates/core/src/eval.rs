//! The evaluation harness behind the paper's Figure 2 and Figure 3:
//! stratified train/test split, per-model wall-clock timing, weighted-F1
//! scoring and confusion matrices.

use crate::features::{FeatureConfig, FeaturePipeline};
use crate::taxonomy::Category;
use hetsyslog_ml::{BatchClassifier, ClassificationReport, Classifier, ConfusionMatrix, Dataset};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Fraction of each class held out for testing.
    pub test_ratio: f64,
    /// Split / model seed.
    pub seed: u64,
    /// Preprocessing configuration.
    pub features: FeatureConfig,
    /// Drop the Unimportant class entirely (the §5.1 ablation).
    pub drop_unimportant: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            test_ratio: 0.25,
            seed: 42,
            features: FeatureConfig::default(),
            drop_unimportant: false,
        }
    }
}

/// One model's evaluation result.
pub struct ModelEvaluation {
    /// The Figure 3 row.
    pub report: ClassificationReport,
    /// The Figure 2 matrix.
    pub confusion: ConfusionMatrix,
}

/// A prepared train/test split with fitted features, reusable across
/// models so every classifier sees identical data.
pub struct PreparedSplit {
    /// Training set.
    pub train: Dataset,
    /// Held-out test set.
    pub test: Dataset,
    /// Raw training messages, parallel to `train`.
    pub train_texts: Vec<String>,
    /// Raw test messages, parallel to `test` (robustness studies re-derive
    /// features from mutated copies of these).
    pub test_texts: Vec<String>,
    /// The fitted preprocessing pipeline.
    pub pipeline: FeaturePipeline,
    /// Seconds spent fitting + vectorizing (shared preprocessing cost).
    pub preprocess_seconds: f64,
}

impl PreparedSplit {
    /// Structural fingerprint of the split: sizes, per-class counts, and
    /// the vocabulary digest. Fully deterministic for a given corpus and
    /// config — no wall-clock fields — so conformance goldens pin every
    /// field exactly.
    pub fn signature(&self) -> serde_json::Value {
        serde_json::json!({
            "n_train": self.train.len(),
            "n_test": self.test.len(),
            "n_features": self.pipeline.n_features(),
            "train_class_counts": self.train.class_counts(),
            "test_class_counts": self.test.class_counts(),
            "vocab_signature": format!("{:016x}", self.pipeline.vocab_signature()),
        })
    }
}

/// Stratified split of corpus indices by category.
fn split_indices(
    corpus: &[(String, Category)],
    test_ratio: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); Category::ALL.len()];
    for (i, (_, c)) in corpus.iter().enumerate() {
        by_class[c.index()].push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for indices in &mut by_class {
        indices.shuffle(&mut rng);
        let mut n_test = (indices.len() as f64 * test_ratio).floor() as usize;
        if n_test == 0 && indices.len() >= 2 && test_ratio > 0.0 {
            n_test = 1;
        }
        test.extend_from_slice(&indices[..n_test]);
        train.extend_from_slice(&indices[n_test..]);
    }
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

/// Split the corpus, fit the feature pipeline on the training half only
/// (no leakage), and vectorize both halves.
pub fn prepare_split(corpus: &[(String, Category)], config: &EvalConfig) -> PreparedSplit {
    let working: Vec<(String, Category)> = if config.drop_unimportant {
        corpus
            .iter()
            .filter(|(_, c)| *c != Category::Unimportant)
            .cloned()
            .collect()
    } else {
        corpus.to_vec()
    };
    let (train_idx, test_idx) = split_indices(&working, config.test_ratio, config.seed);

    let t0 = Instant::now();
    let mut pipeline = FeaturePipeline::new(config.features.clone());
    let train_msgs: Vec<&str> = train_idx.iter().map(|&i| working[i].0.as_str()).collect();
    let test_msgs: Vec<&str> = test_idx.iter().map(|&i| working[i].0.as_str()).collect();
    let train_features = pipeline.fit_transform(&train_msgs);
    let test_features = pipeline.transform_batch(&test_msgs);
    let preprocess_seconds = t0.elapsed().as_secs_f64();

    let names = Category::all_labels();
    let train = Dataset::new(
        train_features,
        train_idx.iter().map(|&i| working[i].1.index()).collect(),
        names.clone(),
    );
    let test = Dataset::new(
        test_features,
        test_idx.iter().map(|&i| working[i].1.index()).collect(),
        names,
    );
    PreparedSplit {
        train,
        test,
        train_texts: train_msgs.iter().map(|s| s.to_string()).collect(),
        test_texts: test_msgs.iter().map(|s| s.to_string()).collect(),
        pipeline,
        preprocess_seconds,
    }
}

/// Fit and score one model on a prepared split, timing both phases.
pub fn evaluate_model(model: &mut dyn Classifier, split: &PreparedSplit) -> ModelEvaluation {
    let t0 = Instant::now();
    model.fit(&split.train);
    let train_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let predicted = model.predict_batch(&split.test.features);
    let test_seconds = t1.elapsed().as_secs_f64();

    let confusion =
        ConfusionMatrix::from_predictions(&split.test.class_names, &split.test.labels, &predicted);
    let report = ClassificationReport {
        model: model.name().to_string(),
        weighted_f1: confusion.weighted_f1(),
        macro_f1: confusion.macro_f1(),
        accuracy: confusion.accuracy(),
        train_seconds,
        test_seconds,
        n_test: split.test.len(),
    };
    ModelEvaluation { report, confusion }
}

/// Evaluate a whole suite on one shared split (the Figure 3 table).
pub fn evaluate_suite(
    corpus: &[(String, Category)],
    models: &mut [Box<dyn BatchClassifier>],
    config: &EvalConfig,
) -> (PreparedSplit, Vec<ModelEvaluation>) {
    let split = prepare_split(corpus, config);
    let evals = models
        .iter_mut()
        .map(|m| evaluate_model(m.as_mut(), &split))
        .collect();
    (split, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_ml::{ComplementNaiveBayes, ComplementNbConfig, NearestCentroid};
    use textproc::TfidfConfig;

    fn corpus() -> Vec<(String, Category)> {
        let mut out = Vec::new();
        for i in 0..12 {
            out.push((
                format!("cpu {i} temperature above threshold clock throttled"),
                Category::ThermalIssue,
            ));
            out.push((
                format!("sshd connection closed by user {i} port 22 preauth"),
                Category::SshConnection,
            ));
            out.push((
                format!("usb {i} new device number found on hub"),
                Category::UsbDevice,
            ));
            out.push((
                format!("systemd started session {i} of user build"),
                Category::Unimportant,
            ));
        }
        out
    }

    fn config() -> EvalConfig {
        EvalConfig {
            features: FeatureConfig {
                tfidf: TfidfConfig {
                    min_df: 1,
                    ..TfidfConfig::default()
                },
                ..FeatureConfig::default()
            },
            ..EvalConfig::default()
        }
    }

    #[test]
    fn split_has_no_leakage_and_full_coverage() {
        let corpus = corpus();
        let split = prepare_split(&corpus, &config());
        assert_eq!(split.train.len() + split.test.len(), corpus.len());
        assert!(split.preprocess_seconds >= 0.0);
        // All 4 used classes appear in both halves.
        for c in [
            Category::ThermalIssue,
            Category::SshConnection,
            Category::UsbDevice,
            Category::Unimportant,
        ] {
            assert!(split.train.class_counts()[c.index()] > 0);
            assert!(split.test.class_counts()[c.index()] > 0);
        }
    }

    #[test]
    fn evaluate_simple_models() {
        let corpus = corpus();
        let mut models: Vec<Box<dyn BatchClassifier>> = vec![
            Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
            Box::new(NearestCentroid::new()),
        ];
        let (_, evals) = evaluate_suite(&corpus, &mut models, &config());
        assert_eq!(evals.len(), 2);
        for e in &evals {
            assert!(
                e.report.weighted_f1 > 0.9,
                "{} scored only {}",
                e.report.model,
                e.report.weighted_f1
            );
            assert!(e.report.train_seconds >= 0.0);
            assert_eq!(e.confusion.total() as usize, e.report.n_test);
        }
    }

    #[test]
    fn drop_unimportant_removes_class() {
        let corpus = corpus();
        let cfg = EvalConfig {
            drop_unimportant: true,
            ..config()
        };
        let split = prepare_split(&corpus, &cfg);
        assert_eq!(split.train.class_counts()[Category::Unimportant.index()], 0);
        assert_eq!(split.test.class_counts()[Category::Unimportant.index()], 0);
        assert_eq!(split.train.len() + split.test.len(), 36);
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = corpus();
        let a = prepare_split(&corpus, &config());
        let b = prepare_split(&corpus, &config());
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(a.test.labels, b.test.labels);
    }

    #[test]
    fn signature_is_stable_and_sensitive() {
        let corpus = corpus();
        let a = prepare_split(&corpus, &config());
        let b = prepare_split(&corpus, &config());
        assert_eq!(
            crate::persist::to_canonical_json(&a.signature()),
            crate::persist::to_canonical_json(&b.signature())
        );
        let other = prepare_split(
            &corpus,
            &EvalConfig {
                drop_unimportant: true,
                ..config()
            },
        );
        assert_ne!(
            crate::persist::to_canonical_json(&a.signature()),
            crate::persist::to_canonical_json(&other.signature()),
            "a structurally different split must change the signature"
        );
    }
}
