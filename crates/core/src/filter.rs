//! The noise pre-filter recommended in the paper's Conclusion: blacklist
//! known-Unimportant message shapes with a *tight* edit-distance match, so
//! the general classifier only sees messages that are either interesting or
//! genuinely new.

use crate::taxonomy::Category;
use editdist::Blacklist;
use serde::{Deserialize, Serialize};

/// Statistics from a filtering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Messages passed through to classification.
    pub kept: usize,
    /// Messages dropped as known noise.
    pub filtered: usize,
}

/// Edit-distance blacklist built from Unimportant-labeled training data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseFilter {
    blacklist: Blacklist,
}

impl NoiseFilter {
    /// Build from a labeled corpus, registering every Unimportant message
    /// as a blacklist pattern (the bucket store dedupes near-identical
    /// patterns internally).
    pub fn train(threshold: usize, corpus: &[(String, Category)]) -> NoiseFilter {
        let patterns: Vec<&str> = corpus
            .iter()
            .filter(|(_, c)| *c == Category::Unimportant)
            .map(|(m, _)| m.as_str())
            .collect();
        NoiseFilter {
            blacklist: Blacklist::from_messages(threshold, &patterns),
        }
    }

    /// An empty filter (keeps everything).
    pub fn empty(threshold: usize) -> NoiseFilter {
        NoiseFilter {
            blacklist: Blacklist::new(threshold),
        }
    }

    /// Should this message be dropped before classification?
    pub fn is_noise(&self, message: &str) -> bool {
        self.blacklist.is_blacklisted(message)
    }

    /// Register an additional noise pattern at runtime (the
    /// administrator's "blacklist this" action).
    pub fn add_pattern(&mut self, message: &str) {
        self.blacklist.add(message);
    }

    /// Number of distinct patterns.
    pub fn n_patterns(&self) -> usize {
        self.blacklist.len()
    }

    /// Split a message stream; returns kept messages and stats.
    pub fn filter<'a>(&self, messages: &[&'a str]) -> (Vec<&'a str>, FilterStats) {
        let (kept, filtered) = self.blacklist.partition(messages);
        let stats = FilterStats {
            kept: kept.len(),
            filtered: filtered.len(),
        };
        (kept, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(String, Category)> {
        vec![
            (
                "Started Session 12 of user root".to_string(),
                Category::Unimportant,
            ),
            ("rsyslogd was HUPed".to_string(), Category::Unimportant),
            (
                "cpu temperature above threshold".to_string(),
                Category::ThermalIssue,
            ),
        ]
    }

    #[test]
    fn trains_only_on_unimportant() {
        let f = NoiseFilter::train(3, &corpus());
        assert_eq!(f.n_patterns(), 2);
        assert!(f.is_noise("Started Session 99 of user root"));
        assert!(!f.is_noise("cpu temperature above threshold"));
    }

    #[test]
    fn filter_splits_and_counts() {
        let f = NoiseFilter::train(3, &corpus());
        let msgs = [
            "Started Session 3 of user root",
            "memory error on DIMM 4",
            "rsyslogd was HUPed",
        ];
        let (kept, stats) = f.filter(&msgs);
        assert_eq!(
            stats,
            FilterStats {
                kept: 1,
                filtered: 2
            }
        );
        assert_eq!(kept, vec!["memory error on DIMM 4"]);
    }

    #[test]
    fn runtime_pattern_addition() {
        let mut f = NoiseFilter::empty(2);
        assert!(!f.is_noise("chatty daemon heartbeat ok"));
        f.add_pattern("chatty daemon heartbeat ok");
        assert!(f.is_noise("chatty daemon heartbeat ok"));
        assert!(f.is_noise("chatty daemon heartbeat OK"));
    }
}
