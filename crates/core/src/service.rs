//! The monitoring front end: continuous classification with category
//! counters and alert hooks.
//!
//! §3 describes the operational loop on Darwin: issue categories "could be
//! set to trigger a notification email when a new message within that
//! category has been identified". [`MonitorService`] reproduces that loop
//! over any [`TextClassifier`]: classify, count, pre-filter noise, and
//! invoke an alert sink for actionable categories.

use crate::classify::{Prediction, TextClassifier};
use crate::filter::NoiseFilter;
use crate::taxonomy::Category;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An alert emitted for an actionable classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The triggering category.
    pub category: Category,
    /// The raw message.
    pub message: String,
    /// Suggested operator action.
    pub action: String,
}

/// Where alerts go (an email gateway in production; a channel or a vector
/// in tests).
pub trait AlertSink: Send + Sync {
    /// Deliver one alert.
    fn send(&self, alert: Alert);
}

/// An [`AlertSink`] that collects alerts into a vector (for tests and
/// examples).
#[derive(Debug, Default)]
pub struct CollectingSink {
    alerts: Mutex<Vec<Alert>>,
}

impl CollectingSink {
    /// New empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Drain collected alerts.
    pub fn take(&self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts.lock())
    }

    /// Number of alerts currently held.
    pub fn len(&self) -> usize {
        self.alerts.lock().len()
    }

    /// True when no alerts are held.
    pub fn is_empty(&self) -> bool {
        self.alerts.lock().is_empty()
    }
}

impl AlertSink for CollectingSink {
    fn send(&self, alert: Alert) {
        self.alerts.lock().push(alert);
    }
}

/// Running counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Messages seen (including filtered).
    pub total: u64,
    /// Messages dropped by the noise pre-filter.
    pub prefiltered: u64,
    /// Classifications per category, indexed by [`Category::index`].
    pub per_category: [u64; 8],
    /// Alerts emitted.
    pub alerts: u64,
}

impl MonitorStats {
    /// Count for one category.
    pub fn count(&self, c: Category) -> u64 {
        self.per_category[c.index()]
    }
}

/// Point-in-time counters from the ingest layer in front of the monitor —
/// the socket listener / stream decoder that feeds it frames. The transport
/// owns these numbers (the monitor never sees shed or undecodable frames);
/// it reports them here so one snapshot can describe the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestSnapshot {
    /// Frames decoded off the wire.
    pub frames: u64,
    /// Raw bytes received.
    pub bytes: u64,
    /// Records successfully parsed and stored.
    pub ingested: u64,
    /// Frames that failed syslog parsing outright (empty frames; the
    /// free-form fallback accepts everything else).
    pub parse_errors: u64,
    /// Frames shed because the bounded ingest queue was full.
    pub shed: u64,
    /// Corrupt octet-count tokens dropped by the RFC 6587 decoder.
    pub decode_dropped: u64,
    /// Connections accepted over the lifetime of the listener.
    pub connections: u64,
    /// Connections closed for idling past the per-connection timeout.
    pub idle_closed: u64,
}

impl IngestSnapshot {
    /// Total frames lost before classification, for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.parse_errors + self.shed + self.decode_dropped
    }
}

/// One combined health view: classification counters plus the ingest-layer
/// counters supplied by the transport feeding this service.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Classifier-side counters (owned by the [`MonitorService`]).
    pub monitor: MonitorStats,
    /// Transport-side counters (owned by the listener / decoder).
    pub ingest: IngestSnapshot,
}

/// The continuous classification service.
pub struct MonitorService {
    classifier: Arc<dyn TextClassifier>,
    prefilter: Option<NoiseFilter>,
    sink: Option<Arc<dyn AlertSink>>,
    stats: Mutex<MonitorStats>,
    /// Max alerts per category per throttle window (`None` = unthrottled).
    throttle: Option<u64>,
    /// Messages per throttle window.
    throttle_window: u64,
    /// Alerts sent per category within the current window.
    window_state: Mutex<([u64; 8], u64)>,
}

impl MonitorService {
    /// Build a service around a classifier.
    pub fn new(classifier: Arc<dyn TextClassifier>) -> MonitorService {
        MonitorService {
            classifier,
            prefilter: None,
            sink: None,
            stats: Mutex::new(MonitorStats::default()),
            throttle: None,
            throttle_window: 10_000,
            window_state: Mutex::new(([0; 8], 0)),
        }
    }

    /// Cap alert volume: at most `max_per_category` alerts per category per
    /// window of `window_messages` alert-eligible (actionable) messages. A
    /// thermal runaway produces thousands of identical classifications
    /// (§4.5.1 bursts); the notification email should not.
    pub fn with_alert_throttle(
        mut self,
        max_per_category: u64,
        window_messages: u64,
    ) -> MonitorService {
        self.throttle = Some(max_per_category);
        self.throttle_window = window_messages.max(1);
        self
    }

    /// Attach the Unimportant pre-filter.
    pub fn with_prefilter(mut self, filter: NoiseFilter) -> MonitorService {
        self.prefilter = Some(filter);
        self
    }

    /// Attach an alert sink for actionable categories.
    pub fn with_alert_sink(mut self, sink: Arc<dyn AlertSink>) -> MonitorService {
        self.sink = Some(sink);
        self
    }

    /// Process one message; returns the prediction unless the pre-filter
    /// dropped the message.
    pub fn ingest(&self, message: &str) -> Option<Prediction> {
        {
            let mut stats = self.stats.lock();
            stats.total += 1;
            if let Some(f) = &self.prefilter {
                if f.is_noise(message) {
                    stats.prefiltered += 1;
                    return None;
                }
            }
        }
        let prediction = self.classifier.classify(message);
        let mut stats = self.stats.lock();
        stats.per_category[prediction.category.index()] += 1;
        if prediction.category.is_actionable() {
            if let Some(sink) = &self.sink {
                if self.alert_permitted(prediction.category) {
                    stats.alerts += 1;
                    sink.send(Alert {
                        category: prediction.category,
                        message: message.to_string(),
                        action: prediction.category.suggested_action().to_string(),
                    });
                }
            }
        }
        Some(prediction)
    }

    /// Process a batch of messages through the classifier's batch path.
    ///
    /// Three passes that together observe the exact same stats/alert
    /// sequence as calling [`MonitorService::ingest`] per message in order:
    /// a sequential pre-filter pass (counting totals and drops), one
    /// [`TextClassifier::classify_batch`] call over the survivors (the
    /// matrix-at-a-time CSR path for traditional pipelines), and a
    /// sequential merge applying category counters and alert throttling in
    /// input order.
    pub fn ingest_batch(&self, messages: &[&str]) -> Vec<Option<Prediction>> {
        // Pass 1: totals + pre-filter, preserving input order.
        let mut kept_indices = Vec::with_capacity(messages.len());
        {
            let mut stats = self.stats.lock();
            for (i, message) in messages.iter().enumerate() {
                stats.total += 1;
                match &self.prefilter {
                    Some(f) if f.is_noise(message) => stats.prefiltered += 1,
                    _ => kept_indices.push(i),
                }
            }
        }
        // Pass 2: classify all survivors at once.
        let kept_messages: Vec<&str> = kept_indices.iter().map(|&i| messages[i]).collect();
        let predictions = self.classifier.classify_batch(&kept_messages);
        // Pass 3: merge counters and alerts back in input order.
        let mut out: Vec<Option<Prediction>> = vec![None; messages.len()];
        for (&i, prediction) in kept_indices.iter().zip(predictions) {
            let mut stats = self.stats.lock();
            stats.per_category[prediction.category.index()] += 1;
            if prediction.category.is_actionable() {
                if let Some(sink) = &self.sink {
                    if self.alert_permitted(prediction.category) {
                        stats.alerts += 1;
                        sink.send(Alert {
                            category: prediction.category,
                            message: messages[i].to_string(),
                            action: prediction.category.suggested_action().to_string(),
                        });
                    }
                }
            }
            out[i] = Some(prediction);
        }
        out
    }

    /// Check and update the per-category alert budget.
    fn alert_permitted(&self, category: Category) -> bool {
        let Some(max) = self.throttle else {
            return true;
        };
        let mut state = self.window_state.lock();
        let (counts, seen) = &mut *state;
        *seen += 1;
        if *seen > self.throttle_window {
            *counts = [0; 8];
            *seen = 1;
        }
        let slot = &mut counts[category.index()];
        if *slot < max {
            *slot += 1;
            true
        } else {
            false
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats.lock().clone()
    }

    /// Combine this service's counters with the ingest-layer counters of
    /// the transport feeding it into one health snapshot.
    pub fn health(&self, ingest: IngestSnapshot) -> HealthSnapshot {
        HealthSnapshot {
            monitor: self.stats(),
            ingest,
        }
    }

    /// The classifier in use.
    pub fn classifier_name(&self) -> String {
        self.classifier.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub classifier: thermal if the text mentions heat, else
    /// unimportant.
    struct Stub;

    impl TextClassifier for Stub {
        fn name(&self) -> String {
            "stub".to_string()
        }

        fn classify(&self, message: &str) -> Prediction {
            if message.contains("hot") {
                Prediction::bare(Category::ThermalIssue)
            } else {
                Prediction::bare(Category::Unimportant)
            }
        }
    }

    #[test]
    fn counts_and_alerts() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub)).with_alert_sink(sink.clone());
        svc.ingest("cpu is hot");
        svc.ingest("nothing going on");
        svc.ingest("gpu also hot");
        let stats = svc.stats();
        assert_eq!(stats.total, 3);
        assert_eq!(stats.count(Category::ThermalIssue), 2);
        assert_eq!(stats.count(Category::Unimportant), 1);
        assert_eq!(stats.alerts, 2);
        let alerts = sink.take();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].category, Category::ThermalIssue);
        assert!(!alerts[0].action.is_empty());
    }

    #[test]
    fn prefilter_short_circuits_classification() {
        let mut filter = NoiseFilter::empty(2);
        filter.add_pattern("known noise line");
        let svc = MonitorService::new(Arc::new(Stub)).with_prefilter(filter);
        assert!(svc.ingest("known noise line").is_none());
        assert!(svc.ingest("cpu is hot").is_some());
        let stats = svc.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.prefiltered, 1);
        assert_eq!(stats.count(Category::ThermalIssue), 1);
    }

    #[test]
    fn unimportant_never_alerts() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub)).with_alert_sink(sink.clone());
        svc.ingest("nothing going on");
        assert!(sink.is_empty());
        assert_eq!(svc.stats().alerts, 0);
    }

    #[test]
    fn batch_ingest() {
        let svc = MonitorService::new(Arc::new(Stub));
        let out = svc.ingest_batch(&["hot", "cold", "hot again"]);
        assert_eq!(out.len(), 3);
        assert_eq!(svc.stats().total, 3);
    }

    #[test]
    fn alert_throttle_caps_per_category_volume() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub))
            .with_alert_sink(sink.clone())
            .with_alert_throttle(3, 100);
        // A thermal runaway: 50 identical actionable messages.
        for i in 0..50 {
            svc.ingest(&format!("cpu {i} hot"));
        }
        assert_eq!(sink.len(), 3, "throttle must cap the email storm");
        assert_eq!(svc.stats().alerts, 3);
        // Classification counters are NOT throttled.
        assert_eq!(svc.stats().count(Category::ThermalIssue), 50);
    }

    #[test]
    fn alert_throttle_window_resets() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub))
            .with_alert_sink(sink.clone())
            .with_alert_throttle(1, 10);
        for i in 0..25 {
            svc.ingest(&format!("cpu {i} hot"));
        }
        // Windows of 10 actionable messages → one alert each.
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn health_combines_monitor_and_ingest_counters() {
        let svc = MonitorService::new(Arc::new(Stub));
        svc.ingest("cpu is hot");
        let ingest = IngestSnapshot {
            frames: 3,
            bytes: 120,
            ingested: 1,
            parse_errors: 1,
            shed: 1,
            decode_dropped: 0,
            connections: 2,
            idle_closed: 0,
        };
        let health = svc.health(ingest);
        assert_eq!(health.monitor.total, 1);
        assert_eq!(health.ingest.total_dropped(), 2);
        // The combined snapshot serializes as one document (the dashboard
        // wire format).
        let json = serde_json::to_string(&health).unwrap();
        assert!(json.contains("\"shed\""));
    }

    #[test]
    fn service_is_share_safe_across_threads() {
        let svc = Arc::new(MonitorService::new(Arc::new(Stub)));
        let mut handles = Vec::new();
        for t in 0..4 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    svc.ingest(&format!("msg {t} {i} hot"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.stats().total, 200);
        assert_eq!(svc.stats().count(Category::ThermalIssue), 200);
    }
}
