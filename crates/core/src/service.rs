//! The monitoring front end: continuous classification with category
//! counters and alert hooks.
//!
//! §3 describes the operational loop on Darwin: issue categories "could be
//! set to trigger a notification email when a new message within that
//! category has been identified". [`MonitorService`] reproduces that loop
//! over any [`TextClassifier`]: classify, count, pre-filter noise, and
//! invoke an alert sink for actionable categories.

use crate::classify::{Prediction, TextClassifier};
use crate::filter::NoiseFilter;
use crate::model_quality::ModelQuality;
use crate::taxonomy::Category;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use syslog_model::SyslogMessage;

/// Per-frame outcome of [`MonitorService::ingest_frames`]: the raw frame
/// either failed to parse, parsed but was dropped by the noise pre-filter,
/// or parsed and was classified. The parsed message is handed back so the
/// caller can build its stored record without re-parsing.
#[derive(Debug, Clone)]
pub enum FrameOutcome {
    /// Parsed and classified.
    Classified {
        /// The parsed syslog message.
        message: SyslogMessage,
        /// The classifier's decision.
        prediction: Prediction,
    },
    /// Parsed, but the noise pre-filter dropped it before classification
    /// (callers typically store it uncategorized).
    Prefiltered {
        /// The parsed syslog message.
        message: SyslogMessage,
    },
    /// The syslog parser rejected the frame (in practice only empty
    /// frames; the free-form fallback absorbs everything else).
    ParseError,
}

/// An alert emitted for an actionable classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The triggering category.
    pub category: Category,
    /// The raw message.
    pub message: String,
    /// Suggested operator action.
    pub action: String,
}

/// Where alerts go (an email gateway in production; a channel or a vector
/// in tests).
pub trait AlertSink: Send + Sync {
    /// Deliver one alert.
    fn send(&self, alert: Alert);
}

/// An [`AlertSink`] that collects alerts into a vector (for tests and
/// examples).
#[derive(Debug, Default)]
pub struct CollectingSink {
    alerts: Mutex<Vec<Alert>>,
}

impl CollectingSink {
    /// New empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Drain collected alerts.
    pub fn take(&self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts.lock())
    }

    /// Number of alerts currently held.
    pub fn len(&self) -> usize {
        self.alerts.lock().len()
    }

    /// True when no alerts are held.
    pub fn is_empty(&self) -> bool {
        self.alerts.lock().is_empty()
    }
}

impl AlertSink for CollectingSink {
    fn send(&self, alert: Alert) {
        self.alerts.lock().push(alert);
    }
}

/// Running counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Messages seen (including filtered).
    pub total: u64,
    /// Messages dropped by the noise pre-filter.
    pub prefiltered: u64,
    /// Classifications per category, indexed by [`Category::index`].
    pub per_category: [u64; 8],
    /// Alerts emitted.
    pub alerts: u64,
}

impl MonitorStats {
    /// Count for one category.
    pub fn count(&self, c: Category) -> u64 {
        self.per_category[c.index()]
    }
}

/// The monitor's live counters: `obs` instruments instead of a locked
/// struct. A fresh service starts with *detached* instruments (recording
/// works, nothing is exported); [`MonitorService::attach_telemetry`] swaps
/// in registry-backed handles, carrying accumulated values over, so the
/// same counters then feed both [`MonitorService::stats`] and `/metrics`.
struct ServiceCounters {
    total: Arc<obs::Counter>,
    prefiltered: Arc<obs::Counter>,
    per_category: [Arc<obs::Counter>; 8],
    alerts: Arc<obs::Counter>,
    parse_us: Arc<obs::Histogram>,
}

impl ServiceCounters {
    fn detached() -> ServiceCounters {
        ServiceCounters {
            total: Arc::new(obs::Counter::new()),
            prefiltered: Arc::new(obs::Counter::new()),
            per_category: std::array::from_fn(|_| Arc::new(obs::Counter::new())),
            alerts: Arc::new(obs::Counter::new()),
            parse_us: Arc::new(obs::Histogram::new()),
        }
    }

    fn registered(registry: &obs::Registry) -> ServiceCounters {
        ServiceCounters {
            total: registry.counter(
                "hetsyslog_monitor_messages_total",
                "Messages seen by the monitor (including prefiltered)",
                &[],
            ),
            prefiltered: registry.counter(
                "hetsyslog_monitor_prefiltered_total",
                "Messages dropped by the noise pre-filter",
                &[],
            ),
            per_category: std::array::from_fn(|i| {
                let category = Category::from_index(i).expect("dense index");
                registry.counter(
                    "hetsyslog_monitor_classified_total",
                    "Classifications by category",
                    &[("category", category.label())],
                )
            }),
            alerts: registry.counter(
                "hetsyslog_monitor_alerts_total",
                "Alerts emitted (post-throttle)",
                &[],
            ),
            parse_us: registry.histogram(
                "hetsyslog_stage_duration_us",
                "Per-stage batch processing time in microseconds",
                &[("stage", "parse")],
            ),
        }
    }

    /// Move accumulated values from `old` into `self`, skipping any
    /// instrument that is already the same allocation (re-attaching the
    /// same registry must not double-count).
    fn carry_over(&self, old: &ServiceCounters) {
        fn carry(new: &Arc<obs::Counter>, old: &Arc<obs::Counter>) {
            if !Arc::ptr_eq(new, old) {
                new.add(old.get());
            }
        }
        carry(&self.total, &old.total);
        carry(&self.prefiltered, &old.prefiltered);
        for (new, old) in self.per_category.iter().zip(&old.per_category) {
            carry(new, old);
        }
        carry(&self.alerts, &old.alerts);
        if !Arc::ptr_eq(&self.parse_us, &old.parse_us) {
            self.parse_us.merge_from(&old.parse_us);
        }
    }

    fn snapshot(&self) -> MonitorStats {
        MonitorStats {
            total: self.total.get(),
            prefiltered: self.prefiltered.get(),
            per_category: std::array::from_fn(|i| self.per_category[i].get()),
            alerts: self.alerts.get(),
        }
    }
}

/// Point-in-time counters from the ingest layer in front of the monitor —
/// the socket listener / stream decoder that feeds it frames. The transport
/// owns these numbers (the monitor never sees shed or undecodable frames);
/// it reports them here so one snapshot can describe the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestSnapshot {
    /// Frames decoded off the wire.
    pub frames: u64,
    /// Raw bytes received.
    pub bytes: u64,
    /// Records successfully parsed and stored.
    pub ingested: u64,
    /// Frames that failed syslog parsing outright (empty frames; the
    /// free-form fallback accepts everything else).
    pub parse_errors: u64,
    /// Frames shed because the bounded ingest queue was full.
    pub shed: u64,
    /// Corrupt octet-count tokens dropped by the RFC 6587 decoder.
    pub decode_dropped: u64,
    /// Connections accepted over the lifetime of the listener.
    pub connections: u64,
    /// Connections closed for idling past the per-connection timeout.
    pub idle_closed: u64,
}

impl IngestSnapshot {
    /// Total frames lost before classification, for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.parse_errors + self.shed + self.decode_dropped
    }
}

/// Buckets in the [`BatchSnapshot`] batch-size histogram: sizes 1, 2–3,
/// 4–7, …, 256+ (log₂ buckets).
pub const BATCH_SIZE_BUCKETS: usize = 9;

/// Buckets in the [`BatchSnapshot`] latency histograms: log₂ microsecond
/// buckets `[2^i, 2^(i+1))` µs, with the last bucket open-ended.
pub const LATENCY_BUCKETS: usize = 20;

/// Histogram bucket index for a batch of `n` frames.
pub fn batch_size_bucket(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - 1 - n.leading_zeros()).min(BATCH_SIZE_BUCKETS as u32 - 1) as usize
    }
}

/// Histogram bucket index for a latency of `us` microseconds.
pub fn latency_bucket_us(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        (u64::BITS - 1 - us.leading_zeros()).min(LATENCY_BUCKETS as u32 - 1) as usize
    }
}

/// Inclusive upper bound (µs) of latency bucket `i`, used when estimating
/// percentiles from a histogram. The open last bucket reports its lower
/// bound (a floor, not a ceiling).
pub fn latency_bucket_upper_us(i: usize) -> u64 {
    if i + 1 >= LATENCY_BUCKETS {
        1 << (LATENCY_BUCKETS - 1)
    } else {
        (1 << (i + 1)) - 1
    }
}

/// Estimate the `p`-th percentile (0–100) of a latency histogram as the
/// upper bound of the bucket holding that rank. Zero for an empty
/// histogram.
pub fn latency_percentile_us(hist: &[u64], p: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return latency_bucket_upper_us(i);
        }
    }
    latency_bucket_upper_us(hist.len().saturating_sub(1))
}

/// Point-in-time counters from a micro-batching stage between the ingest
/// queue and the classifiers: how frames were grouped, why batches were
/// dispatched, and how long frames waited. Owned by whichever worker loop
/// does the drain-and-batch scheduling (the listener / ingest pipeline);
/// reported here so one [`HealthSnapshot`] describes the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSnapshot {
    /// Batches dispatched to the classify/store stage.
    pub batches: u64,
    /// Frames classified through dispatched batches (parse failures and
    /// pre-filtered frames excluded).
    pub classified: u64,
    /// Frames that waited on the batching deadline: members of batches
    /// dispatched because `max_delay` expired rather than because the
    /// batch filled. Bounded staleness, made visible.
    pub deferred: u64,
    /// Batches dispatched full (`max_batch` frames).
    pub full_flushes: u64,
    /// Batches dispatched by the `max_delay` deadline.
    pub deadline_flushes: u64,
    /// Batches dispatched because the queue disconnected (graceful drain
    /// flushing a partially filled batch).
    pub drain_flushes: u64,
    /// Frames by the size of the batch that carried them (log₂ buckets:
    /// 1, 2–3, 4–7, …, 256+). Sums to the total frames batched.
    pub batch_size_hist: [u64; BATCH_SIZE_BUCKETS],
    /// Batches by how long they waited to fill after their first frame
    /// (log₂ µs buckets). Sums to `batches`.
    pub fill_latency_us_hist: [u64; LATENCY_BUCKETS],
    /// Frames by queue→prediction latency: enqueue at the socket to batch
    /// dispatch completion (log₂ µs buckets). Sums to the frames batched.
    pub queue_latency_us_hist: [u64; LATENCY_BUCKETS],
}

impl BatchSnapshot {
    /// Total frames that went through the batching stage (the batch-size
    /// histogram total).
    pub fn frames(&self) -> u64 {
        self.batch_size_hist.iter().sum()
    }

    /// Mean frames per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.frames() as f64 / self.batches as f64
        }
    }

    /// Estimated p99 queue→prediction latency in microseconds.
    pub fn p99_queue_latency_us(&self) -> u64 {
        latency_percentile_us(&self.queue_latency_us_hist, 99.0)
    }
}

/// One combined health view: classification counters plus the ingest-layer
/// counters supplied by the transport feeding this service.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Classifier-side counters (owned by the [`MonitorService`]).
    pub monitor: MonitorStats,
    /// Transport-side counters (owned by the listener / decoder).
    pub ingest: IngestSnapshot,
    /// Micro-batching counters (owned by the batch-draining worker loop;
    /// all zero when the transport classifies frame-at-a-time).
    pub batching: BatchSnapshot,
}

/// The continuous classification service.
pub struct MonitorService {
    classifier: Arc<dyn TextClassifier>,
    prefilter: Option<NoiseFilter>,
    sink: Option<Arc<dyn AlertSink>>,
    counters: RwLock<ServiceCounters>,
    /// Max alerts per category per throttle window (`None` = unthrottled).
    throttle: Option<u64>,
    /// Messages per throttle window.
    throttle_window: u64,
    /// Alerts sent per category within the current window.
    window_state: Mutex<([u64; 8], u64)>,
    /// Prediction-share counters + PSI drift gauge (always on; detached
    /// instruments until [`MonitorService::attach_telemetry`]).
    quality: ModelQuality,
}

impl MonitorService {
    /// Build a service around a classifier.
    pub fn new(classifier: Arc<dyn TextClassifier>) -> MonitorService {
        MonitorService {
            classifier,
            prefilter: None,
            sink: None,
            counters: RwLock::new(ServiceCounters::detached()),
            throttle: None,
            throttle_window: 10_000,
            window_state: Mutex::new(([0; 8], 0)),
            quality: ModelQuality::new(),
        }
    }

    /// Replace the model-quality accounting (baseline / window sizing).
    pub fn with_model_quality(mut self, quality: ModelQuality) -> MonitorService {
        self.quality = quality;
        self
    }

    /// The serving-time model-quality instruments.
    pub fn model_quality(&self) -> &ModelQuality {
        &self.quality
    }

    /// Cap alert volume: at most `max_per_category` alerts per category per
    /// window of `window_messages` alert-eligible (actionable) messages. A
    /// thermal runaway produces thousands of identical classifications
    /// (§4.5.1 bursts); the notification email should not.
    pub fn with_alert_throttle(
        mut self,
        max_per_category: u64,
        window_messages: u64,
    ) -> MonitorService {
        self.throttle = Some(max_per_category);
        self.throttle_window = window_messages.max(1);
        self
    }

    /// Attach the Unimportant pre-filter.
    pub fn with_prefilter(mut self, filter: NoiseFilter) -> MonitorService {
        self.prefilter = Some(filter);
        self
    }

    /// Attach an alert sink for actionable categories.
    pub fn with_alert_sink(mut self, sink: Arc<dyn AlertSink>) -> MonitorService {
        self.sink = Some(sink);
        self
    }

    /// Process one message; returns the prediction unless the pre-filter
    /// dropped the message.
    pub fn ingest(&self, message: &str) -> Option<Prediction> {
        let noise = self.prefilter.as_ref().is_some_and(|f| f.is_noise(message));
        let counters = self.counters.read();
        counters.total.inc();
        if noise {
            counters.prefiltered.inc();
            return None;
        }
        let prediction = self.classifier.classify(message);
        counters.per_category[prediction.category.index()].inc();
        self.quality.record(&[prediction.category]);
        if prediction.category.is_actionable() {
            if let Some(sink) = &self.sink {
                if self.alert_permitted(prediction.category) {
                    counters.alerts.inc();
                    sink.send(Alert {
                        category: prediction.category,
                        message: message.to_string(),
                        action: prediction.category.suggested_action().to_string(),
                    });
                }
            }
        }
        Some(prediction)
    }

    /// Process a batch of messages through the classifier's batch path.
    ///
    /// Three passes that together observe the exact same stats/alert
    /// sequence as calling [`MonitorService::ingest`] per message in order:
    /// a sequential pre-filter pass (counting totals and drops), one
    /// [`TextClassifier::classify_batch`] call over the survivors (the
    /// matrix-at-a-time CSR path for traditional pipelines), and a
    /// sequential merge applying category counters and alert throttling in
    /// input order.
    pub fn ingest_batch(&self, messages: &[&str]) -> Vec<Option<Prediction>> {
        let counters = self.counters.read();
        // Pass 1: totals + pre-filter, preserving input order.
        let mut kept_indices = Vec::with_capacity(messages.len());
        for (i, message) in messages.iter().enumerate() {
            counters.total.inc();
            match &self.prefilter {
                Some(f) if f.is_noise(message) => counters.prefiltered.inc(),
                _ => kept_indices.push(i),
            }
        }
        // Pass 2: classify all survivors at once.
        let kept_messages: Vec<&str> = kept_indices.iter().map(|&i| messages[i]).collect();
        let predictions = self.classifier.classify_batch(&kept_messages);
        // Pass 3: merge counters and alerts back in input order.
        let mut out: Vec<Option<Prediction>> = vec![None; messages.len()];
        let mut categories = Vec::with_capacity(kept_indices.len());
        for (&i, prediction) in kept_indices.iter().zip(predictions) {
            counters.per_category[prediction.category.index()].inc();
            categories.push(prediction.category);
            if prediction.category.is_actionable() {
                if let Some(sink) = &self.sink {
                    if self.alert_permitted(prediction.category) {
                        counters.alerts.inc();
                        sink.send(Alert {
                            category: prediction.category,
                            message: messages[i].to_string(),
                            action: prediction.category.suggested_action().to_string(),
                        });
                    }
                }
            }
            out[i] = Some(prediction);
        }
        // Same category sequence as the scalar path → identical quality
        // accounting (one batched record call).
        self.quality.record(&categories);
        out
    }

    /// Process a batch of raw syslog frames: parse, pre-filter, then one
    /// fused [`TextClassifier::classify_batch`] call over the survivors —
    /// the parse → tokenize → CSR-transform → batch-predict hot path of
    /// the live listener. Outcome `i` corresponds to `frames[i]`.
    ///
    /// Parse failures are reported as [`FrameOutcome::ParseError`] and
    /// never touch the monitor counters (the transport owns drop
    /// accounting), exactly as when the caller parses first and feeds
    /// [`MonitorService::ingest`] per message. For the frames that do
    /// parse, the stats/alert sequence is identical to calling `ingest`
    /// on each `message` field in input order; predictions are identical
    /// too (`classify_batch` is bit-identical to `classify` on category).
    pub fn ingest_frames(&self, frames: &[&str]) -> Vec<FrameOutcome> {
        let counters = self.counters.read();
        // Pass 0: parse every frame (no locks held; parsing is pure).
        let parse_start = Instant::now();
        let parsed: Vec<Option<SyslogMessage>> =
            frames.iter().map(|f| syslog_model::parse(f).ok()).collect();
        counters.parse_us.record_duration_us(parse_start.elapsed());
        // Pass 1: totals + pre-filter in input order. The edit-distance
        // scans run first so concurrent batches prefilter in parallel; the
        // counting itself is wait-free atomics.
        let mut kept_indices = Vec::with_capacity(frames.len());
        let noise: Vec<bool> = parsed
            .iter()
            .map(|msg| match (msg, &self.prefilter) {
                (Some(msg), Some(f)) => f.is_noise(&msg.message),
                _ => false,
            })
            .collect();
        for (i, msg) in parsed.iter().enumerate() {
            if msg.is_none() {
                continue;
            }
            counters.total.inc();
            if noise[i] {
                counters.prefiltered.inc();
            } else {
                kept_indices.push(i);
            }
        }
        // Pass 2: classify all survivors at once (the batched CSR path,
        // sharing the token→id cache across the whole batch).
        let kept_messages: Vec<&str> = kept_indices
            .iter()
            .map(|&i| {
                parsed[i]
                    .as_ref()
                    .expect("kept index parsed")
                    .message
                    .as_str()
            })
            .collect();
        let predictions = self.classifier.classify_batch(&kept_messages);
        // Pass 3: merge counters and alerts back in input order (same
        // sequence as the scalar path).
        let mut slots: Vec<Option<Prediction>> = vec![None; frames.len()];
        let mut categories = Vec::with_capacity(kept_indices.len());
        for (&i, prediction) in kept_indices.iter().zip(predictions) {
            counters.per_category[prediction.category.index()].inc();
            categories.push(prediction.category);
            if prediction.category.is_actionable() {
                if let Some(sink) = &self.sink {
                    if self.alert_permitted(prediction.category) {
                        counters.alerts.inc();
                        sink.send(Alert {
                            category: prediction.category,
                            message: parsed[i]
                                .as_ref()
                                .expect("kept index parsed")
                                .message
                                .clone(),
                            action: prediction.category.suggested_action().to_string(),
                        });
                    }
                }
            }
            slots[i] = Some(prediction);
        }
        self.quality.record(&categories);
        drop(counters);
        parsed
            .into_iter()
            .zip(slots)
            .map(|(msg, prediction)| match (msg, prediction) {
                (Some(message), Some(prediction)) => FrameOutcome::Classified {
                    message,
                    prediction,
                },
                (Some(message), None) => FrameOutcome::Prefiltered { message },
                (None, _) => FrameOutcome::ParseError,
            })
            .collect()
    }

    /// Check and update the per-category alert budget.
    fn alert_permitted(&self, category: Category) -> bool {
        let Some(max) = self.throttle else {
            return true;
        };
        let mut state = self.window_state.lock();
        let (counts, seen) = &mut *state;
        *seen += 1;
        if *seen > self.throttle_window {
            *counts = [0; 8];
            *seen = 1;
        }
        let slot = &mut counts[category.index()];
        if *slot < max {
            *slot += 1;
            true
        } else {
            false
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> MonitorStats {
        self.counters.read().snapshot()
    }

    /// Move this service's counters onto a shared telemetry registry: the
    /// live instruments become registry-backed (visible on `/metrics`),
    /// accumulated values carry over exactly, and the classifier gets the
    /// chance to register its own stage instruments. Idempotent for a
    /// given registry — re-attaching never double-counts.
    pub fn attach_telemetry(&self, registry: &obs::Registry) {
        let mut counters = self.counters.write();
        let registered = ServiceCounters::registered(registry);
        registered.carry_over(&counters);
        *counters = registered;
        drop(counters);
        self.quality.attach_telemetry(registry);
        self.classifier.attach_telemetry(registry);
    }

    /// Combine this service's counters with the ingest-layer counters of
    /// the transport feeding it into one health snapshot (no batching
    /// stage: the `batching` section is zeroed).
    pub fn health(&self, ingest: IngestSnapshot) -> HealthSnapshot {
        self.health_with_batching(ingest, BatchSnapshot::default())
    }

    /// [`MonitorService::health`] for a transport with a micro-batching
    /// stage: its batch counters ride along in the same snapshot.
    pub fn health_with_batching(
        &self,
        ingest: IngestSnapshot,
        batching: BatchSnapshot,
    ) -> HealthSnapshot {
        HealthSnapshot {
            monitor: self.stats(),
            ingest,
            batching,
        }
    }

    /// The classifier in use.
    pub fn classifier_name(&self) -> String {
        self.classifier.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub classifier: thermal if the text mentions heat, else
    /// unimportant.
    struct Stub;

    impl TextClassifier for Stub {
        fn name(&self) -> String {
            "stub".to_string()
        }

        fn classify(&self, message: &str) -> Prediction {
            if message.contains("hot") {
                Prediction::bare(Category::ThermalIssue)
            } else {
                Prediction::bare(Category::Unimportant)
            }
        }
    }

    #[test]
    fn counts_and_alerts() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub)).with_alert_sink(sink.clone());
        svc.ingest("cpu is hot");
        svc.ingest("nothing going on");
        svc.ingest("gpu also hot");
        let stats = svc.stats();
        assert_eq!(stats.total, 3);
        assert_eq!(stats.count(Category::ThermalIssue), 2);
        assert_eq!(stats.count(Category::Unimportant), 1);
        assert_eq!(stats.alerts, 2);
        let alerts = sink.take();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].category, Category::ThermalIssue);
        assert!(!alerts[0].action.is_empty());
    }

    #[test]
    fn prefilter_short_circuits_classification() {
        let mut filter = NoiseFilter::empty(2);
        filter.add_pattern("known noise line");
        let svc = MonitorService::new(Arc::new(Stub)).with_prefilter(filter);
        assert!(svc.ingest("known noise line").is_none());
        assert!(svc.ingest("cpu is hot").is_some());
        let stats = svc.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.prefiltered, 1);
        assert_eq!(stats.count(Category::ThermalIssue), 1);
    }

    #[test]
    fn unimportant_never_alerts() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub)).with_alert_sink(sink.clone());
        svc.ingest("nothing going on");
        assert!(sink.is_empty());
        assert_eq!(svc.stats().alerts, 0);
    }

    #[test]
    fn batch_ingest() {
        let svc = MonitorService::new(Arc::new(Stub));
        let out = svc.ingest_batch(&["hot", "cold", "hot again"]);
        assert_eq!(out.len(), 3);
        assert_eq!(svc.stats().total, 3);
    }

    #[test]
    fn alert_throttle_caps_per_category_volume() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub))
            .with_alert_sink(sink.clone())
            .with_alert_throttle(3, 100);
        // A thermal runaway: 50 identical actionable messages.
        for i in 0..50 {
            svc.ingest(&format!("cpu {i} hot"));
        }
        assert_eq!(sink.len(), 3, "throttle must cap the email storm");
        assert_eq!(svc.stats().alerts, 3);
        // Classification counters are NOT throttled.
        assert_eq!(svc.stats().count(Category::ThermalIssue), 50);
    }

    #[test]
    fn alert_throttle_window_resets() {
        let sink = Arc::new(CollectingSink::new());
        let svc = MonitorService::new(Arc::new(Stub))
            .with_alert_sink(sink.clone())
            .with_alert_throttle(1, 10);
        for i in 0..25 {
            svc.ingest(&format!("cpu {i} hot"));
        }
        // Windows of 10 actionable messages → one alert each.
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn health_combines_monitor_and_ingest_counters() {
        let svc = MonitorService::new(Arc::new(Stub));
        svc.ingest("cpu is hot");
        let ingest = IngestSnapshot {
            frames: 3,
            bytes: 120,
            ingested: 1,
            parse_errors: 1,
            shed: 1,
            decode_dropped: 0,
            connections: 2,
            idle_closed: 0,
        };
        let health = svc.health(ingest);
        assert_eq!(health.monitor.total, 1);
        assert_eq!(health.ingest.total_dropped(), 2);
        assert_eq!(health.batching, BatchSnapshot::default());
        // The combined snapshot serializes as one document (the dashboard
        // wire format).
        let json = serde_json::to_string(&health).unwrap();
        assert!(json.contains("\"shed\""));
        assert!(json.contains("\"batch_size_hist\""));
    }

    #[test]
    fn ingest_frames_matches_scalar_ingest_sequence() {
        let frames = [
            "<13>Oct 11 22:14:15 cn0001 kernel: cpu is hot",
            "", // the one frame the permissive parser rejects
            "<13>Oct 11 22:14:16 cn0002 systemd: nothing going on",
            "free-form line that is hot",
        ];
        let sink_b = Arc::new(CollectingSink::new());
        let batch_svc = MonitorService::new(Arc::new(Stub)).with_alert_sink(sink_b.clone());
        let outcomes = batch_svc.ingest_frames(&frames);
        assert_eq!(outcomes.len(), 4);
        assert!(matches!(outcomes[1], FrameOutcome::ParseError));

        // Scalar reference: parse, then per-message ingest.
        let sink_s = Arc::new(CollectingSink::new());
        let scalar_svc = MonitorService::new(Arc::new(Stub)).with_alert_sink(sink_s.clone());
        let mut scalar: Vec<Option<Prediction>> = Vec::new();
        for f in &frames {
            match syslog_model::parse(f) {
                Ok(msg) => scalar.push(scalar_svc.ingest(&msg.message)),
                Err(_) => scalar.push(None),
            }
        }
        assert_eq!(batch_svc.stats(), scalar_svc.stats());
        assert_eq!(sink_b.take(), sink_s.take());
        for (outcome, reference) in outcomes.iter().zip(&scalar) {
            match (outcome, reference) {
                (FrameOutcome::Classified { prediction, .. }, Some(r)) => {
                    assert_eq!(prediction.category, r.category)
                }
                (FrameOutcome::ParseError, None) => {}
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn model_quality_accounting_matches_between_scalar_and_batch() {
        use crate::model_quality::ModelQuality;
        let messages: Vec<String> = (0..60)
            .map(|i| {
                if i % 3 == 0 {
                    format!("cpu {i} hot")
                } else {
                    format!("nothing {i}")
                }
            })
            .collect();
        let refs: Vec<&str> = messages.iter().map(String::as_str).collect();
        let scalar_svc = MonitorService::new(Arc::new(Stub))
            .with_model_quality(ModelQuality::with_config(20, 20));
        let batch_svc = MonitorService::new(Arc::new(Stub))
            .with_model_quality(ModelQuality::with_config(20, 20));
        for m in &refs {
            scalar_svc.ingest(m);
        }
        batch_svc.ingest_batch(&refs);
        assert!(scalar_svc.model_quality().baseline_frozen());
        assert_eq!(
            scalar_svc.model_quality().psi(),
            batch_svc.model_quality().psi()
        );
        // The counters land on a registry via attach_telemetry.
        let registry = obs::Registry::new();
        batch_svc.attach_telemetry(&registry);
        assert_eq!(
            registry.counter_value(
                "hetsyslog_model_predictions_total",
                &[("category", Category::ThermalIssue.label())]
            ),
            Some(20)
        );
    }

    #[test]
    fn ingest_frames_respects_prefilter_and_returns_message() {
        let mut filter = NoiseFilter::empty(2);
        filter.add_pattern("known noise line");
        let svc = MonitorService::new(Arc::new(Stub)).with_prefilter(filter);
        let outcomes = svc.ingest_frames(&[
            "<13>Oct 11 22:14:15 cn0001 app: known noise line",
            "<13>Oct 11 22:14:15 cn0001 app: cpu is hot",
        ]);
        match &outcomes[0] {
            FrameOutcome::Prefiltered { message } => {
                assert_eq!(message.message, "known noise line")
            }
            other => panic!("expected Prefiltered, got {other:?}"),
        }
        match &outcomes[1] {
            FrameOutcome::Classified {
                message,
                prediction,
            } => {
                assert_eq!(message.hostname.as_deref(), Some("cn0001"));
                assert_eq!(prediction.category, Category::ThermalIssue);
            }
            other => panic!("expected Classified, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.prefiltered, 1);
    }

    #[test]
    fn batch_histogram_bucket_edges() {
        assert_eq!(batch_size_bucket(1), 0);
        assert_eq!(batch_size_bucket(2), 1);
        assert_eq!(batch_size_bucket(3), 1);
        assert_eq!(batch_size_bucket(4), 2);
        assert_eq!(batch_size_bucket(255), 7);
        assert_eq!(batch_size_bucket(256), 8);
        assert_eq!(batch_size_bucket(100_000), 8);
        assert_eq!(latency_bucket_us(0), 0);
        assert_eq!(latency_bucket_us(1), 0);
        assert_eq!(latency_bucket_us(2), 1);
        assert_eq!(latency_bucket_us(1 << 25), LATENCY_BUCKETS - 1);
        // Upper bounds cover their buckets.
        assert_eq!(latency_bucket_upper_us(0), 1);
        assert_eq!(latency_bucket_upper_us(1), 3);
    }

    #[test]
    fn latency_percentile_from_histogram() {
        let mut hist = [0u64; LATENCY_BUCKETS];
        assert_eq!(latency_percentile_us(&hist, 99.0), 0);
        // 99 fast frames in bucket 0, one slow frame in bucket 10.
        hist[0] = 99;
        hist[10] = 1;
        assert_eq!(latency_percentile_us(&hist, 50.0), 1);
        assert_eq!(
            latency_percentile_us(&hist, 99.0),
            latency_bucket_upper_us(0)
        );
        assert_eq!(
            latency_percentile_us(&hist, 100.0),
            latency_bucket_upper_us(10)
        );
    }

    #[test]
    fn attach_telemetry_carries_counts_and_never_double_counts() {
        let svc = MonitorService::new(Arc::new(Stub));
        svc.ingest("cpu is hot");
        svc.ingest("quiet");
        let before = svc.stats();

        let registry = obs::Registry::new();
        svc.attach_telemetry(&registry);
        // Accumulated values carried over onto the registry instruments…
        assert_eq!(svc.stats(), before);
        assert_eq!(
            registry.counter_value("hetsyslog_monitor_messages_total", &[]),
            Some(2)
        );
        assert_eq!(
            registry.counter_value(
                "hetsyslog_monitor_classified_total",
                &[("category", Category::ThermalIssue.label())]
            ),
            Some(1)
        );
        // …re-attaching the same registry is a no-op…
        svc.attach_telemetry(&registry);
        assert_eq!(svc.stats(), before);
        // …and new ingests hit the shared instruments directly.
        svc.ingest("gpu also hot");
        assert_eq!(
            registry.counter_value("hetsyslog_monitor_messages_total", &[]),
            Some(3)
        );
    }

    #[test]
    fn service_is_share_safe_across_threads() {
        let svc = Arc::new(MonitorService::new(Arc::new(Stub)));
        let mut handles = Vec::new();
        for t in 0..4 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    svc.ingest(&format!("msg {t} {i} hot"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.stats().total, 200);
        assert_eq!(svc.stats().count(Category::ThermalIssue), 200);
    }
}
