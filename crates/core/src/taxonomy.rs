//! The issue taxonomy of §4.1.
//!
//! The paper deliberately classifies at a *generalized, actionable* level:
//! "Memory Issues" rather than "segmentation fault", because a syslog line
//! is the first step of an investigation, not a diagnosis. These are the
//! eight categories the Darwin dataset was labeled with (Table 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the eight syslog issue categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Hardware problems not covered by a more specific category.
    HardwareIssue,
    /// Messages useful for intrusion detection / security review.
    IntrusionDetection,
    /// Memory errors, allocation failures, DIMM events.
    MemoryIssue,
    /// SSH connection lifecycle events.
    SshConnection,
    /// Slurm workload-manager issues.
    SlurmIssue,
    /// Thermal events: temperatures, throttling, fans.
    ThermalIssue,
    /// USB device attach/detach and errors.
    UsbDevice,
    /// Noise the administrators chose to ignore.
    Unimportant,
}

impl Category {
    /// All categories in the paper's Table 2 order.
    pub const ALL: [Category; 8] = [
        Category::HardwareIssue,
        Category::IntrusionDetection,
        Category::MemoryIssue,
        Category::SshConnection,
        Category::SlurmIssue,
        Category::ThermalIssue,
        Category::UsbDevice,
        Category::Unimportant,
    ];

    /// The label exactly as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            Category::HardwareIssue => "Hardware Issue",
            Category::IntrusionDetection => "Intrusion Detection",
            Category::MemoryIssue => "Memory Issue",
            Category::SshConnection => "SSH-Connection",
            Category::SlurmIssue => "Slurm Issues",
            Category::ThermalIssue => "Thermal Issue",
            Category::UsbDevice => "USB-Device",
            Category::Unimportant => "Unimportant",
        }
    }

    /// Dense index (stable, matches [`Category::ALL`] order).
    pub fn index(self) -> usize {
        Category::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category present in ALL")
    }

    /// Category from a dense index.
    pub fn from_index(index: usize) -> Option<Category> {
        Category::ALL.get(index).copied()
    }

    /// Parse a label leniently: case-insensitive, ignores punctuation
    /// differences, and accepts common aliases and singular/plural
    /// variations (LLM output parsing needs this — the models rarely echo
    /// the label byte-for-byte).
    pub fn parse_label(text: &str) -> Option<Category> {
        let norm: String = text
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "hardwareissue" | "hardwareissues" | "hardware" | "hardwarefailure"
            | "hardwareproblem" => Some(Category::HardwareIssue),
            "intrusiondetection" | "security" | "securityevent" | "intrusion" => {
                Some(Category::IntrusionDetection)
            }
            "memoryissue" | "memoryissues" | "memory" | "memoryerror" => {
                Some(Category::MemoryIssue)
            }
            "sshconnection" | "ssh" | "sshconnections" => Some(Category::SshConnection),
            "slurmissues" | "slurmissue" | "slurm" => Some(Category::SlurmIssue),
            "thermalissue" | "thermalissues" | "thermal" => Some(Category::ThermalIssue),
            "usbdevice" | "usb" | "usbdevices" => Some(Category::UsbDevice),
            "unimportant" | "unimportantnoise" | "noise" => Some(Category::Unimportant),
            _ => None,
        }
    }

    /// One-line description used in documentation and LLM prompts.
    pub fn description(self) -> &'static str {
        match self {
            Category::HardwareIssue => {
                "a hardware fault not covered by another category (PSU, fan, PCIe, clock)"
            }
            Category::IntrusionDetection => {
                "activity relevant to security review: sessions, privilege use, auth events"
            }
            Category::MemoryIssue => "memory errors, failed allocations, DIMM or HBM events",
            Category::SshConnection => "SSH connection opens, closes, failures and preauth events",
            Category::SlurmIssue => "Slurm daemon errors, node registration and job problems",
            Category::ThermalIssue => "temperatures above threshold, CPU throttling, fan response",
            Category::UsbDevice => "USB device attach, detach, enumeration and errors",
            Category::Unimportant => "routine noise the administrators chose to ignore",
        }
    }

    /// Suggested operator action (the "actionable steps" of §4.1).
    pub fn suggested_action(self) -> &'static str {
        match self {
            Category::HardwareIssue => "schedule hardware diagnostics on the node",
            Category::IntrusionDetection => "correlate with access-control logs for review",
            Category::MemoryIssue => "run memory diagnostics or replace the suspect module",
            Category::SshConnection => "review access patterns when unexpected",
            Category::SlurmIssue => "check slurmd/slurmctld state and node registration",
            Category::ThermalIssue => "verify rack cooling and CPU load distribution",
            Category::UsbDevice => "confirm the attach/detach event was authorized",
            Category::Unimportant => "no action",
        }
    }

    /// Whether an email/alert should be triggered for this category.
    pub fn is_actionable(self) -> bool {
        !matches!(self, Category::Unimportant)
    }

    /// Unique-message counts from the paper's Table 2 (the class balance
    /// the synthetic corpus reproduces).
    pub fn paper_count(self) -> usize {
        match self {
            Category::HardwareIssue => 3_582,
            Category::IntrusionDetection => 6_599,
            Category::MemoryIssue => 12_449,
            Category::SshConnection => 3_615,
            Category::SlurmIssue => 46,
            Category::ThermalIssue => 59_411,
            Category::UsbDevice => 4_139,
            Category::Unimportant => 106_552,
        }
    }

    /// All labels, in [`Category::ALL`] order (handy for `Dataset`).
    pub fn all_labels() -> Vec<String> {
        Category::ALL
            .iter()
            .map(|c| c.label().to_string())
            .collect()
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Category {
    type Err = String;

    /// Lenient parsing via [`Category::parse_label`].
    fn from_str(s: &str) -> Result<Category, String> {
        Category::parse_label(s).ok_or_else(|| format!("unknown category {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_categories_with_unique_labels() {
        assert_eq!(Category::ALL.len(), 8);
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn index_roundtrip() {
        for (i, &c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Category::from_index(i), Some(c));
        }
        assert_eq!(Category::from_index(8), None);
    }

    #[test]
    fn labels_parse_back() {
        for &c in &Category::ALL {
            assert_eq!(
                Category::parse_label(c.label()),
                Some(c),
                "label {}",
                c.label()
            );
        }
    }

    #[test]
    fn lenient_parsing() {
        assert_eq!(
            Category::parse_label("thermal"),
            Some(Category::ThermalIssue)
        );
        assert_eq!(
            Category::parse_label("Thermal Issue."),
            Some(Category::ThermalIssue)
        );
        assert_eq!(
            Category::parse_label("SSH Connection"),
            Some(Category::SshConnection)
        );
        assert_eq!(
            Category::parse_label("security"),
            Some(Category::IntrusionDetection)
        );
        assert_eq!(
            Category::parse_label("Unimportant Noise"),
            Some(Category::Unimportant)
        );
        assert_eq!(Category::parse_label("power grid failure"), None);
        assert_eq!(Category::parse_label(""), None);
    }

    #[test]
    fn table2_totals() {
        let total: usize = Category::ALL.iter().map(|c| c.paper_count()).sum();
        // ~196k unique messages (§4.4.1).
        assert_eq!(total, 196_393);
    }

    #[test]
    fn only_unimportant_is_unactionable() {
        for &c in &Category::ALL {
            assert_eq!(c.is_actionable(), c != Category::Unimportant);
        }
    }

    #[test]
    fn from_str_trait() {
        assert_eq!("thermal".parse::<Category>(), Ok(Category::ThermalIssue));
        assert_eq!("USB-Device".parse::<Category>(), Ok(Category::UsbDevice));
        assert!("quantum flux".parse::<Category>().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Category::SlurmIssue).unwrap();
        let back: Category = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Category::SlurmIssue);
    }
}
