//! Model persistence — train once, deploy on the collection system.
//!
//! The paper's Future Work opens with "deploying our trained models on the
//! new data we stored in our collection system". That requires a trained
//! pipeline to survive a process boundary: [`SavedPipeline`] bundles the
//! fitted [`FeaturePipeline`] with any of the eight models (as a closed
//! enum, since trait objects cannot round-trip through serde) and
//! serializes to a single JSON document.

use crate::classify::{Prediction, TextClassifier};
use crate::features::{FeatureConfig, FeaturePipeline};
use crate::taxonomy::Category;
use hetsyslog_ml::{
    BatchClassifier, Classifier, ComplementNaiveBayes, KNearestNeighbors, LinearSvc,
    LogisticRegression, NearestCentroid, RandomForest, RidgeClassifier, SgdClassifier,
};
use serde::{Deserialize, Serialize};

/// A serializable fitted model (closed enum over the paper's suite).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum SavedModel {
    /// Multinomial logistic regression.
    LogisticRegression(LogisticRegression),
    /// One-vs-rest ridge.
    Ridge(RidgeClassifier),
    /// k-nearest neighbours (stores its training set).
    Knn(KNearestNeighbors),
    /// Random forest.
    RandomForest(RandomForest),
    /// Linear SVC.
    LinearSvc(LinearSvc),
    /// Log-loss SGD.
    Sgd(SgdClassifier),
    /// Nearest centroid.
    NearestCentroid(NearestCentroid),
    /// Complement naive Bayes.
    ComplementNb(ComplementNaiveBayes),
}

impl SavedModel {
    /// Borrow as the common classifier interface.
    pub fn as_classifier(&self) -> &dyn Classifier {
        match self {
            SavedModel::LogisticRegression(m) => m,
            SavedModel::Ridge(m) => m,
            SavedModel::Knn(m) => m,
            SavedModel::RandomForest(m) => m,
            SavedModel::LinearSvc(m) => m,
            SavedModel::Sgd(m) => m,
            SavedModel::NearestCentroid(m) => m,
            SavedModel::ComplementNb(m) => m,
        }
    }

    /// Borrow as the batch-scoring interface (every suite member has a
    /// CSR kernel or the row-parallel fallback).
    pub fn as_batch_classifier(&self) -> &dyn BatchClassifier {
        match self {
            SavedModel::LogisticRegression(m) => m,
            SavedModel::Ridge(m) => m,
            SavedModel::Knn(m) => m,
            SavedModel::RandomForest(m) => m,
            SavedModel::LinearSvc(m) => m,
            SavedModel::Sgd(m) => m,
            SavedModel::NearestCentroid(m) => m,
            SavedModel::ComplementNb(m) => m,
        }
    }

    /// Mutable access (re-fitting a loaded model).
    pub fn as_classifier_mut(&mut self) -> &mut dyn Classifier {
        match self {
            SavedModel::LogisticRegression(m) => m,
            SavedModel::Ridge(m) => m,
            SavedModel::Knn(m) => m,
            SavedModel::RandomForest(m) => m,
            SavedModel::LinearSvc(m) => m,
            SavedModel::Sgd(m) => m,
            SavedModel::NearestCentroid(m) => m,
            SavedModel::ComplementNb(m) => m,
        }
    }

    /// Construct an *unfitted* model by its Figure 3 display name (used by
    /// the CLI's `--model` flag). Case-insensitive; accepts short aliases.
    pub fn by_name(name: &str) -> Option<SavedModel> {
        let norm: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match norm.as_str() {
            "logisticregression" | "logreg" | "lr" => {
                SavedModel::LogisticRegression(LogisticRegression::new(Default::default()))
            }
            "ridgeclassifier" | "ridge" => {
                SavedModel::Ridge(RidgeClassifier::new(Default::default()))
            }
            "knn" | "knearestneighbors" => {
                SavedModel::Knn(KNearestNeighbors::new(Default::default()))
            }
            "randomforest" | "forest" | "rf" => {
                SavedModel::RandomForest(RandomForest::new(Default::default()))
            }
            "linearsvc" | "svc" | "svm" => {
                SavedModel::LinearSvc(LinearSvc::new(Default::default()))
            }
            "loglosssgd" | "sgd" => SavedModel::Sgd(SgdClassifier::new(Default::default())),
            "nearestcentroid" | "centroid" | "nc" => {
                SavedModel::NearestCentroid(NearestCentroid::new())
            }
            "complementnaivebayes" | "complementnb" | "cnb" | "nb" => {
                SavedModel::ComplementNb(ComplementNaiveBayes::new(Default::default()))
            }
            _ => return None,
        })
    }
}

/// A fully serializable trained classification pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedPipeline {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The fitted preprocessing pipeline (vocabulary + idf weights).
    pub features: FeaturePipeline,
    /// The fitted model.
    pub model: SavedModel,
}

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

impl SavedPipeline {
    /// Train `model` on `corpus` with `feature_config`, producing a
    /// persistable pipeline.
    pub fn train(
        feature_config: FeatureConfig,
        mut model: SavedModel,
        corpus: &[(String, Category)],
    ) -> SavedPipeline {
        let mut features = FeaturePipeline::new(feature_config);
        let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
        let vectors = features.fit_transform(&messages);
        let labels: Vec<usize> = corpus.iter().map(|(_, c)| c.index()).collect();
        let data = hetsyslog_ml::Dataset::new(vectors, labels, Category::all_labels());
        model.as_classifier_mut().fit(&data);
        SavedPipeline {
            version: FORMAT_VERSION,
            features,
            model,
        }
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON, rejecting unknown format versions.
    pub fn from_json(json: &str) -> Result<SavedPipeline, String> {
        let p: SavedPipeline = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if p.version != FORMAT_VERSION {
            return Err(format!(
                "unsupported pipeline format version {} (expected {FORMAT_VERSION})",
                p.version
            ));
        }
        Ok(p)
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().map_err(std::io::Error::other)?)
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> Result<SavedPipeline, String> {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        SavedPipeline::from_json(&json)
    }
}

impl TextClassifier for SavedPipeline {
    fn name(&self) -> String {
        format!("TF-IDF + {} (saved)", self.model.as_classifier().name())
    }

    fn classify(&self, message: &str) -> Prediction {
        let x = self.features.transform(message);
        let idx = self.model.as_classifier().predict(&x);
        Prediction::bare(Category::from_index(idx).unwrap_or(Category::Unimportant))
    }

    fn classify_batch(&self, messages: &[&str]) -> Vec<Prediction> {
        // Deployed models take the same matrix-at-a-time path as the live
        // TraditionalPipeline.
        let matrix = self.features.transform_batch_csr(messages);
        self.model
            .as_batch_classifier()
            .predict_csr(&matrix)
            .into_iter()
            .map(|i| Prediction::bare(Category::from_index(i).unwrap_or(Category::Unimportant)))
            .collect()
    }
}

/// Recursively sort every object's keys (stable, lexicographic). Canonical
/// form for every JSON artifact the experiments emit: two runs that compute
/// the same values serialize to byte-identical text, which is what the
/// conformance runner's golden diffs and the determinism tests compare.
pub fn canonicalize_json(value: &mut serde_json::Value) {
    use serde_json::Value;
    match value {
        Value::Object(entries) => {
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            for (_, v) in entries.iter_mut() {
                canonicalize_json(v);
            }
        }
        Value::Array(items) => {
            for v in items.iter_mut() {
                canonicalize_json(v);
            }
        }
        _ => {}
    }
}

/// Serialize in canonical form: keys sorted at every depth, two-space
/// indentation, trailing newline. All committed `results/` goldens use
/// exactly this encoding.
pub fn to_canonical_json(value: &serde_json::Value) -> String {
    let mut v = value.clone();
    canonicalize_json(&mut v);
    let mut s = serde_json::to_string_pretty(&v).expect("canonical JSON serialization");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use textproc::TfidfConfig;

    fn corpus() -> Vec<(String, Category)> {
        let mut c = Vec::new();
        for i in 0..8 {
            c.push((
                format!("cpu {i} temperature above threshold clock throttled"),
                Category::ThermalIssue,
            ));
            c.push((
                format!("connection closed by port {i} preauth user"),
                Category::SshConnection,
            ));
        }
        c
    }

    fn cfg() -> FeatureConfig {
        FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        }
    }

    #[test]
    fn every_model_round_trips_with_identical_predictions() {
        let corpus = corpus();
        let names = ["lr", "ridge", "knn", "rf", "svc", "sgd", "nc", "cnb"];
        for name in names {
            let model = SavedModel::by_name(name).unwrap();
            let trained = SavedPipeline::train(cfg(), model, &corpus);
            let json = trained.to_json().unwrap();
            let loaded = SavedPipeline::from_json(&json).unwrap();
            for (m, want) in &corpus {
                assert_eq!(
                    loaded.classify(m).category,
                    trained.classify(m).category,
                    "{name}: prediction changed across serialization for {m:?}"
                );
                assert_eq!(trained.classify(m).category, *want, "{name} underfit");
            }
        }
    }

    #[test]
    fn by_name_aliases() {
        assert!(SavedModel::by_name("Random Forest").is_some());
        assert!(SavedModel::by_name("complement-nb").is_some());
        assert!(SavedModel::by_name("LINEAR SVC").is_some());
        assert!(SavedModel::by_name("made-up-model").is_none());
    }

    #[test]
    fn version_guard() {
        let corpus = corpus();
        let trained = SavedPipeline::train(cfg(), SavedModel::by_name("cnb").unwrap(), &corpus);
        let mut bad = trained.clone();
        bad.version = 99;
        let json = bad.to_json().unwrap();
        assert!(SavedPipeline::from_json(&json).is_err());
    }

    #[test]
    fn file_round_trip() {
        let corpus = corpus();
        let trained = SavedPipeline::train(cfg(), SavedModel::by_name("cnb").unwrap(), &corpus);
        let dir = std::env::temp_dir().join("hetsyslog_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        trained.save(&path).unwrap();
        let loaded = SavedPipeline::load(&path).unwrap();
        assert_eq!(
            loaded
                .classify("cpu 9 temperature above threshold")
                .category,
            Category::ThermalIssue
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    use crate::classify::TraditionalPipeline;

    #[test]
    fn matches_traditional_pipeline_predictions() {
        // SavedPipeline and TraditionalPipeline must agree given the same
        // model family and data.
        let corpus = corpus();
        let saved = SavedPipeline::train(cfg(), SavedModel::by_name("cnb").unwrap(), &corpus);
        let live = TraditionalPipeline::train(
            cfg(),
            Box::new(ComplementNaiveBayes::new(Default::default())),
            &corpus,
        );
        for (m, _) in &corpus {
            assert_eq!(saved.classify(m).category, live.classify(m).category);
        }
    }

    #[test]
    fn canonical_json_sorts_keys_at_every_depth() {
        let row_yx = serde_json::json!({"y": true, "x": false});
        let row_xy = serde_json::json!({"x": false, "y": true});
        let a = serde_json::json!({
            "zeta": {"b": 1, "a": 2},
            "alpha": [row_yx],
            "mid": 3.5,
        });
        let b = serde_json::json!({
            "mid": 3.5,
            "alpha": [row_xy],
            "zeta": {"a": 2, "b": 1},
        });
        assert_eq!(to_canonical_json(&a), to_canonical_json(&b));
        let text = to_canonical_json(&a);
        let alpha = text.find("\"alpha\"").unwrap();
        let mid = text.find("\"mid\"").unwrap();
        let zeta = text.find("\"zeta\"").unwrap();
        assert!(alpha < mid && mid < zeta, "top-level keys must be sorted");
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn canonical_json_round_trips() {
        let v = serde_json::json!({"n": 3, "f": 0.1, "s": "x", "arr": [1, 2]});
        let text = to_canonical_json(&v);
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(to_canonical_json(&back), text);
    }
}
