//! Real-time heterogeneous syslog classification — the paper's primary
//! contribution, assembled from the workspace substrates.
//!
//! The pieces, in the order a message flows through them:
//!
//! 1. [`taxonomy`] — the eight actionable issue categories of §4.1.
//! 2. [`filter`] — the "Unimportant" pre-filter (edit-distance blacklist at
//!    a tight threshold) that the paper's conclusion recommends running
//!    before classification.
//! 3. [`features`] — tokenize → lemmatize → TF-IDF (§4.3), producing both
//!    feature vectors and the per-category explanatory token lists of
//!    Table 1.
//! 4. [`classify`] — the [`classify::TextClassifier`] interface over raw
//!    message text, with adapters for the traditional ML models and the
//!    edit-distance bucketing baseline.
//! 5. [`explain`] — per-decision explanations (top contributing tokens).
//! 6. [`service`] — the monitoring front end: category counters, alert
//!    hooks for actionable categories.
//! 7. [`model_quality`] — serving-time model health: prediction-share
//!    counters and the PSI drift gauge comparing recent predictions to a
//!    frozen startup baseline.
//! 8. [`eval`] — the evaluation harness that produces the paper's
//!    Figure 2/Figure 3 artifacts.

pub mod classify;
pub mod eval;
pub mod explain;
pub mod features;
pub mod filter;
pub mod model_quality;
pub mod persist;
pub mod service;
pub mod taxonomy;

pub use classify::{BucketBaseline, Prediction, TextClassifier, TraditionalPipeline};
pub use explain::Explanation;
pub use features::{FeatureConfig, FeaturePipeline};
pub use filter::NoiseFilter;
pub use model_quality::ModelQuality;
pub use persist::{canonicalize_json, to_canonical_json, SavedModel, SavedPipeline};
pub use service::{
    batch_size_bucket, latency_bucket_upper_us, latency_bucket_us, latency_percentile_us, Alert,
    BatchSnapshot, FrameOutcome, HealthSnapshot, IngestSnapshot, MonitorService, MonitorStats,
    BATCH_SIZE_BUCKETS, LATENCY_BUCKETS,
};
pub use taxonomy::Category;
