//! Text-level classification interface and adapters.
//!
//! [`TextClassifier`] is the system-facing trait: raw message text in,
//! [`Prediction`] out. Three families implement it:
//!
//! * [`TraditionalPipeline`] — §4.3 preprocessing + any `hetsyslog-ml`
//!   model (the Figure 3 suite),
//! * [`BucketBaseline`] — the Background §3 edit-distance system,
//! * `llmsim`'s generative and zero-shot classifiers (in their own crate).

use crate::explain::Explanation;
use crate::features::{FeatureConfig, FeaturePipeline};
use crate::taxonomy::Category;
use editdist::bucketing::{BucketStore, BucketingConfig};
use hetsyslog_ml::{BatchClassifier, Classifier, Dataset};
use parking_lot::RwLock;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// A classification decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The chosen category.
    pub category: Category,
    /// Confidence in `[0, 1]` when the model provides one.
    pub confidence: Option<f64>,
    /// Why, when the model can explain itself.
    pub explanation: Option<Explanation>,
}

impl Prediction {
    /// A bare prediction with no confidence or explanation.
    pub fn bare(category: Category) -> Prediction {
        Prediction {
            category,
            confidence: None,
            explanation: None,
        }
    }
}

/// A classifier over raw syslog message text.
pub trait TextClassifier: Send + Sync {
    /// Model display name.
    fn name(&self) -> String;

    /// Classify one message.
    fn classify(&self, message: &str) -> Prediction;

    /// Classify a batch (parallel by default).
    fn classify_batch(&self, messages: &[&str]) -> Vec<Prediction> {
        messages.par_iter().map(|m| self.classify(m)).collect()
    }

    /// Register this classifier's internal stage instruments (per-stage
    /// latency histograms, matrix counters) with a telemetry registry.
    /// The default is a no-op: classifiers without internal stages have
    /// nothing to report, and an un-attached classifier records nothing.
    fn attach_telemetry(&self, _registry: &obs::Registry) {}
}

/// Registered handles for the two CSR stages of the batch classify path.
/// Held behind an `RwLock<Option<..>>` so an un-attached pipeline pays one
/// relaxed read-lock check and nothing else.
struct CsrStageMetrics {
    transform_us: Arc<obs::Histogram>,
    predict_us: Arc<obs::Histogram>,
    rows: Arc<obs::Counter>,
    nnz: Arc<obs::Counter>,
    matrix_bytes: Arc<obs::Counter>,
    /// Per-prediction confidence margin (winner's decision-score gap to
    /// the runner-up) in thousandths, labeled by model. Shrinking margins
    /// are the serving-time symptom of a model drifting off its training
    /// distribution.
    margin_milli: Arc<obs::Histogram>,
}

/// §4.3 preprocessing + a traditional ML model.
pub struct TraditionalPipeline {
    pipeline: FeaturePipeline,
    model: Box<dyn BatchClassifier>,
    explain_top_k: usize,
    stage_metrics: RwLock<Option<CsrStageMetrics>>,
}

impl TraditionalPipeline {
    /// Train `model` on `corpus` with the given feature configuration.
    pub fn train(
        feature_config: FeatureConfig,
        mut model: Box<dyn BatchClassifier>,
        corpus: &[(String, Category)],
    ) -> TraditionalPipeline {
        let mut pipeline = FeaturePipeline::new(feature_config);
        let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
        let features = pipeline.fit_transform(&messages);
        let labels: Vec<usize> = corpus.iter().map(|(_, c)| c.index()).collect();
        let data = Dataset::new(features, labels, Category::all_labels());
        model.fit(&data);
        TraditionalPipeline {
            pipeline,
            model,
            explain_top_k: 5,
            stage_metrics: RwLock::new(None),
        }
    }

    /// The fitted feature pipeline.
    pub fn features(&self) -> &FeaturePipeline {
        &self.pipeline
    }

    /// The underlying model.
    pub fn model(&self) -> &dyn Classifier {
        self.model.as_ref()
    }
}

impl TextClassifier for TraditionalPipeline {
    fn name(&self) -> String {
        format!("TF-IDF + {}", self.model.name())
    }

    fn classify(&self, message: &str) -> Prediction {
        let x = self.pipeline.transform(message);
        let idx = self.model.predict(&x);
        let category = Category::from_index(idx).unwrap_or(Category::Unimportant);
        let top = self
            .pipeline
            .top_contributing_tokens(message, self.explain_top_k);
        let rationale = match top.first() {
            Some((t, _)) => format!(
                "{} feature weights dominated by '{t}'; category '{category}'",
                self.model.name()
            ),
            None => format!(
                "no known vocabulary in message; {} fell back to '{category}'",
                self.model.name()
            ),
        };
        Prediction {
            category,
            confidence: None,
            explanation: Some(Explanation::new(top, rationale)),
        }
    }

    fn classify_batch(&self, messages: &[&str]) -> Vec<Prediction> {
        // Matrix-at-a-time: vectorize into one CSR matrix, score it with
        // the model's batch kernel. Explanations are skipped on the batch
        // path (they are for interactive use); the predictions themselves
        // are bit-identical to per-message `classify`.
        let metrics = self.stage_metrics.read();
        let t0 = metrics.as_ref().map(|_| Instant::now());
        let matrix = self.pipeline.transform_batch_csr(messages);
        let t1 = t0.map(|t0| {
            let now = Instant::now();
            if let Some(m) = metrics.as_ref() {
                m.transform_us.record_duration_us(now - t0);
                m.rows.add(matrix.n_rows() as u64);
                m.nnz.add(matrix.nnz() as u64);
                m.matrix_bytes.add(matrix.heap_bytes() as u64);
            }
            now
        });
        // The scored kernel reuses the plain kernel's accumulation and
        // decision rule, so predictions stay bit-identical; the margins
        // only exist to feed the telemetry histogram, so an un-attached
        // pipeline takes the plain path.
        let (indices, margins) = if metrics.is_some() {
            self.model.predict_csr_scored(&matrix)
        } else {
            (self.model.predict_csr(&matrix), None)
        };
        if let (Some(t1), Some(m)) = (t1, metrics.as_ref()) {
            m.predict_us.record_duration_us(t1.elapsed());
            if let Some(margins) = &margins {
                for &margin in margins {
                    m.margin_milli.record((margin * 1000.0) as u64);
                }
            }
        }
        drop(metrics);
        indices
            .into_iter()
            .map(|i| Prediction::bare(Category::from_index(i).unwrap_or(Category::Unimportant)))
            .collect()
    }

    fn attach_telemetry(&self, registry: &obs::Registry) {
        let stage = |name: &str| {
            registry.histogram(
                "hetsyslog_stage_duration_us",
                "Per-stage batch processing time in microseconds",
                &[("stage", name)],
            )
        };
        *self.stage_metrics.write() = Some(CsrStageMetrics {
            transform_us: stage("tokenize_transform"),
            predict_us: stage("predict"),
            rows: registry.counter(
                "hetsyslog_transform_rows_total",
                "Rows vectorized into CSR batch matrices",
                &[],
            ),
            nnz: registry.counter(
                "hetsyslog_transform_nnz_total",
                "Non-zero entries across CSR batch matrices",
                &[],
            ),
            matrix_bytes: registry.counter(
                "hetsyslog_transform_matrix_bytes_total",
                "Heap bytes allocated for CSR batch matrices (cumulative)",
                &[],
            ),
            margin_milli: registry.histogram(
                "hetsyslog_model_confidence_margin_milli",
                "Winner-vs-runner-up decision-score gap per batch prediction, \
                 in thousandths",
                &[("model", self.model.name())],
            ),
        });
    }
}

/// The Background §3 baseline: Levenshtein exemplar buckets with
/// hand-labeled categories.
///
/// Darwin's production configuration masked per-instance variables (node
/// ids, temperatures, addresses) *before* computing distances — that is
/// what makes a threshold as tight as 7 usable at all. `train` enables
/// masking; [`BucketBaseline::train_raw`] gives the unmasked variant for
/// the ablation.
pub struct BucketBaseline {
    store: BucketStore,
    /// Mask variables before distance computation (Darwin's setup).
    masked: bool,
    /// Category when no bucket matches (new-bucket messages go to a human
    /// queue in production; evaluation treats them as Unimportant).
    pub fallback: Category,
}

impl BucketBaseline {
    /// Build from a labeled corpus with variable masking (the production
    /// configuration): each message is bucketed and each bucket labeled by
    /// its exemplar's category (first-writer wins, mirroring how Darwin's
    /// buckets inherited their exemplar's label).
    pub fn train(threshold: usize, corpus: &[(String, Category)]) -> BucketBaseline {
        BucketBaseline::build(threshold, corpus, true)
    }

    /// Build without variable masking (raw Levenshtein on raw text) — the
    /// ablation arm showing why masking matters.
    pub fn train_raw(threshold: usize, corpus: &[(String, Category)]) -> BucketBaseline {
        BucketBaseline::build(threshold, corpus, false)
    }

    fn build(threshold: usize, corpus: &[(String, Category)], masked: bool) -> BucketBaseline {
        let mut baseline = BucketBaseline {
            store: BucketStore::new(BucketingConfig {
                threshold,
                ..BucketingConfig::default()
            }),
            masked,
            fallback: Category::Unimportant,
        };
        for (message, category) in corpus {
            baseline.absorb_impl(message, *category);
        }
        baseline
    }

    fn canonical(&self, message: &str) -> String {
        if self.masked {
            syslog_model::normalize_message(message)
        } else {
            message.to_string()
        }
    }

    fn absorb_impl(&mut self, message: &str, category: Category) {
        let canonical = self.canonical(message);
        let a = self.store.assign(&canonical);
        if a.is_new {
            self.store.label_bucket(a.bucket_id, category.label());
        }
    }

    /// Number of buckets formed — the human labeling burden (the paper
    /// needed 3 415 exemplars for 196 k messages).
    pub fn n_buckets(&self) -> usize {
        self.store.len()
    }

    /// Access the underlying store.
    pub fn store(&self) -> &BucketStore {
        &self.store
    }

    /// Find the bucket a message would join (applying the same masking as
    /// classification). `None` means the message would found a new bucket
    /// — i.e. it lands in the human labeling queue.
    pub fn find(&self, message: &str) -> Option<(u32, usize)> {
        self.store.find(&self.canonical(message))
    }

    /// Absorb one labeled message: it joins (or founds) a bucket, and a
    /// founded bucket inherits the label — the ongoing human-labeling loop
    /// the Darwin operators ran.
    pub fn absorb(&mut self, message: &str, category: Category) {
        self.absorb_impl(message, category);
    }
}

impl TextClassifier for BucketBaseline {
    fn name(&self) -> String {
        format!("Levenshtein buckets (t={})", self.store.config().threshold)
    }

    fn classify(&self, message: &str) -> Prediction {
        let canonical = self.canonical(message);
        match self.store.find(&canonical) {
            Some((id, distance)) => {
                let bucket = self.store.bucket(id).expect("bucket id from find");
                let category = bucket
                    .label
                    .as_deref()
                    .and_then(Category::parse_label)
                    .unwrap_or(self.fallback);
                Prediction {
                    category,
                    confidence: Some(
                        1.0 - distance as f64 / (self.store.config().threshold + 1) as f64,
                    ),
                    explanation: Some(Explanation::new(
                        Vec::new(),
                        format!(
                            "within distance {distance} of bucket {id} exemplar: \"{}\"",
                            bucket.exemplar
                        ),
                    )),
                }
            }
            None => Prediction {
                category: self.fallback,
                confidence: Some(0.0),
                explanation: Some(Explanation::new(
                    Vec::new(),
                    "no bucket within threshold; queued for human labeling".to_string(),
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_ml::{ComplementNaiveBayes, ComplementNbConfig};
    use textproc::TfidfConfig;

    fn tiny_corpus() -> Vec<(String, Category)> {
        let mut corpus = Vec::new();
        let thermal = [
            "cpu temperature above threshold clock throttled",
            "processor thermal sensor high temperature throttling",
            "cpu 2 temperature critical throttled",
            "thermal sensor cpu throttling engaged",
        ];
        let ssh = [
            "sshd connection closed by user port 22 preauth",
            "sshd accepted publickey connection from user",
            "connection closed preauth sshd port",
            "sshd session closed for user port 22",
        ];
        for m in thermal {
            corpus.push((m.to_string(), Category::ThermalIssue));
        }
        for m in ssh {
            corpus.push((m.to_string(), Category::SshConnection));
        }
        corpus
    }

    fn feature_cfg() -> FeatureConfig {
        FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        }
    }

    #[test]
    fn traditional_pipeline_end_to_end() {
        let corpus = tiny_corpus();
        let model = Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default()));
        let clf = TraditionalPipeline::train(feature_cfg(), model, &corpus);
        let p = clf.classify("cpu 7 temperature above threshold throttled");
        assert_eq!(p.category, Category::ThermalIssue);
        let e = p.explanation.unwrap();
        assert!(!e.top_tokens.is_empty());
        let p = clf.classify("sshd connection closed preauth");
        assert_eq!(p.category, Category::SshConnection);
    }

    #[test]
    fn batch_matches_single() {
        let corpus = tiny_corpus();
        let model = Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default()));
        let clf = TraditionalPipeline::train(feature_cfg(), model, &corpus);
        let msgs = ["cpu temperature throttled", "sshd connection closed"];
        let batch = clf.classify_batch(&msgs);
        for (m, b) in msgs.iter().zip(&batch) {
            assert_eq!(clf.classify(m).category, b.category);
        }
    }

    #[test]
    fn attached_telemetry_records_margins_without_changing_predictions() {
        let corpus = tiny_corpus();
        let model = Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default()));
        let clf = TraditionalPipeline::train(feature_cfg(), model, &corpus);
        let msgs = ["cpu temperature throttled", "sshd connection closed"];
        let plain: Vec<_> = clf
            .classify_batch(&msgs)
            .iter()
            .map(|p| p.category)
            .collect();

        let registry = obs::Registry::new();
        clf.attach_telemetry(&registry);
        let attached: Vec<_> = clf
            .classify_batch(&msgs)
            .iter()
            .map(|p| p.category)
            .collect();
        assert_eq!(plain, attached);

        let series = registry.gather();
        let margins = series
            .iter()
            .find(|s| s.name == "hetsyslog_model_confidence_margin_milli")
            .expect("margin histogram registered");
        let hist = margins.histogram.as_ref().expect("histogram kind");
        assert_eq!(hist.count, msgs.len() as u64);
        assert!(margins
            .labels
            .iter()
            .any(|(k, v)| k == "model" && v.contains("Naive Bayes")));
    }

    #[test]
    fn unknown_vocabulary_falls_back() {
        let corpus = tiny_corpus();
        let model = Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default()));
        let clf = TraditionalPipeline::train(feature_cfg(), model, &corpus);
        let p = clf.classify("zzz qqq xxx");
        // Empty vector → some deterministic class; explanation flags it.
        assert!(p
            .explanation
            .unwrap()
            .rationale
            .contains("no known vocabulary"));
    }

    #[test]
    fn bucket_baseline_classifies_near_duplicates() {
        let corpus = tiny_corpus();
        let clf = BucketBaseline::train(7, &corpus);
        assert!(clf.n_buckets() >= 2);
        let p = clf.classify("cpu temperature above threshold clock throttled!");
        assert_eq!(p.category, Category::ThermalIssue);
        assert!(p.confidence.unwrap() > 0.0);
    }

    #[test]
    fn bucket_baseline_fallback_on_novel_message() {
        let corpus = tiny_corpus();
        let clf = BucketBaseline::train(7, &corpus);
        let p = clf.classify("a completely different vendor firmware message with new words");
        assert_eq!(p.category, Category::Unimportant);
        assert_eq!(p.confidence, Some(0.0));
        assert!(p.explanation.unwrap().rationale.contains("queued"));
    }

    #[test]
    fn names_are_descriptive() {
        let corpus = tiny_corpus();
        let clf = BucketBaseline::train(7, &corpus);
        assert!(clf.name().contains("t=7"));
        let model = Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default()));
        let tp = TraditionalPipeline::train(feature_cfg(), model, &corpus);
        assert!(tp.name().contains("TF-IDF"));
        assert!(tp.name().contains("Complement"));
    }
}
