//! The preprocessing pipeline of §4.3: tokenize → lemmatize → TF-IDF.

use crate::taxonomy::Category;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use textproc::hash::FxHashMap;
use textproc::sparse::csr_from_items;
use textproc::tfidf::{category_top_tokens, CategoryTokens};
use textproc::{CsrMatrix, Lemmatizer, SparseVec, TfidfConfig, TfidfVectorizer, Tokenizer};

/// Pipeline options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Apply the WordNet-style lemmatizer (§4.3.2). The ablation bench
    /// toggles this.
    pub lemmatize: bool,
    /// Drop English stopwords before vectorizing.
    pub remove_stopwords: bool,
    /// Word n-gram order: 1 = unigrams only (the paper's setup), 2 adds
    /// bigrams, etc. (Cavnar-Trenkle-style feature augmentation.)
    pub word_ngrams: usize,
    /// TF-IDF vectorizer options.
    pub tfidf: TfidfConfig,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            lemmatize: true,
            remove_stopwords: true,
            word_ngrams: 1,
            tfidf: TfidfConfig {
                min_df: 2,
                ..TfidfConfig::default()
            },
        }
    }
}

/// A fitted tokenize → lemmatize → TF-IDF pipeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeaturePipeline {
    config: FeatureConfig,
    tokenizer: Tokenizer,
    lemmatizer: Lemmatizer,
    vectorizer: TfidfVectorizer,
}

impl FeaturePipeline {
    /// Create an unfitted pipeline.
    pub fn new(config: FeatureConfig) -> FeaturePipeline {
        let tfidf = config.tfidf.clone();
        FeaturePipeline {
            config,
            tokenizer: Tokenizer::default(),
            lemmatizer: Lemmatizer::new(),
            vectorizer: TfidfVectorizer::new(tfidf),
        }
    }

    /// Tokenize (and optionally lemmatize / de-stopword) one message.
    pub fn preprocess(&self, text: &str) -> Vec<String> {
        let mut tokens = self.tokenizer.tokenize(text);
        if self.config.remove_stopwords {
            tokens.retain(|t| !textproc::stopwords::is_stopword(t));
        }
        if self.config.lemmatize {
            for t in &mut tokens {
                *t = self.lemmatizer.lemmatize(t);
            }
        }
        if self.config.word_ngrams > 1 {
            tokens = textproc::ngram::word_ngram_range(&tokens, self.config.word_ngrams);
        }
        tokens
    }

    /// Fit the TF-IDF stage on a corpus of raw messages.
    pub fn fit(&mut self, messages: &[impl AsRef<str> + Sync]) {
        let docs: Vec<Vec<String>> = messages
            .par_iter()
            .map(|m| self.preprocess(m.as_ref()))
            .collect();
        self.vectorizer.fit(&docs);
    }

    /// Transform one raw message into a TF-IDF vector.
    pub fn transform(&self, text: &str) -> SparseVec {
        self.vectorizer.transform(&self.preprocess(text))
    }

    /// Transform many messages straight into one CSR matrix — the batch
    /// inference path. The unigram fast path fuses preprocessing and
    /// vectorization: each chunk keeps a raw-token → vocab-id cache, so the
    /// stopword check, lemmatization, and vocabulary lookup are paid once
    /// per *distinct* token instead of once per occurrence. Row `i` is
    /// bit-identical to [`FeaturePipeline::transform`] of `messages[i]`.
    pub fn transform_batch_csr(&self, messages: &[impl AsRef<str> + Sync]) -> CsrMatrix {
        if self.config.word_ngrams > 1 {
            // n-gram rows depend on the adjacent-token stream, so token-level
            // caching does not apply; take the uncached per-document path.
            let docs: Vec<Vec<String>> = messages
                .par_iter()
                .map(|m| self.preprocess(m.as_ref()))
                .collect();
            return self.vectorizer.transform_batch_csr(&docs);
        }
        csr_from_items(
            messages,
            self.vectorizer.n_features(),
            || {
                (
                    FxHashMap::<String, Option<u32>>::default(),
                    FxHashMap::<u32, f64>::default(),
                )
            },
            |message, pairs, (cache, counts)| {
                counts.clear();
                self.tokenizer.tokenize_each(message.as_ref(), |tok| {
                    // get-then-insert instead of the entry API so cache hits
                    // (the common case) never allocate an owned key.
                    let id = match cache.get(tok) {
                        Some(&id) => id,
                        None => {
                            let id = self.resolve_token(tok);
                            cache.insert(tok.to_string(), id);
                            id
                        }
                    };
                    if let Some(id) = id {
                        *counts.entry(id).or_insert(0.0) += 1.0;
                    }
                });
                self.vectorizer.fill_pairs_from_counts(counts, pairs)
            },
        )
    }

    /// Map one raw token to its vocabulary id the way [`Self::preprocess`]
    /// would: stopword check on the raw form, then lemmatize, then look up.
    fn resolve_token(&self, token: &str) -> Option<u32> {
        if self.config.remove_stopwords && textproc::stopwords::is_stopword(token) {
            return None;
        }
        if self.config.lemmatize {
            self.vectorizer.token_id(&self.lemmatizer.lemmatize(token))
        } else {
            self.vectorizer.token_id(token)
        }
    }

    /// Transform many messages in parallel. Routed through the CSR path;
    /// each returned row is bit-identical to [`FeaturePipeline::transform`].
    pub fn transform_batch(&self, messages: &[impl AsRef<str> + Sync]) -> Vec<SparseVec> {
        self.transform_batch_csr(messages).to_rows()
    }

    /// Fit and transform in one pass.
    pub fn fit_transform(&mut self, messages: &[impl AsRef<str> + Sync]) -> Vec<SparseVec> {
        self.fit(messages);
        self.transform_batch(messages)
    }

    /// Number of features after fitting.
    pub fn n_features(&self) -> usize {
        self.vectorizer.n_features()
    }

    /// The fitted vectorizer (for inspecting vocabulary / idf weights).
    pub fn vectorizer(&self) -> &TfidfVectorizer {
        &self.vectorizer
    }

    /// FNV-1a digest of the fitted vocabulary in id order. Two pipelines
    /// fitted on the same corpus must agree on every (id, token) pair, so
    /// this single u64 stands in for the whole vocabulary in conformance
    /// goldens: any reordering, insertion, or rename changes it.
    pub fn vocab_signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (id, token) in self.vectorizer.vocabulary().iter() {
            eat(&id.to_le_bytes());
            eat(token.as_bytes());
            eat(&[0xff]);
        }
        h
    }

    /// The tokens of `text` that scored highest in its TF-IDF vector —
    /// the per-decision explanation payload.
    pub fn top_contributing_tokens(&self, text: &str, k: usize) -> Vec<(String, f64)> {
        let v = self.transform(text);
        let mut scored: Vec<(String, f64)> = v
            .iter()
            .filter_map(|(id, w)| {
                self.vectorizer
                    .vocabulary()
                    .token(id)
                    .map(|t| (t.to_string(), w))
            })
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// The Table 1 analysis: per-category top TF-IDF tokens over a labeled
    /// corpus, with each category treated as one document.
    pub fn table1(&self, corpus: &[(String, Category)], top_k: usize) -> Vec<CategoryTokens> {
        let grouped: Vec<(String, Vec<Vec<String>>)> = Category::ALL
            .iter()
            .map(|&cat| {
                let docs: Vec<Vec<String>> = corpus
                    .par_iter()
                    .filter(|(_, c)| *c == cat)
                    .map(|(m, _)| self.preprocess(m))
                    .collect();
                (cat.label().to_string(), docs)
            })
            .collect();
        category_top_tokens(&grouped, top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<(String, Category)> {
        let thermal = [
            "CPU 3 temperature above threshold cpu clock throttled",
            "Processor thermal sensor reports 95C throttling engaged",
            "CPU temperature critical sensor throttled processor",
        ];
        let usb = [
            "usb 1-1 new high-speed USB device number 5 using xhci_hcd",
            "usb hub 2-0:1.0 device disconnected",
            "new USB device found on hub port 3",
        ];
        let mut corpus = Vec::new();
        for m in thermal {
            corpus.push((m.to_string(), Category::ThermalIssue));
        }
        for m in usb {
            corpus.push((m.to_string(), Category::UsbDevice));
        }
        corpus
    }

    #[test]
    fn lemmatization_folds_variants_into_one_feature() {
        let mut with = FeaturePipeline::new(FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        });
        let msgs = ["system failed", "system failure imminent", "system failing"];
        with.fit(&msgs);
        // "failed"/"failing" lemmatize to "fail"; "failure" stays its own
        // lemma, so the vocabulary has fail + failure + system + imminent.
        assert!(with.vectorizer().vocabulary().get("fail").is_some());
        assert!(with.vectorizer().vocabulary().get("failed").is_none());
    }

    #[test]
    fn transform_maps_variants_to_same_vector() {
        let mut p = FeaturePipeline::new(FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        });
        p.fit(&["cpu throttled hot", "disk quiet"]);
        let a = p.transform("cpu throttled");
        let b = p.transform("cpu throttling");
        assert_eq!(a, b, "lemmatized forms must produce identical vectors");
    }

    #[test]
    fn table1_separates_category_vocabulary() {
        let corpus = sample_corpus();
        let mut p = FeaturePipeline::new(FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        });
        let msgs: Vec<&String> = corpus.iter().map(|(m, _)| m).collect();
        p.fit(&msgs.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let t1 = p.table1(&corpus, 5);
        assert_eq!(t1.len(), 8);
        let thermal = &t1[Category::ThermalIssue.index()];
        let tokens: Vec<&str> = thermal.tokens.iter().map(|(t, _)| t.as_str()).collect();
        assert!(
            tokens.contains(&"temperature")
                || tokens.contains(&"throttle")
                || tokens.contains(&"cpu"),
            "thermal top tokens were {tokens:?}"
        );
        let usb = &t1[Category::UsbDevice.index()];
        let tokens: Vec<&str> = usb.tokens.iter().map(|(t, _)| t.as_str()).collect();
        assert!(tokens.contains(&"usb") || tokens.contains(&"device") || tokens.contains(&"hub"));
        // Categories with no corpus messages have empty token lists.
        assert!(t1[Category::SlurmIssue.index()].tokens.is_empty());
    }

    #[test]
    fn top_contributing_tokens_ranked() {
        let mut p = FeaturePipeline::new(FeatureConfig {
            tfidf: TfidfConfig {
                min_df: 1,
                ..TfidfConfig::default()
            },
            ..FeatureConfig::default()
        });
        p.fit(&["cpu hot throttle", "cpu cold", "cpu warm", "fan fine"]);
        let top = p.top_contributing_tokens("cpu throttle", 2);
        assert_eq!(top.len(), 2);
        // "throttle" is rarer than "cpu", so it must rank first.
        assert_eq!(top[0].0, "throttle");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn word_ngrams_augment_features() {
        let p = FeaturePipeline::new(FeatureConfig {
            word_ngrams: 2,
            ..FeatureConfig::default()
        });
        let toks = p.preprocess("cpu temperature high");
        assert!(toks.contains(&"cpu_temperature".to_string()));
        assert!(toks.contains(&"temperature_high".to_string()));
        assert!(toks.contains(&"cpu".to_string()), "unigrams kept");
    }

    #[test]
    fn stopword_removal_configurable() {
        let keep = FeaturePipeline::new(FeatureConfig {
            remove_stopwords: false,
            ..FeatureConfig::default()
        });
        let drop = FeaturePipeline::new(FeatureConfig::default());
        assert!(keep
            .preprocess("the cpu is hot")
            .contains(&"the".to_string()));
        assert!(!drop
            .preprocess("the cpu is hot")
            .contains(&"the".to_string()));
    }
}
