//! Durable spill-then-replay buffering for the sink stage.
//!
//! When a sink nacks or its in-flight window fills, classified batches are
//! written to size-capped, CRC-framed segment files on disk and re-driven
//! in order once the sink recovers (see [`crate::sink::FanOut`]). This is
//! the rsyslog/Vector disk-assisted-queue model: overload stops meaning
//! *loss* (today's Shed drops) and starts meaning *latency*, with the
//! at-least-once ledger `submitted == delivered + spilled_pending +
//! dropped` holding at every instant.
//!
//! On-disk layout: a spill directory holds `spill-<index>.seg` files,
//! each a concatenation of frames
//!
//! ```text
//! magic(4) | seq(8) | records(4) | len(4) | crc32(4) | payload(len)
//! ```
//!
//! (all little-endian; the CRC covers `seq..len` plus the payload, so a
//! torn header is as detectable as a torn payload). Segments roll at
//! [`SpillConfig::segment_cap_bytes`] and are fsynced when sealed.
//! [`SpillBuffer::open`] re-scans an existing directory after a crash:
//! every intact frame is recovered for replay; a truncated or corrupt
//! tail is **quarantined** (moved to `quarantine/`, the segment truncated
//! back to its last valid frame) instead of panicking or silently
//! re-delivering garbage.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Frame magic: `"SPL1"`.
pub const SPILL_MAGIC: u32 = 0x5350_4C31;

/// Fixed frame header size in bytes.
pub const SPILL_HEADER_BYTES: usize = 24;

/// Upper bound on a single frame payload; anything larger in a header is
/// treated as corruption rather than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over `bytes`, optionally continuing from a prior digest.
pub fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One spilled batch: an opaque payload plus the accounting the replay
/// path needs without decoding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillFrame {
    /// Lane-assigned monotone sequence number (FIFO evidence).
    pub seq: u64,
    /// Log records carried by the payload (ledger accounting).
    pub records: u32,
    /// The encoded batch (the sink codec's bytes, opaque to the spill).
    pub payload: Vec<u8>,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The magic bytes did not match — the cursor is not at a frame start.
    BadMagic,
    /// The buffer ends mid-header or mid-payload (torn write).
    Truncated,
    /// The declared payload length is implausible.
    BadLength(u32),
    /// The payload or header failed its checksum.
    CrcMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadLength(n) => write!(f, "implausible frame length {n}"),
            FrameError::CrcMismatch => write!(f, "frame CRC mismatch"),
        }
    }
}

/// Append `frame`'s wire encoding to `out`.
pub fn encode_frame(frame: &SpillFrame, out: &mut Vec<u8>) {
    out.extend_from_slice(&SPILL_MAGIC.to_le_bytes());
    let header_start = out.len();
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.records.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    let crc = crc32(crc32(0, &out[header_start..]), &frame.payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&frame.payload);
}

/// Encoded size of `frame` on disk.
pub fn encoded_len(frame: &SpillFrame) -> u64 {
    SPILL_HEADER_BYTES as u64 + frame.payload.len() as u64
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Decode one frame starting at `buf[offset..]`.
///
/// `Ok(None)` means a clean end of buffer (offset exactly at the end);
/// anything else that cannot produce a full, checksummed frame is a
/// [`FrameError`] describing the corruption.
pub fn decode_frame(buf: &[u8], offset: usize) -> Result<Option<(SpillFrame, usize)>, FrameError> {
    let rest = &buf[offset.min(buf.len())..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < SPILL_HEADER_BYTES {
        return Err(FrameError::Truncated);
    }
    if read_u32(rest, 0) != SPILL_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let seq = read_u64(rest, 4);
    let records = read_u32(rest, 12);
    let len = read_u32(rest, 16);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::BadLength(len));
    }
    let crc_stored = read_u32(rest, 20);
    let total = SPILL_HEADER_BYTES + len as usize;
    if rest.len() < total {
        return Err(FrameError::Truncated);
    }
    let payload = &rest[SPILL_HEADER_BYTES..total];
    let crc = crc32(crc32(0, &rest[4..20]), payload);
    if crc != crc_stored {
        return Err(FrameError::CrcMismatch);
    }
    Ok(Some((
        SpillFrame {
            seq,
            records,
            payload: payload.to_vec(),
        },
        total,
    )))
}

/// Spill directory tuning.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one reaches this size.
    pub segment_cap_bytes: u64,
}

impl SpillConfig {
    /// Spill into `dir` with the default 4 MiB segment cap.
    pub fn new(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            segment_cap_bytes: 4 * 1024 * 1024,
        }
    }

    /// Override the segment roll size.
    pub fn with_segment_cap(mut self, bytes: u64) -> SpillConfig {
        self.segment_cap_bytes = bytes.max(SPILL_HEADER_BYTES as u64);
        self
    }
}

/// What [`SpillBuffer::open`] found in an existing directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact segments scheduled for replay.
    pub segments: u64,
    /// Intact frames (batches) recovered.
    pub frames: u64,
    /// Log records inside those frames.
    pub records: u64,
    /// Corrupt or torn tails moved to `quarantine/`.
    pub quarantined: u64,
}

/// A sealed, durable segment awaiting replay.
#[derive(Debug)]
struct SegmentMeta {
    index: u64,
    path: PathBuf,
}

/// The segment currently being appended.
struct ActiveSegment {
    index: u64,
    path: PathBuf,
    writer: BufWriter<File>,
    bytes: u64,
    frames: u64,
}

/// An open reader over the oldest sealed segment, fully buffered (segments
/// are size-capped, so one segment in memory is bounded by the cap).
struct SegmentReader {
    index: u64,
    path: PathBuf,
    data: Vec<u8>,
    offset: usize,
}

/// The durable FIFO: append at the tail (active segment), replay from the
/// head (oldest sealed segment), with peek/commit semantics so a frame
/// only leaves the pending ledger once the sink acked it. Not internally
/// synchronized — the owning sink lane serializes access.
pub struct SpillBuffer {
    config: SpillConfig,
    sealed: VecDeque<SegmentMeta>,
    active: Option<ActiveSegment>,
    reader: Option<SegmentReader>,
    peeked: Option<SpillFrame>,
    pending_frames: u64,
    pending_records: u64,
    bytes_written: u64,
    segments_sealed: u64,
    quarantined: u64,
    next_index: u64,
}

impl std::fmt::Debug for SpillBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillBuffer")
            .field("dir", &self.config.dir)
            .field("pending_frames", &self.pending_frames)
            .field("pending_records", &self.pending_records)
            .field("sealed", &self.sealed.len())
            .finish()
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("spill-{index:08}.seg"))
}

fn parse_segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("spill-")?.strip_suffix(".seg")?;
    digits.parse().ok()
}

impl SpillBuffer {
    /// Open (or create) a spill directory. Existing segments are scanned
    /// frame by frame: intact prefixes are queued for replay oldest-first,
    /// torn or corrupt tails are quarantined, and appends resume on a
    /// fresh segment index above everything recovered.
    pub fn open(config: SpillConfig) -> io::Result<(SpillBuffer, RecoveryReport)> {
        std::fs::create_dir_all(&config.dir)?;
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| parse_segment_index(p).is_some())
            .collect();
        paths.sort_by_key(|p| parse_segment_index(p).unwrap_or(u64::MAX));

        let mut report = RecoveryReport::default();
        let mut sealed = VecDeque::new();
        let mut next_index = 0u64;
        for path in paths {
            let index = parse_segment_index(&path).expect("filtered above");
            next_index = next_index.max(index + 1);
            let mut data = Vec::new();
            File::open(&path)?.read_to_end(&mut data)?;
            // Walk the intact prefix; anything after the first bad frame
            // (torn write, flipped bit) is the quarantined tail.
            let mut offset = 0usize;
            let mut frames = 0u64;
            let mut records = 0u64;
            loop {
                match decode_frame(&data, offset) {
                    Ok(Some((frame, consumed))) => {
                        frames += 1;
                        records += frame.records as u64;
                        offset += consumed;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        Self::quarantine_tail(&config.dir, &path, &data[offset..])?;
                        report.quarantined += 1;
                        break;
                    }
                }
            }
            if frames == 0 {
                // Nothing recoverable: the (possibly quarantined) segment
                // is removed so replay never opens it.
                std::fs::remove_file(&path)?;
                continue;
            }
            if offset < data.len() {
                // Truncate back to the last intact frame so the reader
                // sees a clean EOF.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(offset as u64)?;
                file.sync_all()?;
            }
            report.segments += 1;
            report.frames += frames;
            report.records += records;
            sealed.push_back(SegmentMeta { index, path });
        }

        let buffer = SpillBuffer {
            config,
            sealed,
            active: None,
            reader: None,
            peeked: None,
            pending_frames: report.frames,
            pending_records: report.records,
            bytes_written: 0,
            segments_sealed: 0,
            quarantined: report.quarantined,
            next_index,
        };
        Ok((buffer, report))
    }

    fn quarantine_tail(dir: &Path, segment: &Path, tail: &[u8]) -> io::Result<()> {
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir)?;
        let name = segment
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("segment");
        std::fs::write(qdir.join(format!("{name}.tail")), tail)
    }

    /// Append one frame to the durable tail, rolling the active segment at
    /// the size cap (sealed segments are fsynced).
    pub fn append(&mut self, frame: &SpillFrame) -> io::Result<()> {
        let len = encoded_len(frame);
        let needs_roll = self
            .active
            .as_ref()
            .is_some_and(|a| a.frames > 0 && a.bytes + len > self.config.segment_cap_bytes);
        if needs_roll {
            self.seal_active()?;
        }
        if self.active.is_none() {
            let index = self.next_index;
            self.next_index += 1;
            let path = segment_path(&self.config.dir, index);
            let file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&path)?;
            self.active = Some(ActiveSegment {
                index,
                path,
                writer: BufWriter::new(file),
                bytes: 0,
                frames: 0,
            });
        }
        let active = self.active.as_mut().expect("just ensured");
        let mut encoded = Vec::with_capacity(len as usize);
        encode_frame(frame, &mut encoded);
        active.writer.write_all(&encoded)?;
        // Flushed (not fsynced) per append: a clean process exit loses
        // nothing; fsync happens at segment seal and shutdown.
        active.writer.flush()?;
        active.bytes += len;
        active.frames += 1;
        self.bytes_written += len;
        self.pending_frames += 1;
        self.pending_records += frame.records as u64;
        Ok(())
    }

    /// Seal the active segment: flush, fsync, and queue it for replay.
    fn seal_active(&mut self) -> io::Result<()> {
        if let Some(mut active) = self.active.take() {
            active.writer.flush()?;
            active.writer.get_ref().sync_all()?;
            self.segments_sealed += 1;
            if active.frames > 0 {
                self.sealed.push_back(SegmentMeta {
                    index: active.index,
                    path: active.path,
                });
            } else {
                let _ = std::fs::remove_file(&active.path);
            }
        }
        Ok(())
    }

    /// Flush and fsync everything durable (graceful-shutdown path). The
    /// buffer remains usable afterwards.
    pub fn seal(&mut self) -> io::Result<()> {
        self.seal_active()
    }

    /// The oldest unacked frame, if any. Repeated peeks without an
    /// intervening [`SpillBuffer::commit`] return the same frame, so a
    /// sink that stays down never skips it. Reaching the active segment
    /// seals it first — replay always reads sealed, fsynced data.
    pub fn peek(&mut self) -> io::Result<Option<SpillFrame>> {
        if let Some(frame) = &self.peeked {
            return Ok(Some(frame.clone()));
        }
        loop {
            if self.reader.is_none() {
                if let Some(front) = self.sealed.front() {
                    let mut data = Vec::new();
                    File::open(&front.path)?.read_to_end(&mut data)?;
                    self.reader = Some(SegmentReader {
                        index: front.index,
                        path: front.path.clone(),
                        data,
                        offset: 0,
                    });
                } else if self.active.as_ref().is_some_and(|a| a.frames > 0) {
                    self.seal_active()?;
                    continue;
                } else {
                    return Ok(None);
                }
            }
            let reader = self.reader.as_mut().expect("ensured above");
            match decode_frame(&reader.data, reader.offset) {
                Ok(Some((frame, consumed))) => {
                    reader.offset += consumed;
                    self.peeked = Some(frame.clone());
                    return Ok(Some(frame));
                }
                Ok(None) => {
                    // Segment exhausted: it is durable history now.
                    let done = self.reader.take().expect("present");
                    debug_assert_eq!(Some(done.index), self.sealed.front().map(|s| s.index));
                    let _ = std::fs::remove_file(&done.path);
                    self.sealed.pop_front();
                }
                Err(_) => {
                    // A sealed segment should never corrupt under us, but
                    // treat it like recovery would: quarantine the tail
                    // and move on rather than wedging replay.
                    let done = self.reader.take().expect("present");
                    Self::quarantine_tail(&self.config.dir, &done.path, &done.data[done.offset..])?;
                    self.quarantined += 1;
                    // Frames lost to the quarantined tail leave the
                    // pending ledger as best we can tell (they can no
                    // longer be replayed).
                    let mut lost_frames = 0u64;
                    let mut lost_records = 0u64;
                    let mut off = done.offset;
                    while let Ok(Some((f, c))) = decode_frame(&done.data, off) {
                        lost_frames += 1;
                        lost_records += f.records as u64;
                        off += c;
                    }
                    self.pending_frames = self.pending_frames.saturating_sub(lost_frames);
                    self.pending_records = self.pending_records.saturating_sub(lost_records);
                    let _ = std::fs::remove_file(&done.path);
                    self.sealed.pop_front();
                }
            }
        }
    }

    /// Acknowledge the last peeked frame: it leaves the pending ledger and
    /// the next [`SpillBuffer::peek`] advances. No-op without a peek.
    pub fn commit(&mut self) {
        if let Some(frame) = self.peeked.take() {
            self.pending_frames = self.pending_frames.saturating_sub(1);
            self.pending_records = self.pending_records.saturating_sub(frame.records as u64);
        }
    }

    /// Frames written but not yet committed (replayed and acked).
    pub fn pending_frames(&self) -> u64 {
        self.pending_frames
    }

    /// Records written but not yet committed.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Total encoded bytes appended this session.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Segments sealed (fsynced) this session.
    pub fn segments_sealed(&self) -> u64 {
        self.segments_sealed
    }

    /// Corrupt tails quarantined (recovery scan plus replay).
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/tmp-spill"
        ))
        .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn frame(seq: u64, records: u32, payload: &[u8]) -> SpillFrame {
        SpillFrame {
            seq,
            records,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(0, b""), 0);
        // Incremental == one-shot.
        assert_eq!(crc32(crc32(0, b"1234"), b"56789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = frame(7, 3, b"hello world");
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        assert_eq!(buf.len() as u64, encoded_len(&f));
        let (back, consumed) = decode_frame(&buf, 0).unwrap().unwrap();
        assert_eq!(back, f);
        assert_eq!(consumed, buf.len());
        assert_eq!(decode_frame(&buf, consumed), Ok(None));
    }

    #[test]
    fn decode_detects_corruption_kinds() {
        let f = frame(1, 1, b"payload bytes");
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        // Truncated payload.
        assert_eq!(
            decode_frame(&buf[..buf.len() - 1], 0),
            Err(FrameError::Truncated)
        );
        // Truncated header.
        assert_eq!(decode_frame(&buf[..10], 0), Err(FrameError::Truncated));
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_frame(&bad, 0), Err(FrameError::BadMagic));
        // Flipped payload byte.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(decode_frame(&bad, 0), Err(FrameError::CrcMismatch));
        // Flipped header byte (seq) is caught by the same checksum.
        let mut bad = buf.clone();
        bad[5] ^= 0x01;
        assert_eq!(decode_frame(&bad, 0), Err(FrameError::CrcMismatch));
        // Implausible length.
        let mut bad = buf;
        bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bad, 0), Err(FrameError::BadLength(u32::MAX)));
    }

    #[test]
    fn append_peek_commit_fifo() {
        let dir = tmp_dir("fifo");
        let (mut spill, report) = SpillBuffer::open(SpillConfig::new(&dir)).unwrap();
        assert_eq!(report, RecoveryReport::default());
        for i in 0..5u64 {
            spill
                .append(&frame(i, 2, format!("batch {i}").as_bytes()))
                .unwrap();
        }
        assert_eq!(spill.pending_frames(), 5);
        assert_eq!(spill.pending_records(), 10);
        // Peek without commit repeats the same frame.
        assert_eq!(spill.peek().unwrap().unwrap().seq, 0);
        assert_eq!(spill.peek().unwrap().unwrap().seq, 0);
        for i in 0..5u64 {
            let f = spill.peek().unwrap().unwrap();
            assert_eq!(f.seq, i);
            spill.commit();
        }
        assert_eq!(spill.peek().unwrap(), None);
        assert_eq!(spill.pending_frames(), 0);
        assert_eq!(spill.pending_records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_at_cap_and_interleave_with_replay() {
        let dir = tmp_dir("roll");
        let config = SpillConfig::new(&dir).with_segment_cap(128);
        let (mut spill, _) = SpillBuffer::open(config).unwrap();
        for i in 0..20u64 {
            spill.append(&frame(i, 1, &[i as u8; 40])).unwrap();
        }
        assert!(spill.segments_sealed() >= 2, "128-byte cap must roll");
        // Replay half, then append more, then drain: order must hold.
        for i in 0..10u64 {
            assert_eq!(spill.peek().unwrap().unwrap().seq, i);
            spill.commit();
        }
        for i in 20..25u64 {
            spill.append(&frame(i, 1, &[0u8; 8])).unwrap();
        }
        for i in 10..25u64 {
            assert_eq!(spill.peek().unwrap().unwrap().seq, i, "FIFO across roll");
            spill.commit();
        }
        assert_eq!(spill.peek().unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_pending_frames() {
        let dir = tmp_dir("reopen");
        {
            let (mut spill, _) = SpillBuffer::open(SpillConfig::new(&dir)).unwrap();
            for i in 0..8u64 {
                spill.append(&frame(i, 3, b"durable")).unwrap();
            }
            // Crash: dropped without seal — appends were flushed, so the
            // bytes are in the file even without the fsync.
        }
        let (mut spill, report) = SpillBuffer::open(SpillConfig::new(&dir)).unwrap();
        assert_eq!(report.frames, 8);
        assert_eq!(report.records, 24);
        assert_eq!(report.quarantined, 0);
        assert_eq!(spill.pending_records(), 24);
        for i in 0..8u64 {
            assert_eq!(spill.peek().unwrap().unwrap().seq, i);
            spill.commit();
        }
        assert_eq!(spill.peek().unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_quarantined_not_replayed() {
        let dir = tmp_dir("torn");
        {
            let (mut spill, _) = SpillBuffer::open(SpillConfig::new(&dir)).unwrap();
            for i in 0..3u64 {
                spill.append(&frame(i, 1, b"intact")).unwrap();
            }
            spill.seal().unwrap();
        }
        // Tear the file: append half a frame.
        let seg = segment_path(&dir, 0);
        let mut torn = Vec::new();
        encode_frame(&frame(3, 1, b"torn away"), &mut torn);
        let mut file = OpenOptions::new().append(true).open(&seg).unwrap();
        file.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(file);

        let (mut spill, report) = SpillBuffer::open(SpillConfig::new(&dir)).unwrap();
        assert_eq!(report.frames, 3, "intact prefix recovered");
        assert_eq!(report.quarantined, 1, "torn tail quarantined");
        assert!(dir.join("quarantine").read_dir().unwrap().next().is_some());
        for i in 0..3u64 {
            assert_eq!(spill.peek().unwrap().unwrap().seq, i);
            spill.commit();
        }
        assert_eq!(spill.peek().unwrap(), None);
        // New appends go to a fresh segment above the recovered index.
        spill.append(&frame(9, 1, b"after recovery")).unwrap();
        assert_eq!(spill.peek().unwrap().unwrap().seq, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
