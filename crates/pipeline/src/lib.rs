//! Tivan-like log infrastructure (§4.2), in-process.
//!
//! The paper's collection stack is rsyslogd → Fluentd → OpenSearch with
//! Grafana on top: 8 Dell R530s storing thirty million records a month.
//! This crate is the in-process equivalent built for the same workload
//! shape:
//!
//! * [`topology`] — the heterogeneous test-bed model: racks, nodes,
//!   architectures (Darwin's defining property);
//! * [`record`] — the stored log record;
//! * [`store`] — a time-sharded, inverted-index log store (the OpenSearch
//!   stand-in) behind `parking_lot` locks, with a sealed columnar tier;
//! * [`columnar`] — template-mined columnar segments (LogShrink-style):
//!   per-segment template dictionary, delta/dictionary-encoded columns,
//!   block compression, template-native queries;
//! * [`query`] — boolean term + time-range + metadata queries;
//! * [`ingest`] — the multi-threaded collector (the rsyslog/Fluentd
//!   stand-in) built on crossbeam channels;
//! * [`listener`] — the socket-facing front end: fault-tolerant TCP/UDP
//!   syslog listeners with bounded-queue overload policies, idle timeouts,
//!   a dead-letter ring, and graceful drain;
//! * [`reactor`] — the event-driven TCP front end: a pool of epoll
//!   reactor threads multiplexing hundreds of nonblocking connections
//!   (the default; thread-per-connection remains the escape hatch);
//! * [`shard`] — the sharded live-path fabric: hash-by-connection
//!   partitioner, per-shard SPSC rings with work-stealing handles, and
//!   per-shard instruments;
//! * [`sink`] — the post-classification delivery stage (the
//!   OpenSearch/Grafana hand-off): a `Sink` trait with ack/nack, file /
//!   simulated-bulk / log-to-metric sinks, and a [`FanOut`] router with
//!   per-sink windows, retry/backoff, and spill-then-replay;
//! * [`spill`] — the durable disk buffer behind the sinks: CRC-framed,
//!   size-capped segment files with crash recovery and quarantine;
//! * [`views`] — the §4.5 monitoring views: frequency/temporal analysis
//!   with burst detection, positional (per-rack) analysis, and
//!   per-architecture anomaly comparison;
//! * [`monitor`] — glue that runs a [`hetsyslog_core::TextClassifier`]
//!   inside the ingest path for real-time classification.

pub mod columnar;
pub mod ingest;
pub mod listener;
pub mod monitor;
pub mod query;
pub mod reactor;
pub mod record;
pub mod sensors;
pub mod shard;
pub mod sink;
pub mod spill;
pub mod store;
pub mod testsupport;
pub mod topology;
pub mod views;

pub use columnar::{Segment, SegmentStats};
pub use ingest::{IngestPipeline, IngestReport};
pub use listener::{
    DeadLetter, DeadLetterRing, DropReason, Frontend, IngestStats, ListenerConfig, OverloadPolicy,
    SyslogListener,
};
pub use monitor::{BatchStats, ClassifyingIngest, FlushReason};
pub use query::Query;
pub use reactor::ReactorStats;
pub use record::LogRecord;
pub use sensors::{compare_to_arch_peers, sensor_sweep, SensorReading, SensorVerdict};
pub use shard::{Partitioner, ShardReceiver, ShardRouter, ShardStats};
pub use sink::{
    BulkSink, FanOut, FaultPlan, FileSink, MetricSink, Sink, SinkBatch, SinkError, SinkLaneConfig,
    SinkSnapshot, SinkSpec,
};
pub use spill::{RecoveryReport, SpillBuffer, SpillConfig, SpillFrame};
pub use store::LogStore;
pub use topology::{Architecture, ClusterTopology, NodeInfo};
