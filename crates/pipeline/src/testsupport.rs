//! Shared fault-injection scaffolding for the sink/spill test suites (and
//! anyone else attacking the delivery ledger).
//!
//! Lives in the library (not `tests/`) so integration tests, proptests,
//! and the bench harness all drive the same [`RecordingSink`] and the
//! same named [`FaultPlan`] scenarios — the guarantees are only as real
//! as the tests that attack them, so the attack surface is shared code.

use crate::record::LogRecord;
use crate::sink::{FaultPlan, Sink, SinkBatch, SinkError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A sink that remembers every acked batch and can be flipped between
/// healthy and hard-down at runtime — the oracle for at-least-once
/// assertions (delivery order, duplicate audit, loss audit).
pub struct RecordingSink {
    name: String,
    failing: AtomicBool,
    attempts: AtomicU64,
    batches: Mutex<Vec<SinkBatch>>,
}

impl RecordingSink {
    /// A healthy recording sink.
    pub fn new(name: impl Into<String>) -> RecordingSink {
        RecordingSink {
            name: name.into(),
            failing: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            batches: Mutex::new(Vec::new()),
        }
    }

    /// Flip the sink hard-down (`true`: every submit nacks) or healthy.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::SeqCst);
    }

    /// Total submit attempts seen (acked or nacked).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Every acked batch, in delivery order.
    pub fn batches(&self) -> Vec<SinkBatch> {
        self.batches.lock().clone()
    }

    /// Acked batch sequence numbers, in delivery order.
    pub fn delivered_seqs(&self) -> Vec<u64> {
        self.batches.lock().iter().map(|b| b.seq).collect()
    }

    /// Acked record ids, in delivery order.
    pub fn delivered_ids(&self) -> Vec<u64> {
        self.batches
            .lock()
            .iter()
            .flat_map(|b| b.records.iter().map(|r| r.id))
            .collect()
    }

    /// Acked record count.
    pub fn delivered_records(&self) -> u64 {
        self.batches
            .lock()
            .iter()
            .map(|b| b.records.len() as u64)
            .sum()
    }
}

impl Sink for RecordingSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit_batch(&self, batch: &SinkBatch) -> Result<(), SinkError> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        if self.failing.load(Ordering::SeqCst) {
            return Err(SinkError::new("forced down"));
        }
        self.batches.lock().push(batch.clone());
        Ok(())
    }
}

/// The three scripted fault scenarios the acceptance criteria name, as
/// `(label, plan)` pairs: 5% injected errors, 250 ms stalls, and a hard
/// outage (shortened from 10 s for in-suite use — the CI storm smoke runs
/// the full-length window).
pub fn fault_scenarios(seed: u64, outage: Duration) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "errors_5pct",
            FaultPlan::healthy().with_seed(seed).with_error_rate(0.05),
        ),
        (
            "stall_250ms",
            FaultPlan::healthy()
                .with_seed(seed)
                .with_stall(Duration::from_millis(250)),
        ),
        (
            "outage_hard",
            FaultPlan::healthy()
                .with_seed(seed)
                .with_outage(Duration::ZERO, outage),
        ),
    ]
}

/// Deterministic classified-record generator: `n` records with ids
/// `from..from + n`, cycling hostnames/apps so batches look like real
/// traffic.
pub fn sample_records(from: u64, n: u64) -> Vec<LogRecord> {
    (from..from + n)
        .map(|id| {
            let frame = format!(
                "<{}>Oct 11 22:14:{:02} cn{:04} app{}: sample record {id}",
                (id % 8) * 8 + 6,
                id % 60,
                id % 16,
                id % 4,
            );
            let msg = syslog_model::parse(&frame)
                .unwrap_or_else(|_| syslog_model::SyslogMessage::free_form(&frame));
            LogRecord::from_message(id, &msg, 1_700_000_000)
        })
        .collect()
}

/// Poll `cond` once a millisecond until it holds or `ms` elapses; returns
/// the final evaluation (test idiom shared with the listener suite).
pub fn wait_until(ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// A per-process-unique scratch directory under the workspace `target/`
/// (tests must not touch paths outside the repo).
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/tmp-sinktests"
    ))
    .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
