//! The multi-threaded collector: rsyslogd → Fluentd → store, as a
//! sharded SPSC-ring pipeline.
//!
//! Stage 1 (this thread): feed raw frames round-robin into one bounded
//! SPSC ring per worker — backpressure stands in for the syslog server's
//! queue. Stage 2 (N parser workers): each drains only its own ring and
//! parses frames into [`LogRecord`]s, so workers never contend on a shared
//! queue lock. Stage 3 (the workers, directly): insert into the shared
//! [`LogStore`], whose sharded locks absorb the concurrency.

use crate::record::LogRecord;
use crate::store::LogStore;
use crossbeam::spsc;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestReport {
    /// Frames ingested into the store.
    pub ingested: u64,
    /// Frames that fell back to free-form parsing (no RFC grammar).
    pub free_form: u64,
    /// Frames that failed syslog parsing and were not stored. In practice
    /// only empty frames fail (the free-form fallback accepts any other
    /// UTF-8), but the counter tallies every parse error.
    pub dropped: u64,
    /// Corrupt frames dropped by the RFC 6587 decoder before parsing
    /// (bogus octet counts, truncated count tokens); only non-zero for
    /// [`IngestPipeline::run_stream`].
    pub decoder_dropped: u64,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
}

impl IngestReport {
    /// Ingest throughput, messages/second.
    pub fn messages_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ingested as f64 / self.seconds
        }
    }
}

/// The feed side of the sharded collector: owns every worker's ring
/// producer and fans frames out round-robin. Dropping it hangs up every
/// ring, which is the workers' drain-and-exit signal.
struct ShardedFeeder {
    producers: Vec<spsc::RingProducer<String>>,
    next: Cell<usize>,
}

impl ShardedFeeder {
    /// Bounded send to the next ring in rotation: blocks when that ring's
    /// parser lags (backpressure). Errors once the worker is gone.
    fn send(&self, frame: String) -> Result<(), spsc::SendError<String>> {
        let shard = self.next.get();
        self.next.set((shard + 1) % self.producers.len());
        self.producers[shard].send(frame)
    }
}

/// A configurable ingest pipeline over a shared store.
pub struct IngestPipeline {
    store: Arc<LogStore>,
    workers: usize,
    queue_depth: usize,
    /// Event time assigned to frames without a timestamp.
    fallback_time: i64,
    max_batch: usize,
    max_delay: Duration,
}

impl IngestPipeline {
    /// Build over `store` with `workers` parser threads.
    pub fn new(store: Arc<LogStore>, workers: usize) -> IngestPipeline {
        IngestPipeline {
            store,
            workers: workers.max(1),
            queue_depth: 8192,
            fallback_time: 0,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
        }
    }

    /// Set the fallback event time for frames without timestamps.
    pub fn with_fallback_time(mut self, t: i64) -> IngestPipeline {
        self.fallback_time = t;
        self
    }

    /// Set the bounded parser-queue depth (how far decode may run ahead of
    /// the parse/store workers before blocking).
    pub fn with_queue_depth(mut self, depth: usize) -> IngestPipeline {
        self.queue_depth = depth.max(1);
        self
    }

    /// Tune worker micro-batching: each worker pulls up to `max_batch`
    /// frames per channel drain (waiting at most `max_delay` past the
    /// first frame) to amortize queue synchronization. The counters in
    /// [`IngestReport`] are identical for every setting; `max_batch = 1`
    /// is the frame-at-a-time path.
    pub fn with_batching(mut self, max_batch: usize, max_delay: Duration) -> IngestPipeline {
        self.max_batch = max_batch.max(1);
        self.max_delay = max_delay;
        self
    }

    /// Run the pipeline over a raw TCP byte stream (RFC 6587 framing,
    /// octet-counted or LF-delimited), as delivered by the syslog server's
    /// socket in arbitrary chunks.
    ///
    /// Frames are sent into the bounded parser queue *as each chunk is
    /// decoded*: the workers run concurrently with decoding, and a slow
    /// parser stage blocks the decode loop (real backpressure) instead of
    /// the stream being buffered whole in memory first.
    pub fn run_stream<I>(&self, chunks: I) -> IngestReport
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        self.run_with(|tx| {
            let mut decoder = syslog_model::FrameDecoder::new();
            for chunk in chunks {
                for frame in decoder.push(&chunk) {
                    if tx.send(frame).is_err() {
                        return decoder.dropped();
                    }
                }
            }
            if let Some(tail) = decoder.finish() {
                let _ = tx.send(tail);
            }
            decoder.dropped()
        })
    }

    /// Run the pipeline to completion over an iterator of raw frames.
    pub fn run<I>(&self, frames: I) -> IngestReport
    where
        I: IntoIterator<Item = String>,
    {
        self.run_with(|tx| {
            for frame in frames {
                // Bounded send: blocks when parsers lag (backpressure).
                if tx.send(frame).is_err() {
                    break;
                }
            }
            0
        })
    }

    /// Shared engine: spawn one parser worker per shard ring, let `feed`
    /// drive frames round-robin into the rings from this thread, then
    /// drain and join. `feed` returns the number of frames the decode
    /// stage dropped.
    fn run_with<F>(&self, feed: F) -> IngestReport
    where
        F: FnOnce(&ShardedFeeder) -> u64,
    {
        let started = Instant::now();
        // One SPSC ring per worker; the configured queue depth is the
        // aggregate bound across rings, as with the single shared channel
        // this replaces.
        let per_shard = self.queue_depth.div_ceil(self.workers).max(1);
        let (producers, consumers): (Vec<_>, Vec<_>) = (0..self.workers)
            .map(|_| spsc::ring::<String>(per_shard))
            .unzip();
        let feeder = ShardedFeeder {
            producers,
            next: Cell::new(0),
        };
        let ingested = AtomicU64::new(0);
        let free_form = AtomicU64::new(0);
        let dropped = AtomicU64::new(0);
        let mut decoder_dropped = 0;

        std::thread::scope(|scope| {
            for rx in consumers {
                let store = &self.store;
                let ingested = &ingested;
                let free_form = &free_form;
                let dropped = &dropped;
                let fallback_time = self.fallback_time;
                let max_batch = self.max_batch;
                let max_delay = self.max_delay;
                scope.spawn(move || {
                    // Drain-and-batch: block for the first frame, then fill
                    // up to max_batch or until max_delay elapses, and parse
                    // the batch in one pass. Amortizes ring wakeups;
                    // counter semantics are identical to frame-at-a-time.
                    let mut batch: Vec<String> = Vec::with_capacity(max_batch);
                    while let Ok(first) = rx.recv() {
                        batch.clear();
                        batch.push(first);
                        if max_batch > 1 {
                            rx.drain_into(&mut batch, max_batch, Instant::now() + max_delay);
                        }
                        for frame in batch.drain(..) {
                            match syslog_model::parse(&frame) {
                                Ok(msg) => {
                                    if msg.protocol == syslog_model::Protocol::FreeForm {
                                        free_form.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let record = LogRecord::from_message(
                                        store.allocate_id(),
                                        &msg,
                                        fallback_time,
                                    );
                                    store.insert(record);
                                    ingested.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    dropped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                });
            }
            decoder_dropped = feed(&feeder);
            drop(feeder);
        });

        IngestReport {
            ingested: ingested.into_inner(),
            free_form: free_form.into_inner(),
            dropped: dropped.into_inner(),
            decoder_dropped,
            seconds: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_stores_frames() {
        let store = Arc::new(LogStore::new());
        let pipeline = IngestPipeline::new(store.clone(), 4);
        let frames: Vec<String> = (0..500)
            .map(|i| {
                format!(
                    "<13>Oct 11 22:14:{:02} cn{:04} kernel: event number {i}",
                    i % 60,
                    i % 9 + 1
                )
            })
            .collect();
        let report = pipeline.run(frames);
        assert_eq!(report.ingested, 500);
        assert_eq!(report.dropped, 0);
        assert_eq!(store.len(), 500);
        assert!(report.messages_per_second() > 0.0);
    }

    #[test]
    fn free_form_frames_counted_not_lost() {
        let store = Arc::new(LogStore::new());
        let pipeline = IngestPipeline::new(store.clone(), 2).with_fallback_time(777);
        let report = pipeline.run(vec![
            "vendor gibberish without any header".to_string(),
            "<13>Oct 11 22:14:15 cn0001 kernel: fine".to_string(),
        ]);
        assert_eq!(report.ingested, 2);
        assert_eq!(report.free_form, 1);
        // The free-form record got the fallback time.
        assert_eq!(store.search(777, 778, &[]).len(), 1);
    }

    #[test]
    fn empty_frames_dropped() {
        let store = Arc::new(LogStore::new());
        let pipeline = IngestPipeline::new(store.clone(), 2);
        let report = pipeline.run(vec![String::new(), String::new()]);
        assert_eq!(report.ingested, 0);
        assert_eq!(report.dropped, 2);
        assert!(store.is_empty());
    }

    #[test]
    fn tcp_stream_framing_front_end() {
        let store = Arc::new(LogStore::new());
        let pipeline = IngestPipeline::new(store.clone(), 2);
        // Two frames: one octet-counted, one LF-delimited, chopped into
        // awkward chunk boundaries.
        let f1 = "<13>Oct 11 22:14:15 cn0001 kernel: first frame";
        let f2 = "<13>Oct 11 22:14:16 cn0002 kernel: second frame";
        let wire = format!("{} {f1}{f2}\n", f1.len()).into_bytes();
        let chunks: Vec<Vec<u8>> = wire.chunks(7).map(|c| c.to_vec()).collect();
        let report = pipeline.run_stream(chunks);
        assert_eq!(report.ingested, 2);
        assert_eq!(
            store.search(0, i64::MAX / 2, &["first".to_string()]).len(),
            1
        );
        assert_eq!(
            store.search(0, i64::MAX / 2, &["second".to_string()]).len(),
            1
        );
    }

    #[test]
    fn stream_reports_decoder_drops_and_strips_truncated_count() {
        let store = Arc::new(LogStore::new());
        let pipeline = IngestPipeline::new(store.clone(), 2).with_queue_depth(4);
        // An oversized count (dropped, payload survives as an LF frame),
        // then a truncated octet-counted tail whose "35 " count token must
        // not leak into a stored record.
        let wire = b"999999 <13>Oct 11 22:14:15 cn0001 kernel: ok\n35 <13>Oct".to_vec();
        let report = pipeline.run_stream(vec![wire]);
        assert_eq!(report.ingested, 2);
        assert_eq!(report.decoder_dropped, 1);
        assert_eq!(report.dropped, 0);
        let all = store.search(i64::MIN / 2, i64::MAX / 2, &[]);
        assert!(all.iter().all(|r| !r.message.starts_with("35 ")));
    }

    #[test]
    fn batching_preserves_report_counters() {
        // Mixed traffic: parseable, free-form, and empty (dropped) frames.
        let frames: Vec<String> = (0..900)
            .map(|i| match i % 3 {
                0 => format!("<13>Oct 11 22:14:{:02} cn0001 kernel: event {i}", i % 60),
                1 => format!("vendor blob {i}"),
                _ => String::new(),
            })
            .collect();
        let mut reports = Vec::new();
        for max_batch in [1usize, 7, 64] {
            let store = Arc::new(LogStore::new());
            let pipeline = IngestPipeline::new(store.clone(), 3)
                .with_batching(max_batch, Duration::from_millis(1));
            let report = pipeline.run(frames.clone());
            assert_eq!(store.len() as u64, report.ingested);
            reports.push(report);
        }
        for r in &reports {
            assert_eq!(r.ingested, reports[0].ingested);
            assert_eq!(r.free_form, reports[0].free_form);
            assert_eq!(r.dropped, reports[0].dropped);
            assert_eq!(r.decoder_dropped, reports[0].decoder_dropped);
        }
        assert_eq!(reports[0].ingested, 600);
        assert_eq!(reports[0].free_form, 300);
        assert_eq!(reports[0].dropped, 300);
    }

    #[test]
    fn darwin_scale_throughput_smoke() {
        // The paper: >1M messages/hour (~280/s) on real hardware. The
        // in-process pipeline should beat that by orders of magnitude.
        let store = Arc::new(LogStore::new());
        let pipeline = IngestPipeline::new(store.clone(), 4);
        let frames: Vec<String> = (0..20_000)
            .map(|i| {
                format!(
                    "<13>Oct 11 {:02}:{:02}:{:02} cn{:04} slurmd: slurm_rpc_node_registration complete usec={i}",
                    i / 3600 % 24, i / 60 % 60, i % 60, i % 400 + 1
                )
            })
            .collect();
        let report = pipeline.run(frames);
        assert_eq!(report.ingested, 20_000);
        assert!(
            report.messages_per_second() > 280.0,
            "pipeline slower than Darwin's real load: {}/s",
            report.messages_per_second()
        );
    }
}
