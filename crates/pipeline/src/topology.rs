//! The heterogeneous test-bed model.
//!
//! Darwin's defining property is architecture diversity: x86 from two
//! vendors, POWER, ARM, and GPU nodes, racked together. Physical placement
//! matters for the §4.5.2 positional analysis (shared edge switch, shared
//! rack micro-climate) and architecture matters for §4.5.3 (comparing a
//! node to same-architecture peers).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Compute-node architecture families on the test-bed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Architecture {
    /// Intel Xeon x86-64.
    X86Intel,
    /// AMD EPYC x86-64.
    X86Amd,
    /// ARM (Ampere/ThunderX-class).
    Aarch64,
    /// IBM POWER9.
    Ppc64le,
    /// GPU nodes (x86 host + NVIDIA accelerators).
    GpuA100,
}

impl Architecture {
    /// All architectures.
    pub const ALL: [Architecture; 5] = [
        Architecture::X86Intel,
        Architecture::X86Amd,
        Architecture::Aarch64,
        Architecture::Ppc64le,
        Architecture::GpuA100,
    ];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::X86Intel => "x86-intel",
            Architecture::X86Amd => "x86-amd",
            Architecture::Aarch64 => "aarch64",
            Architecture::Ppc64le => "ppc64le",
            Architecture::GpuA100 => "gpu-a100",
        }
    }
}

/// One compute node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Hostname (`cn0001`…).
    pub name: String,
    /// Rack id (`r01`…).
    pub rack: String,
    /// Architecture family.
    pub arch: Architecture,
}

/// The cluster's physical and architectural layout.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterTopology {
    nodes: BTreeMap<String, NodeInfo>,
}

impl ClusterTopology {
    /// An empty topology.
    pub fn new() -> ClusterTopology {
        ClusterTopology::default()
    }

    /// A Darwin-like layout: `racks` racks of `nodes_per_rack` nodes, with
    /// architectures assigned in contiguous blocks (test-beds rack like
    /// hardware together). Node names are `cn0001`… matching `datagen`.
    pub fn darwin_like(racks: usize, nodes_per_rack: usize) -> ClusterTopology {
        let mut topo = ClusterTopology::new();
        let total = racks * nodes_per_rack;
        for i in 0..total {
            let arch = Architecture::ALL[(i * Architecture::ALL.len()) / total.max(1)];
            topo.add(NodeInfo {
                name: format!("cn{:04}", i + 1),
                rack: format!("r{:02}", i / nodes_per_rack + 1),
                arch,
            });
        }
        topo
    }

    /// Register a node (replaces an existing entry of the same name).
    pub fn add(&mut self, node: NodeInfo) {
        self.nodes.insert(node.name.clone(), node);
    }

    /// Look up a node.
    pub fn node(&self, name: &str) -> Option<&NodeInfo> {
        self.nodes.get(name)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in name order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.values()
    }

    /// Nodes in `rack`.
    pub fn rack_members(&self, rack: &str) -> Vec<&NodeInfo> {
        self.nodes.values().filter(|n| n.rack == rack).collect()
    }

    /// Nodes of `arch`.
    pub fn arch_peers(&self, arch: Architecture) -> Vec<&NodeInfo> {
        self.nodes.values().filter(|n| n.arch == arch).collect()
    }

    /// Distinct rack ids in order.
    pub fn racks(&self) -> Vec<String> {
        let mut racks: Vec<String> = self.nodes.values().map(|n| n.rack.clone()).collect();
        racks.sort_unstable();
        racks.dedup();
        racks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darwin_like_layout() {
        let topo = ClusterTopology::darwin_like(4, 10);
        assert_eq!(topo.len(), 40);
        assert_eq!(topo.racks().len(), 4);
        assert_eq!(topo.rack_members("r01").len(), 10);
        // All five architectures present.
        for arch in Architecture::ALL {
            assert!(!topo.arch_peers(arch).is_empty(), "{arch:?} missing");
        }
        // Node lookup works and is consistent.
        let n = topo.node("cn0001").unwrap();
        assert_eq!(n.rack, "r01");
    }

    #[test]
    fn arch_blocks_are_contiguous() {
        let topo = ClusterTopology::darwin_like(5, 10);
        let archs: Vec<Architecture> = topo.nodes().map(|n| n.arch).collect();
        // Architectures must be non-decreasing through node order.
        for w in archs.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn unknown_node_is_none() {
        let topo = ClusterTopology::darwin_like(1, 2);
        assert!(topo.node("nope").is_none());
    }

    #[test]
    fn add_replaces() {
        let mut topo = ClusterTopology::new();
        topo.add(NodeInfo {
            name: "a".into(),
            rack: "r1".into(),
            arch: Architecture::X86Amd,
        });
        topo.add(NodeInfo {
            name: "a".into(),
            rack: "r2".into(),
            arch: Architecture::X86Amd,
        });
        assert_eq!(topo.len(), 1);
        assert_eq!(topo.node("a").unwrap().rack, "r2");
    }
}
