//! The stored log record (an OpenSearch document, roughly).

use hetsyslog_core::Category;
use serde::{Deserialize, Serialize};
use syslog_model::{Facility, Severity, SyslogMessage};

/// One ingested, enriched log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Store-assigned document id.
    pub id: u64,
    /// Event time, Unix seconds.
    pub unix_seconds: i64,
    /// Originating node (hostname).
    pub node: String,
    /// Emitting application tag.
    pub app: String,
    /// Syslog severity.
    pub severity: Severity,
    /// Syslog facility.
    pub facility: Facility,
    /// The free-text message.
    pub message: String,
    /// Real-time classification, when the classifying ingest ran.
    pub category: Option<Category>,
}

impl LogRecord {
    /// Build from a parsed frame; `fallback_time` supplies the event time
    /// when the frame has no timestamp.
    pub fn from_message(id: u64, msg: &SyslogMessage, fallback_time: i64) -> LogRecord {
        LogRecord {
            id,
            unix_seconds: msg
                .timestamp
                .map(|t| t.unix_seconds())
                .unwrap_or(fallback_time),
            node: msg
                .hostname
                .clone()
                .unwrap_or_else(|| "unknown".to_string()),
            app: msg
                .app_name
                .clone()
                .unwrap_or_else(|| "unknown".to_string()),
            severity: msg.severity,
            facility: msg.facility,
            message: msg.message.clone(),
            category: None,
        }
    }

    /// Build by consuming a parsed frame: the hostname, app, and message
    /// strings move into the record instead of being cloned. Use on the
    /// hot ingest path when the message is not needed afterwards.
    pub fn from_message_owned(id: u64, msg: SyslogMessage, fallback_time: i64) -> LogRecord {
        LogRecord {
            id,
            unix_seconds: msg
                .timestamp
                .map(|t| t.unix_seconds())
                .unwrap_or(fallback_time),
            node: msg.hostname.unwrap_or_else(|| "unknown".to_string()),
            app: msg.app_name.unwrap_or_else(|| "unknown".to_string()),
            severity: msg.severity,
            facility: msg.facility,
            message: msg.message,
            category: None,
        }
    }

    /// JSON-lines representation (the persistence / wire format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LogRecord serializes")
    }

    /// Parse the JSON-lines representation.
    pub fn from_json(line: &str) -> Result<LogRecord, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parsed_frame() {
        let msg =
            syslog_model::parse("<34>Oct 11 22:14:15 cn0007 sshd[42]: Connection closed [preauth]")
                .unwrap();
        let rec = LogRecord::from_message(9, &msg, 0);
        assert_eq!(rec.id, 9);
        assert_eq!(rec.node, "cn0007");
        assert_eq!(rec.app, "sshd");
        assert!(rec.unix_seconds > 0, "timestamp should be used");
        assert_eq!(rec.message, "Connection closed [preauth]");
        assert!(rec.category.is_none());
    }

    #[test]
    fn fallback_time_used_when_no_timestamp() {
        let msg = syslog_model::SyslogMessage::free_form("raw text");
        let rec = LogRecord::from_message(1, &msg, 12345);
        assert_eq!(rec.unix_seconds, 12345);
        assert_eq!(rec.node, "unknown");
    }

    #[test]
    fn owned_constructor_matches_borrowed() {
        for frame in [
            "<34>Oct 11 22:14:15 cn0007 sshd[42]: Connection closed [preauth]",
            "free-form text with no structure",
        ] {
            let msg = syslog_model::parse(frame)
                .unwrap_or_else(|_| syslog_model::SyslogMessage::free_form(frame));
            let borrowed = LogRecord::from_message(5, &msg, 777);
            let owned = LogRecord::from_message_owned(5, msg, 777);
            assert_eq!(borrowed, owned);
        }
    }

    #[test]
    fn json_roundtrip() {
        let msg = syslog_model::parse("<34>Oct 11 22:14:15 cn1 app: hello").unwrap();
        let mut rec = LogRecord::from_message(3, &msg, 0);
        rec.category = Some(Category::ThermalIssue);
        let line = rec.to_json();
        let back = LogRecord::from_json(&line).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(LogRecord::from_json("{not json").is_err());
    }
}
