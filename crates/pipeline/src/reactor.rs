//! Event-driven TCP ingest front end: a small pool of reactor threads,
//! each multiplexing hundreds of nonblocking connections over one
//! level-triggered epoll instance (see the vendored [`netpoll`] shim).
//!
//! The thread-per-connection front end ([`frontend =
//! threads`](crate::listener::Frontend::Threads)) burns one OS thread and
//! one 10ms poll loop per peer; at the connection counts a test-bed
//! cluster produces (hundreds of rsyslogd forwarders) that is thousands
//! of mostly-idle threads waking on timers. The reactor inverts it: each
//! of N threads owns
//!
//! * one [`netpoll::Poller`] (level-triggered epoll),
//! * one [`netpoll::EventFd`] so shutdown and connection handoff
//!   interrupt `epoll_wait` *immediately* — `stop()` never waits out a
//!   poll interval,
//! * a map of per-connection state: the nonblocking [`TcpStream`], its
//!   RFC 6587 [`FrameDecoder`](syslog_model::FrameDecoder) (one per
//!   connection, so a corrupt sender never desyncs a neighbor), drop
//!   accounting, and the idle deadline.
//!
//! Reactor 0 additionally owns the listening socket: accepted
//! connections are assigned round-robin across the pool, handed to their
//! reactor through a mutex-guarded inbox plus an eventfd wake.
//!
//! Semantics are bit-identical to the thread front end by construction:
//! every read goes through the same [`FrameSink`] (same per-connection
//! FIFO order — a connection lives on exactly one reactor and all its
//! frames route to one shard ring), the same Block/Shed overload
//! accounting, the same dead-letter ring, and the same decoder-tail
//! flush on close, idle timeout, or drain.

use crate::listener::FrameSink;
use netpoll::{EventFd, Poller};
use obs::{Counter, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token for a reactor's own eventfd (shutdown / connection handoff).
const WAKE_TOKEN: u64 = u64::MAX;
/// Token for the listening socket, registered on reactor 0 only.
const ACCEPT_TOKEN: u64 = u64::MAX - 1;
/// Reads per connection per wakeup. Level-triggered readiness re-reports
/// a still-backlogged connection on the next `wait`, so capping read
/// work here bounds how long one heavy sender can starve its neighbors
/// without any re-arm bookkeeping.
const MAX_READS_PER_WAKEUP: usize = 4;

/// Per-reactor instruments, one series per reactor under a `reactor`
/// label (mirroring [`ShardStats`](crate::shard::ShardStats)).
#[derive(Debug)]
pub struct ReactorStats {
    /// Connections currently registered on this reactor's poller.
    pub connections: Arc<Gauge>,
    /// `epoll_wait` returns (including timeouts — the idle sweep rides
    /// on them).
    pub wakeups: Arc<Counter>,
    /// Bytes read off sockets per wakeup that moved data.
    pub read_bytes: Arc<Histogram>,
    /// Ready events per wakeup: the depth of the kernel's ready queue
    /// each time the reactor came back from `epoll_wait`.
    pub ready_events: Arc<Histogram>,
}

impl ReactorStats {
    /// Detached instruments: recording works, nothing is exported.
    pub fn detached() -> ReactorStats {
        ReactorStats {
            connections: Arc::new(Gauge::new()),
            wakeups: Arc::new(Counter::new()),
            read_bytes: Arc::new(Histogram::new()),
            ready_events: Arc::new(Histogram::new()),
        }
    }

    /// Instruments for reactor `reactor` registered on `registry`.
    pub fn registered(reactor: usize, registry: &Registry) -> ReactorStats {
        let reactor_label = reactor.to_string();
        let labeled: &[(&str, &str)] = &[("reactor", reactor_label.as_str())];
        ReactorStats {
            connections: registry.gauge(
                "hetsyslog_reactor_connections",
                "TCP connections currently registered on each reactor's poller",
                labeled,
            ),
            wakeups: registry.counter(
                "hetsyslog_reactor_wakeups_total",
                "epoll_wait returns per reactor, timeouts included",
                labeled,
            ),
            read_bytes: registry.histogram(
                "hetsyslog_reactor_read_bytes",
                "Bytes read off sockets per reactor wakeup that moved data",
                labeled,
            ),
            ready_events: registry.histogram(
                "hetsyslog_reactor_ready_events",
                "Ready events per epoll_wait return (kernel ready-queue depth)",
                labeled,
            ),
        }
    }
}

/// Handoff slot for connections accepted on reactor 0 but owned by
/// another reactor: push under the lock, wake the eventfd, and the
/// owner registers them on its own poller.
struct Inbox {
    wake: EventFd,
    pending: Mutex<Vec<(u64, TcpStream)>>,
}

/// The running reactor pool. Built by
/// [`SyslogListener::start`](crate::listener::SyslogListener::start)
/// when the configured [`Frontend`](crate::listener::Frontend) is
/// `Reactor`; stopped (eventfd wake + join, no poll-interval wait) from
/// the listener's shutdown path.
pub(crate) struct ReactorFrontend {
    inboxes: Vec<Arc<Inbox>>,
    threads: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl ReactorFrontend {
    /// Spawn one reactor thread per entry in `stats`; reactor 0 takes
    /// ownership of the (nonblocking) listening socket.
    pub(crate) fn start(
        tcp: TcpListener,
        sink: FrameSink,
        shutdown: Arc<AtomicBool>,
        idle_timeout: Duration,
        stats: Vec<Arc<ReactorStats>>,
    ) -> std::io::Result<ReactorFrontend> {
        let n = stats.len().max(1);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            inboxes.push(Arc::new(Inbox {
                wake: EventFd::new()?,
                pending: Mutex::new(Vec::new()),
            }));
        }
        let next_conn_id = Arc::new(AtomicU64::new(1));
        let round_robin = Arc::new(AtomicUsize::new(0));
        let mut acceptor = Some(tcp);
        let mut threads = Vec::with_capacity(n);
        for (index, stats) in stats.into_iter().enumerate() {
            let reactor = Reactor {
                index,
                acceptor: acceptor.take(),
                inboxes: inboxes.clone(),
                sink: sink.clone(),
                shutdown: shutdown.clone(),
                idle_timeout,
                next_conn_id: next_conn_id.clone(),
                round_robin: round_robin.clone(),
                stats,
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("reactor-{index}"))
                    .spawn(move || reactor.run())?,
            );
        }
        Ok(ReactorFrontend {
            inboxes,
            threads,
            shutdown,
        })
    }

    /// Stop every reactor: set the flag, wake each eventfd (cutting any
    /// in-flight `epoll_wait` short), and join. Each thread flushes the
    /// decoder tail of every connection it still owns on the way out.
    pub(crate) fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for inbox in &self.inboxes {
            let _ = inbox.wake.wake();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorFrontend {
    fn drop(&mut self) {
        self.stop();
    }
}

/// State a connection carries between wakeups.
struct Conn {
    stream: TcpStream,
    decoder: syslog_model::FrameDecoder,
    decoder_dropped: u64,
    last_activity: Instant,
}

/// One reactor thread's context; `run` consumes it on the thread.
struct Reactor {
    index: usize,
    acceptor: Option<TcpListener>,
    inboxes: Vec<Arc<Inbox>>,
    sink: FrameSink,
    shutdown: Arc<AtomicBool>,
    idle_timeout: Duration,
    next_conn_id: Arc<AtomicU64>,
    round_robin: Arc<AtomicUsize>,
    stats: Arc<ReactorStats>,
}

impl Reactor {
    fn run(self) {
        let Ok(mut poller) = Poller::new() else {
            return;
        };
        let own = self.inboxes[self.index].clone();
        if poller.add(&own.wake, WAKE_TOKEN).is_err() {
            return;
        }
        if let Some(listener) = &self.acceptor {
            if poller.add(listener, ACCEPT_TOKEN).is_err() {
                return;
            }
        }
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        // One read buffer per reactor (not per connection): frames are
        // copied out by the decoder, so the buffer is scratch.
        let mut buf = vec![0u8; 64 * 1024];
        let mut events = Vec::with_capacity(256);
        // Sweep cadence: a fraction of the idle timeout, bounded so the
        // short timeouts tests use still sweep promptly and long
        // production ones don't spin.
        let tick =
            (self.idle_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(500));
        let tick_ms = tick.as_millis() as i32;
        let mut last_sweep = Instant::now();

        'run: loop {
            if poller.wait(&mut events, Some(tick_ms)).is_err() {
                break;
            }
            self.stats.wakeups.inc();
            self.stats.ready_events.record(events.len() as u64);
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            for event in &events {
                match event.token {
                    WAKE_TOKEN => {
                        own.wake.drain();
                        let injected: Vec<(u64, TcpStream)> =
                            std::mem::take(&mut *own.pending.lock());
                        for (conn_id, stream) in injected {
                            self.register(&poller, &mut conns, conn_id, stream);
                        }
                    }
                    ACCEPT_TOKEN => self.accept_ready(&poller, &mut conns),
                    conn_id => {
                        if !self.service(conn_id, &poller, &mut conns, &mut buf) {
                            break 'run; // pipeline gone
                        }
                    }
                }
            }
            if last_sweep.elapsed() >= tick {
                last_sweep = Instant::now();
                self.sweep_idle(&poller, &mut conns);
            }
        }

        // Graceful drain: flush every owned decoder tail and balance the
        // opened/closed ledger, including connections that were handed
        // to us but never made it out of the inbox.
        for (conn_id, conn) in conns.drain() {
            self.retire(conn_id, conn, false);
        }
        self.stats.connections.set(0);
        for (_conn_id, stream) in own.pending.lock().drain(..) {
            drop(stream);
            self.sink.ingest_stats().connections_closed.inc();
        }
    }

    /// Put an accepted connection under this reactor's poller.
    fn register(
        &self,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        conn_id: u64,
        stream: TcpStream,
    ) {
        if stream.set_nonblocking(true).is_err() || poller.add(&stream, conn_id).is_err() {
            // Registration failed: the open was already counted, so
            // account the close to keep the ledger balanced.
            drop(stream);
            self.sink.ingest_stats().connections_closed.inc();
            return;
        }
        conns.insert(
            conn_id,
            Conn {
                stream,
                decoder: syslog_model::FrameDecoder::new(),
                decoder_dropped: 0,
                last_activity: Instant::now(),
            },
        );
        self.stats.connections.set(conns.len() as i64);
    }

    /// Accept every pending connection (reactor 0 only) and assign each
    /// to a reactor round-robin.
    fn accept_ready(&self, poller: &Poller, conns: &mut HashMap<u64, Conn>) {
        let Some(listener) = &self.acceptor else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let conn_id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
                    self.sink.ingest_stats().connections_opened.inc();
                    let target =
                        self.round_robin.fetch_add(1, Ordering::Relaxed) % self.inboxes.len();
                    if target == self.index {
                        self.register(poller, conns, conn_id, stream);
                    } else {
                        self.inboxes[target].pending.lock().push((conn_id, stream));
                        let _ = self.inboxes[target].wake.wake();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Service one readable connection. Returns `false` once the
    /// pipeline is gone (shard rings disconnected).
    fn service(
        &self,
        conn_id: u64,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        buf: &mut [u8],
    ) -> bool {
        let Some(conn) = conns.get_mut(&conn_id) else {
            // Stale event for a connection retired earlier in this batch.
            return true;
        };
        let stats = self.sink.ingest_stats();
        let mut close = false;
        let mut alive = true;
        let mut total = 0u64;
        for _ in 0..MAX_READS_PER_WAKEUP {
            match (&conn.stream).read(buf) {
                Ok(0) => {
                    close = true; // EOF: peer closed cleanly.
                    break;
                }
                Ok(n) => {
                    total += n as u64;
                    conn.last_activity = Instant::now();
                    stats.bytes.add(n as u64);
                    let decode_started = Instant::now();
                    let frames = conn.decoder.push(&buf[..n]);
                    stats.record_decode(decode_started.elapsed());
                    let dropped_now = conn.decoder.dropped() - conn.decoder_dropped;
                    if dropped_now > 0 {
                        conn.decoder_dropped = conn.decoder.dropped();
                        stats.decode_dropped.add(dropped_now);
                    }
                    stats.add_source(conn_id, frames.len() as u64, n as u64);
                    if !self.sink.submit_many(conn_id, frames) {
                        alive = false;
                        break;
                    }
                    if n < buf.len() {
                        break; // short read: the socket is drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if total > 0 {
            self.stats.read_bytes.record(total);
        }
        if close {
            if let Some(conn) = conns.remove(&conn_id) {
                let _ = poller.delete(&conn.stream);
                self.retire(conn_id, conn, false);
                self.stats.connections.set(conns.len() as i64);
            }
        }
        alive
    }

    /// Close connections quiet past the idle timeout (decoder tails
    /// flushed, `idle_closed` accounted — same as the thread front end).
    fn sweep_idle(&self, poller: &Poller, conns: &mut HashMap<u64, Conn>) {
        let expired: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.last_activity.elapsed() >= self.idle_timeout)
            .map(|(id, _)| *id)
            .collect();
        if expired.is_empty() {
            return;
        }
        for conn_id in expired {
            if let Some(conn) = conns.remove(&conn_id) {
                let _ = poller.delete(&conn.stream);
                self.retire(conn_id, conn, true);
            }
        }
        self.stats.connections.set(conns.len() as i64);
    }

    /// Account a connection's close exactly like the tail of
    /// `serve_connection`: flush the decoder tail, fold residual decoder
    /// drops, bump `idle_closed`/`connections_closed`.
    fn retire(&self, conn_id: u64, conn: Conn, idled: bool) {
        let Conn {
            stream,
            mut decoder,
            decoder_dropped,
            ..
        } = conn;
        drop(stream);
        let stats = self.sink.ingest_stats();
        if let Some(tail) = decoder.finish() {
            stats.add_source(conn_id, 1, 0);
            self.sink.submit(conn_id, tail);
        }
        let dropped_now = decoder.dropped() - decoder_dropped;
        if dropped_now > 0 {
            stats.decode_dropped.add(dropped_now);
        }
        if idled {
            stats.idle_closed.inc();
        }
        stats.connections_closed.inc();
    }
}
