//! The §4.5 monitoring views.
//!
//! * **Frequency and temporal analysis** (§4.5.1): message counts over time
//!   buckets, grouped by node / app / category, with burst detection — "a
//!   sudden influx of a large quantity of new syslog messages can be
//!   indicative of an issue".
//! * **Positional analysis** (§4.5.2): per-rack aggregation — nodes in a
//!   rack share an edge switch and a micro-climate, so rack-correlated
//!   thermal/network trouble stands out here.
//! * **Per-architecture analysis** (§4.5.3): compare a node against its
//!   same-architecture peers; a "problem" every peer reports identically
//!   is chassis-firmware noise, not an anomaly.

use crate::record::LogRecord;
use crate::store::LogStore;
use crate::topology::ClusterTopology;
use hetsyslog_core::Category;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A labeled time-series of counts (one Grafana panel line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series label (node, app or category name).
    pub label: String,
    /// Bucket start times, Unix seconds.
    pub bucket_starts: Vec<i64>,
    /// Message counts per bucket.
    pub counts: Vec<u64>,
}

impl TimeSeries {
    /// Mean bucket count.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().sum::<u64>() as f64 / self.counts.len() as f64
    }

    /// Population standard deviation of bucket counts.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        if self.counts.is_empty() {
            return 0.0;
        }
        let var = self
            .counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.counts.len() as f64;
        var.sqrt()
    }

    /// Buckets whose count exceeds `mean + k·σ` — the §4.5.1 surge signal.
    /// Returns `(bucket_start, count)` pairs.
    pub fn bursts(&self, k: f64) -> Vec<(i64, u64)> {
        let threshold = self.mean() + k * self.std_dev();
        self.bucket_starts
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c as f64 > threshold && c > 0)
            .map(|(&t, &c)| (t, c))
            .collect()
    }
}

/// How to group the frequency analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupBy {
    /// One series per node.
    Node,
    /// One series per application tag.
    App,
    /// One series per classified category.
    Category,
    /// A single aggregate series.
    Total,
}

fn group_key(record: &LogRecord, group: GroupBy) -> String {
    match group {
        GroupBy::Node => record.node.clone(),
        GroupBy::App => record.app.clone(),
        GroupBy::Category => record
            .category
            .map(|c| c.label().to_string())
            .unwrap_or_else(|| "unclassified".to_string()),
        GroupBy::Total => "total".to_string(),
    }
}

/// §4.5.1 frequency/temporal analysis: bucketed counts per group over
/// `[from, to)` with `bucket_seconds`-wide buckets.
pub fn frequency_analysis(
    store: &LogStore,
    from: i64,
    to: i64,
    bucket_seconds: i64,
    group: GroupBy,
) -> Vec<TimeSeries> {
    assert!(bucket_seconds > 0, "bucket width must be positive");
    let n_buckets = ((to - from).max(0) as usize).div_ceil(bucket_seconds as usize);
    let bucket_starts: Vec<i64> = (0..n_buckets)
        .map(|i| from + i as i64 * bucket_seconds)
        .collect();
    let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    store.scan(from, to, &[], |r| {
        let bucket = ((r.unix_seconds - from) / bucket_seconds) as usize;
        let counts = groups
            .entry(group_key(r, group))
            .or_insert_with(|| vec![0; n_buckets]);
        if let Some(slot) = counts.get_mut(bucket) {
            *slot += 1;
        }
    });
    groups
        .into_iter()
        .map(|(label, counts)| TimeSeries {
            label,
            bucket_starts: bucket_starts.clone(),
            counts,
        })
        .collect()
}

/// One rack's aggregate in the positional view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackSummary {
    /// Rack id.
    pub rack: String,
    /// Total messages from the rack's nodes.
    pub total: u64,
    /// Messages in the category of interest.
    pub in_category: u64,
    /// Nodes in the rack that produced at least one in-category message.
    pub affected_nodes: usize,
}

/// §4.5.2 positional analysis: per-rack counts of `category` messages.
/// Racks whose `affected_nodes` is high show rack-correlated trouble
/// (cooling loss, edge-switch congestion).
pub fn positional_analysis(
    store: &LogStore,
    topology: &ClusterTopology,
    from: i64,
    to: i64,
    category: Category,
) -> Vec<RackSummary> {
    let mut per_rack: BTreeMap<String, (u64, u64, std::collections::BTreeSet<String>)> =
        BTreeMap::new();
    for rack in topology.racks() {
        per_rack.insert(rack, (0, 0, Default::default()));
    }
    store.scan(from, to, &[], |r| {
        let Some(node) = topology.node(&r.node) else {
            return;
        };
        let entry = per_rack
            .entry(node.rack.clone())
            .or_insert_with(|| (0, 0, Default::default()));
        entry.0 += 1;
        if r.category == Some(category) {
            entry.1 += 1;
            entry.2.insert(r.node.clone());
        }
    });
    per_rack
        .into_iter()
        .map(|(rack, (total, in_category, nodes))| RackSummary {
            rack,
            total,
            in_category,
            affected_nodes: nodes.len(),
        })
        .collect()
}

/// Verdict of the per-architecture comparison for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArchVerdict {
    /// The node behaves like its same-architecture peers.
    Nominal,
    /// The node's count deviates from its peers — a genuine anomaly.
    Anomalous {
        /// The node's own message count.
        count: u64,
        /// Mean count over the peer group.
        peer_mean: f64,
    },
    /// Every peer reports the same signature — §4.5.3's chassis-firmware
    /// false positive ("the readings are exactly the same" on all nodes).
    ArchWideSignature,
}

/// §4.5.3 per-architecture analysis: is `node`'s volume of `category`
/// messages anomalous relative to same-architecture peers?
///
/// `k` is the σ multiplier for anomaly, `arch_wide_fraction` the peer
/// fraction that, once affected, flips the verdict to a firmware-wide
/// signature rather than a per-node anomaly.
#[allow(clippy::too_many_arguments)] // topology query: all parameters are semantically distinct
pub fn per_architecture_analysis(
    store: &LogStore,
    topology: &ClusterTopology,
    from: i64,
    to: i64,
    category: Category,
    node_name: &str,
    k: f64,
    arch_wide_fraction: f64,
) -> Option<ArchVerdict> {
    let node = topology.node(node_name)?;
    let peers = topology.arch_peers(node.arch);
    if peers.len() < 2 {
        return Some(ArchVerdict::Nominal);
    }
    let mut counts: BTreeMap<&str, u64> = peers.iter().map(|p| (p.name.as_str(), 0)).collect();
    store.scan(from, to, &[], |r| {
        if r.category == Some(category) {
            if let Some(c) = counts.get_mut(r.node.as_str()) {
                *c += 1;
            }
        }
    });
    let affected = counts.values().filter(|&&c| c > 0).count();
    if affected as f64 >= arch_wide_fraction * peers.len() as f64 && affected >= 2 {
        return Some(ArchVerdict::ArchWideSignature);
    }
    let own = *counts.get(node_name)?;
    let peer_counts: Vec<u64> = counts
        .iter()
        .filter(|(name, _)| **name != node_name)
        .map(|(_, &c)| c)
        .collect();
    let mean = peer_counts.iter().sum::<u64>() as f64 / peer_counts.len() as f64;
    let var = peer_counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / peer_counts.len() as f64;
    let threshold = mean + k * var.sqrt();
    if own as f64 > threshold && own > 0 {
        Some(ArchVerdict::Anomalous {
            count: own,
            peer_mean: mean,
        })
    } else {
        Some(ArchVerdict::Nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Architecture;
    use syslog_model::{Facility, Severity};

    fn insert(store: &LogStore, t: i64, node: &str, cat: Category, msg: &str) {
        store.insert(LogRecord {
            id: store.allocate_id(),
            unix_seconds: t,
            node: node.to_string(),
            app: "kernel".to_string(),
            severity: Severity::Warning,
            facility: Facility::Kern,
            message: msg.to_string(),
            category: Some(cat),
        });
    }

    #[test]
    fn frequency_buckets_and_groups() {
        let store = LogStore::new();
        for t in 0..10 {
            insert(&store, t, "cn0001", Category::Unimportant, "tick");
        }
        for t in 10..12 {
            insert(&store, t, "cn0002", Category::ThermalIssue, "hot");
        }
        let series = frequency_analysis(&store, 0, 20, 5, GroupBy::Node);
        assert_eq!(series.len(), 2);
        let cn1 = series.iter().find(|s| s.label == "cn0001").unwrap();
        assert_eq!(cn1.counts, vec![5, 5, 0, 0]);
        let total = frequency_analysis(&store, 0, 20, 10, GroupBy::Total);
        assert_eq!(total[0].counts, vec![10, 2]);
        let by_cat = frequency_analysis(&store, 0, 20, 20, GroupBy::Category);
        assert_eq!(by_cat.len(), 2);
    }

    #[test]
    fn burst_detection_flags_surge() {
        let store = LogStore::new();
        // Quiet baseline: 1 message per 10s bucket, then a surge of 50.
        for b in 0..10 {
            insert(&store, b * 10, "cn0001", Category::Unimportant, "tick");
        }
        for i in 0..50 {
            insert(
                &store,
                100 + (i % 10),
                "cn0001",
                Category::MemoryIssue,
                "oom",
            );
        }
        let series = frequency_analysis(&store, 0, 110, 10, GroupBy::Total);
        let bursts = series[0].bursts(2.0);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].0, 100);
        assert_eq!(bursts[0].1, 50);
    }

    #[test]
    fn positional_analysis_ranks_racks() {
        let topo = ClusterTopology::darwin_like(2, 5); // cn0001-05 r01, cn0006-10 r02
        let store = LogStore::new();
        // Rack 1 has a cooling problem: three nodes hot.
        for (i, node) in ["cn0001", "cn0002", "cn0003"].iter().enumerate() {
            for j in 0..4 {
                insert(
                    &store,
                    (i * 4 + j) as i64,
                    node,
                    Category::ThermalIssue,
                    "hot",
                );
            }
        }
        insert(&store, 50, "cn0006", Category::Unimportant, "fine");
        let racks = positional_analysis(&store, &topo, 0, 100, Category::ThermalIssue);
        assert_eq!(racks.len(), 2);
        let r01 = racks.iter().find(|r| r.rack == "r01").unwrap();
        let r02 = racks.iter().find(|r| r.rack == "r02").unwrap();
        assert_eq!(r01.affected_nodes, 3);
        assert_eq!(r01.in_category, 12);
        assert_eq!(r02.affected_nodes, 0);
        assert_eq!(r02.total, 1);
    }

    #[test]
    fn per_arch_flags_lone_deviant() {
        let topo = ClusterTopology::darwin_like(1, 10); // all same rack; 2 nodes/arch
                                                        // Make a topology where one arch has 5 peers.
        let mut topo2 = ClusterTopology::new();
        for i in 0..5 {
            topo2.add(crate::topology::NodeInfo {
                name: format!("cn{:04}", i + 1),
                rack: "r01".into(),
                arch: Architecture::X86Amd,
            });
        }
        let _ = topo;
        let store = LogStore::new();
        for i in 0..20 {
            insert(&store, i, "cn0001", Category::MemoryIssue, "edac error");
        }
        let verdict = per_architecture_analysis(
            &store,
            &topo2,
            0,
            100,
            Category::MemoryIssue,
            "cn0001",
            2.0,
            0.8,
        )
        .unwrap();
        assert!(
            matches!(verdict, ArchVerdict::Anomalous { count: 20, .. }),
            "{verdict:?}"
        );
        // A quiet peer is nominal.
        let verdict = per_architecture_analysis(
            &store,
            &topo2,
            0,
            100,
            Category::MemoryIssue,
            "cn0002",
            2.0,
            0.8,
        )
        .unwrap();
        assert_eq!(verdict, ArchVerdict::Nominal);
    }

    #[test]
    fn per_arch_detects_firmware_wide_signature() {
        let mut topo = ClusterTopology::new();
        for i in 0..4 {
            topo.add(crate::topology::NodeInfo {
                name: format!("cn{:04}", i + 1),
                rack: "r01".into(),
                arch: Architecture::Aarch64,
            });
        }
        let store = LogStore::new();
        // Every node of the arch reports the same "fan missing" issue —
        // the §4.5.3 early-access-hardware false positive.
        for i in 0..4 {
            insert(
                &store,
                i,
                &format!("cn{:04}", i + 1),
                Category::HardwareIssue,
                "fan 3 missing",
            );
        }
        let verdict = per_architecture_analysis(
            &store,
            &topo,
            0,
            100,
            Category::HardwareIssue,
            "cn0001",
            2.0,
            0.8,
        )
        .unwrap();
        assert_eq!(verdict, ArchVerdict::ArchWideSignature);
    }

    #[test]
    fn unknown_node_is_none() {
        let topo = ClusterTopology::darwin_like(1, 2);
        let store = LogStore::new();
        assert!(per_architecture_analysis(
            &store,
            &topo,
            0,
            10,
            Category::ThermalIssue,
            "ghost",
            2.0,
            0.8
        )
        .is_none());
    }
}
