//! The socket-facing ingest front end: fault-tolerant TCP + UDP syslog
//! listeners over the parse/store pipeline.
//!
//! The paper's Tivan substrate receives syslog from hundreds of
//! heterogeneous Darwin nodes over the network (rsyslogd → Fluentd →
//! OpenSearch, §2). This module is that receiving edge, built to survive
//! hostile traffic the way production log pipelines do:
//!
//! * **Per-connection decoder state** — each TCP connection owns an RFC
//!   6587 [`FrameDecoder`](syslog_model::FrameDecoder), so one sender's
//!   corrupt framing never desynchronizes another's stream;
//! * **Sharded ingest fabric** — frames are partitioned hash-by-connection
//!   (round-robin for UDP) across N [`shard`](crate::shard)s, each with its
//!   own bounded SPSC ring, micro-batch worker, and store write lane, so
//!   throughput scales with cores instead of serializing on one queue
//!   lock; idle workers steal whole batches from skewed siblings;
//! * **Bounded ingest queue** (summed across the shard rings) with a
//!   configurable [`OverloadPolicy`]:
//!   `Block` applies lossless backpressure through the TCP window, `Shed`
//!   drops frames at the edge and counts every drop by reason;
//! * **Idle timeouts** — a connection that goes quiet past
//!   [`ListenerConfig::idle_timeout`] is closed (and its decoder tail
//!   flushed), so slow or dead peers cannot pin resources forever;
//! * **Dead-letter ring** — the last N unparseable or shed frames are kept
//!   for operator inspection instead of vanishing into a counter;
//! * **Graceful drain** — [`SyslogListener::shutdown`] stops accepting,
//!   joins every connection (flushing decoder tails), then drains the
//!   queue through the parser workers before returning final stats.

use crate::monitor::{BatchStats, FlushReason};
use crate::record::LogRecord;
use crate::shard::{ShardRouter, ShardStats};
use crate::store::LogStore;
use crossbeam::channel::{RecvTimeoutError, TrySendError};
use hetsyslog_core::{BatchSnapshot, FrameOutcome, HealthSnapshot, IngestSnapshot, MonitorService};
use obs::{Counter, Gauge, Histogram, Registry, Telemetry};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which TCP front end feeds the shard fabric. Both produce bit-identical
/// pipeline semantics (same per-connection FIFO order into the rings, same
/// overload and dead-letter accounting, same decoder-tail flush on close);
/// they differ only in how socket readiness is discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// One OS thread per accepted connection, blocking reads with a short
    /// poll timeout. Simple and portable; kept as the escape hatch and as
    /// the baseline the reactor is benchmarked against.
    Threads,
    /// Event-driven: `threads` reactor threads (`0` = auto), each
    /// multiplexing its share of the connections over level-triggered
    /// epoll — see [`crate::reactor`]. Shutdown wakes the reactors through
    /// an eventfd, so `stop()` never waits out a poll interval.
    Reactor {
        /// Reactor thread count; `0` picks a small default.
        threads: usize,
    },
}

impl Default for Frontend {
    fn default() -> Frontend {
        Frontend::Reactor { threads: 0 }
    }
}

impl Frontend {
    /// Reactor threads this front end runs (0 for the thread-per-conn
    /// front end). Two reactors by default: enough to overlap accept
    /// with reads, without claiming cores the parser workers need.
    pub fn reactor_threads(&self) -> usize {
        match self {
            Frontend::Threads => 0,
            Frontend::Reactor { threads: 0 } => 2,
            Frontend::Reactor { threads } => *threads,
        }
    }
}

/// What to do when the bounded ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the connection thread until the parsers catch up. Lossless:
    /// backpressure propagates to the sender through the TCP window (the
    /// rsyslog disk-queue model without the disk).
    #[default]
    Block,
    /// Drop the frame at the edge and count it. Keeps the listener
    /// responsive under overload at the cost of loss (the UDP-syslog
    /// tradition, applied deliberately).
    Shed,
}

/// Why a frame was dropped or dead-lettered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The bounded queue was full under [`OverloadPolicy::Shed`].
    QueueFull,
    /// `syslog_model::parse` rejected the frame (empty frames; everything
    /// else is absorbed by the free-form fallback).
    ParseError,
}

impl DropReason {
    /// Stable label for logs and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::ParseError => "parse_error",
        }
    }
}

/// Identifies where a frame entered the listener. TCP connections get ids
/// from 1; id 0 is the UDP socket.
pub const UDP_SOURCE: u64 = 0;

/// A frame the pipeline could not (or chose not to) ingest, kept for
/// operator inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// Why the frame was dropped.
    pub reason: DropReason,
    /// Connection id the frame arrived on ([`UDP_SOURCE`] for UDP).
    pub source: u64,
    /// The raw frame text (lossy UTF-8).
    pub frame: String,
}

/// Fixed-capacity ring of the most recent [`DeadLetter`]s.
#[derive(Debug)]
pub struct DeadLetterRing {
    capacity: usize,
    items: Mutex<VecDeque<DeadLetter>>,
    total: Arc<Counter>,
}

impl DeadLetterRing {
    /// New ring holding at most `capacity` letters (detached counter — use
    /// [`DeadLetterRing::registered`] to export it).
    pub fn new(capacity: usize) -> DeadLetterRing {
        DeadLetterRing {
            capacity: capacity.max(1),
            items: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            total: Arc::new(Counter::default()),
        }
    }

    /// A ring whose lifetime total is exported as
    /// `hetsyslog_dead_letters_total` on `registry`.
    pub fn registered(capacity: usize, registry: &Registry) -> DeadLetterRing {
        DeadLetterRing {
            total: registry.counter(
                "hetsyslog_dead_letters_total",
                "Frames dead-lettered (shed or unparseable), including evicted ones",
                &[],
            ),
            ..DeadLetterRing::new(capacity)
        }
    }

    /// Record a dropped frame, evicting the oldest letter when full.
    pub fn push(&self, letter: DeadLetter) {
        self.total.inc();
        let mut items = self.items.lock();
        if items.len() == self.capacity {
            items.pop_front();
        }
        items.push_back(letter);
    }

    /// The retained letters, oldest first.
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.items.lock().iter().cloned().collect()
    }

    /// Letters currently retained.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }

    /// Total letters ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total.get()
    }
}

/// Per-source counters kept by [`IngestStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounters {
    /// Frames decoded from this source.
    pub frames: u64,
    /// Raw bytes received from this source.
    pub bytes: u64,
}

/// Shared, lock-light counters for the whole listener. Snapshot with
/// [`IngestStats::snapshot`] to thread through
/// [`MonitorService::health`](hetsyslog_core::MonitorService::health).
///
/// `Default` builds detached instruments (recording works, nothing is
/// exported); [`IngestStats::registered`] builds the same counters backed
/// by a shared [`Registry`], so a `/metrics` scrape sees them live.
#[derive(Debug)]
pub struct IngestStats {
    /// Frames decoded off the wire (before parse).
    pub frames: Arc<Counter>,
    /// Raw bytes received.
    pub bytes: Arc<Counter>,
    /// Records parsed and stored.
    pub ingested: Arc<Counter>,
    /// Frames rejected by the syslog parser.
    pub parse_errors: Arc<Counter>,
    /// Frames shed because the queue was full.
    pub shed: Arc<Counter>,
    /// Corrupt octet counts dropped by the per-connection decoders.
    pub decode_dropped: Arc<Counter>,
    /// TCP connections accepted.
    pub connections_opened: Arc<Counter>,
    /// TCP connections closed (any reason).
    pub connections_closed: Arc<Counter>,
    /// Connections closed for exceeding the idle timeout.
    pub idle_closed: Arc<Counter>,
    /// Datagrams received on the UDP socket.
    pub udp_datagrams: Arc<Counter>,
    /// Raw bytes received on the UDP socket (also folded into `bytes`).
    pub udp_bytes: Arc<Counter>,
    /// Datagrams that filled the receive buffer exactly — almost always a
    /// sender whose payload was silently truncated by the kernel.
    pub udp_truncated: Arc<Counter>,
    /// Wall time spent in `FrameDecoder::push` per read(2).
    decode_us: Arc<Histogram>,
    /// Frames sitting in the bounded ingest queue (sampled by workers).
    queue_depth: Arc<Gauge>,
    per_source: Mutex<HashMap<u64, SourceCounters>>,
}

impl Default for IngestStats {
    fn default() -> IngestStats {
        IngestStats {
            frames: Arc::new(Counter::new()),
            bytes: Arc::new(Counter::new()),
            ingested: Arc::new(Counter::new()),
            parse_errors: Arc::new(Counter::new()),
            shed: Arc::new(Counter::new()),
            decode_dropped: Arc::new(Counter::new()),
            connections_opened: Arc::new(Counter::new()),
            connections_closed: Arc::new(Counter::new()),
            idle_closed: Arc::new(Counter::new()),
            udp_datagrams: Arc::new(Counter::new()),
            udp_bytes: Arc::new(Counter::new()),
            udp_truncated: Arc::new(Counter::new()),
            decode_us: Arc::new(Histogram::new()),
            queue_depth: Arc::new(Gauge::new()),
            per_source: Mutex::new(HashMap::new()),
        }
    }
}

impl IngestStats {
    /// Ingest counters registered on a shared telemetry registry. Per-drop
    /// reasons share `hetsyslog_ingest_dropped_total` under a `reason`
    /// label, matching [`DropReason::as_str`].
    pub fn registered(registry: &Registry) -> IngestStats {
        let dropped = |reason: DropReason| {
            registry.counter(
                "hetsyslog_ingest_dropped_total",
                "Frames dropped at the ingest edge, by reason",
                &[("reason", reason.as_str())],
            )
        };
        IngestStats {
            frames: registry.counter(
                "hetsyslog_ingest_frames_total",
                "Frames decoded off the wire, before parse",
                &[],
            ),
            bytes: registry.counter(
                "hetsyslog_ingest_bytes_total",
                "Raw bytes received on the TCP and UDP sockets",
                &[],
            ),
            ingested: registry.counter(
                "hetsyslog_ingest_stored_total",
                "Records parsed and inserted into the store",
                &[],
            ),
            parse_errors: dropped(DropReason::ParseError),
            shed: dropped(DropReason::QueueFull),
            decode_dropped: registry.counter(
                "hetsyslog_decoder_dropped_total",
                "Corrupt octet-counted frames dropped by per-connection decoders",
                &[],
            ),
            connections_opened: registry.counter(
                "hetsyslog_ingest_connections_opened_total",
                "TCP connections accepted",
                &[],
            ),
            connections_closed: registry.counter(
                "hetsyslog_ingest_connections_closed_total",
                "TCP connections closed, any reason",
                &[],
            ),
            idle_closed: registry.counter(
                "hetsyslog_ingest_connections_idle_closed_total",
                "TCP connections closed for exceeding the idle timeout",
                &[],
            ),
            udp_datagrams: registry.counter(
                "hetsyslog_udp_datagrams_total",
                "Datagrams received on the UDP socket",
                &[],
            ),
            udp_bytes: registry.counter(
                "hetsyslog_udp_bytes_total",
                "Raw bytes received on the UDP socket",
                &[],
            ),
            udp_truncated: registry.counter(
                "hetsyslog_udp_truncated_total",
                "Datagrams that filled the receive buffer exactly (likely \
                 truncated by the kernel)",
                &[],
            ),
            decode_us: registry.histogram(
                "hetsyslog_stage_duration_us",
                "Per-stage batch processing time in microseconds",
                &[("stage", "decode")],
            ),
            queue_depth: registry.gauge(
                "hetsyslog_ingest_queue_depth",
                "Frames in the bounded ingest queue, sampled at batch pickup",
                &[],
            ),
            per_source: Mutex::new(HashMap::new()),
        }
    }

    /// Fold `frames`/`bytes` deltas into one source's counters.
    pub(crate) fn add_source(&self, source: u64, frames: u64, bytes: u64) {
        let mut map = self.per_source.lock();
        let entry = map.entry(source).or_default();
        entry.frames += frames;
        entry.bytes += bytes;
    }

    /// Record one read(2)'s `FrameDecoder::push` wall time.
    pub(crate) fn record_decode(&self, elapsed: Duration) {
        self.decode_us.record_duration_us(elapsed);
    }

    /// Per-source counters, sorted by source id.
    pub fn per_source(&self) -> Vec<(u64, SourceCounters)> {
        let mut rows: Vec<(u64, SourceCounters)> = self
            .per_source
            .lock()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        rows.sort_by_key(|(id, _)| *id);
        rows
    }

    /// Point-in-time snapshot in the core wire format.
    pub fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            frames: self.frames.get(),
            bytes: self.bytes.get(),
            ingested: self.ingested.get(),
            parse_errors: self.parse_errors.get(),
            shed: self.shed.get(),
            decode_dropped: self.decode_dropped.get(),
            connections: self.connections_opened.get(),
            idle_closed: self.idle_closed.get(),
        }
    }
}

/// Listener tuning knobs.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// TCP front end: event-driven reactor (the default) or
    /// thread-per-connection ([`Frontend::Threads`], the escape hatch).
    pub frontend: Frontend,
    /// Parser/store worker threads. Each worker owns one pipeline shard
    /// (its own SPSC ring and store lane), so this is also the default
    /// shard count when [`ListenerConfig::shards`] is 0.
    pub workers: usize,
    /// Pipeline shards. `0` (the default) follows `workers` — one shard
    /// per worker. Setting it explicitly decouples the two only in tests;
    /// the live topology is always one worker per shard.
    pub shards: usize,
    /// Bounded ingest-queue depth, in frames, summed across every shard's
    /// ring (each ring gets `queue_depth / shards`, rounded up), so the
    /// aggregate in-flight bound is independent of the shard count.
    pub queue_depth: usize,
    /// What to do when the queue is full.
    pub overload: OverloadPolicy,
    /// Close a TCP connection after this long without a byte.
    pub idle_timeout: Duration,
    /// How often blocked socket reads wake to check shutdown/idle state.
    pub poll_interval: Duration,
    /// Dead-letter ring capacity.
    pub dead_letter_capacity: usize,
    /// Event time for frames without a parseable timestamp.
    pub fallback_time: i64,
    /// Largest micro-batch a worker assembles before one fused
    /// parse → tokenize → CSR transform → batch-predict call. `1` keeps
    /// the scalar per-frame path.
    pub max_batch: usize,
    /// Longest a worker waits past a batch's first frame before flushing
    /// a partial batch; bounds per-frame tail latency under light load.
    pub max_delay: Duration,
    /// Shared telemetry context. When set, every listener counter and
    /// histogram is registered on its registry (and the classifier / store
    /// attach theirs), and batch-granularity spans feed its span log.
    /// `None` keeps all instruments detached — zero export, same hot path.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Serve `GET /metrics` (Prometheus text), `GET /health` (JSON), and
    /// `GET /spans` (JSON) on an ephemeral loopback port. Requires
    /// `telemetry`; see [`SyslogListener::metrics_addr`]. With the flight
    /// recorder on, `GET /alerts` and `GET /flight` ride along.
    pub serve_metrics: bool,
    /// Flight recorder: run a background sampler that scrapes the
    /// telemetry registry into per-series ring buffers and evaluates
    /// [`ListenerConfig::alert_rules`] on every sweep. On by default;
    /// requires `telemetry` (a listener without a registry has nothing to
    /// sample).
    pub record_flight: bool,
    /// Flight-recorder scrape cadence.
    pub flight_interval: Duration,
    /// Flight-recorder per-series ring capacity, in samples.
    pub flight_capacity: usize,
    /// Alert rules evaluated by the flight recorder after every sweep.
    /// Firing/resolved state is served at `GET /alerts` and rendered by
    /// `hetsyslog top`.
    pub alert_rules: Vec<obs::Rule>,
    /// Post-classification delivery: every stored batch is also fanned
    /// out to these sinks (see [`crate::sink::FanOut`]). Graceful drain
    /// extends to the sinks — `shutdown` waits for their acks or spills
    /// the remainder durably. `None` ends the pipeline at the store.
    pub fan_out: Option<Arc<crate::sink::FanOut>>,
}

impl Default for ListenerConfig {
    fn default() -> ListenerConfig {
        ListenerConfig {
            frontend: Frontend::default(),
            workers: 2,
            shards: 0,
            queue_depth: 1024,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(10),
            dead_letter_capacity: 64,
            fallback_time: 0,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            telemetry: None,
            serve_metrics: false,
            record_flight: true,
            flight_interval: obs::timeseries::DEFAULT_SAMPLE_INTERVAL,
            flight_capacity: obs::timeseries::DEFAULT_RING_CAPACITY,
            alert_rules: Vec::new(),
            fan_out: None,
        }
    }
}

/// A decoded frame tagged with its source connection and the instant it
/// entered the queue (for queue→prediction latency accounting).
struct WireFrame {
    source: u64,
    frame: String,
    at: Instant,
}

/// The submit side shared by every socket thread: routes each frame to
/// its pipeline shard, applies the overload policy against that shard's
/// ring, and keeps the drop accounting in one place.
#[derive(Clone)]
pub(crate) struct FrameSink {
    router: Arc<ShardRouter<WireFrame>>,
    shard_stats: Arc<Vec<Arc<ShardStats>>>,
    overload: OverloadPolicy,
    stats: Arc<IngestStats>,
    dead_letters: Arc<DeadLetterRing>,
}

impl FrameSink {
    /// The shared ingest counters (the reactor front end accounts reads
    /// through the exact instruments `serve_connection` uses).
    pub(crate) fn ingest_stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The shard owning `source`'s frames: hash-by-connection for TCP (so
    /// a connection's frames stay ordered on one ring), round-robin for
    /// the connectionless UDP socket.
    fn shard_for(&self, source: u64) -> usize {
        if source == UDP_SOURCE {
            self.router.partitioner().next_round_robin()
        } else {
            self.router.partitioner().shard_for_connection(source)
        }
    }

    /// Offer one frame; returns `false` once the pipeline is gone.
    pub(crate) fn submit(&self, source: u64, frame: String) -> bool {
        self.stats.frames.inc();
        let shard = self.shard_for(source);
        let at = Instant::now();
        match self.overload {
            OverloadPolicy::Block => {
                let ok = self
                    .router
                    .send(shard, WireFrame { source, frame, at })
                    .is_ok();
                if ok {
                    self.shard_stats[shard].routed.inc();
                }
                ok
            }
            OverloadPolicy::Shed => {
                match self.router.try_send(shard, WireFrame { source, frame, at }) {
                    Ok(()) => {
                        self.shard_stats[shard].routed.inc();
                        true
                    }
                    Err(TrySendError::Full(wf)) => {
                        self.stats.shed.inc();
                        self.dead_letters.push(DeadLetter {
                            reason: DropReason::QueueFull,
                            source: wf.source,
                            frame: wf.frame,
                        });
                        true
                    }
                    Err(TrySendError::Disconnected(_)) => false,
                }
            }
        }
    }

    /// Offer every frame a read(2) produced in one bulk enqueue — one
    /// ring lock per read instead of one per frame (all of a connection's
    /// frames route to the same shard, so a read is still one enqueue).
    /// Returns `false` once the pipeline is gone. Under `Shed`, frames
    /// past the shard ring's momentary capacity go to the dead-letter
    /// ring, exactly as with per-frame `submit`.
    pub(crate) fn submit_many(&self, source: u64, frames: Vec<String>) -> bool {
        if frames.is_empty() {
            return true;
        }
        let offered = frames.len() as u64;
        self.stats.frames.add(offered);
        let shard = self.shard_for(source);
        let at = Instant::now();
        let wired = frames
            .into_iter()
            .map(|frame| WireFrame { source, frame, at });
        match self.overload {
            OverloadPolicy::Block => {
                let ok = self.router.send_many(shard, wired).is_ok();
                if ok {
                    self.shard_stats[shard].routed.add(offered);
                }
                ok
            }
            OverloadPolicy::Shed => match self.router.try_send_many(shard, wired) {
                Ok(rejected) => {
                    self.shard_stats[shard]
                        .routed
                        .add(offered - rejected.len() as u64);
                    self.stats.shed.add(rejected.len() as u64);
                    for wf in rejected {
                        self.dead_letters.push(DeadLetter {
                            reason: DropReason::QueueFull,
                            source: wf.source,
                            frame: wf.frame,
                        });
                    }
                    true
                }
                Err(_) => false,
            },
        }
    }
}

/// The running listener. Bind with [`SyslogListener::start`], feed it over
/// loopback TCP/UDP, then [`SyslogListener::shutdown`] for a graceful
/// drain.
pub struct SyslogListener {
    tcp_addr: SocketAddr,
    udp_addr: SocketAddr,
    stats: Arc<IngestStats>,
    dead_letters: Arc<DeadLetterRing>,
    batch_stats: Arc<BatchStats>,
    shard_stats: Arc<Vec<Arc<ShardStats>>>,
    service: Option<Arc<MonitorService>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reactor: Option<crate::reactor::ReactorFrontend>,
    reactor_stats: Arc<Vec<Arc<crate::reactor::ReactorStats>>>,
    udp_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    worker_threads: Vec<JoinHandle<()>>,
    router: Option<Arc<ShardRouter<WireFrame>>>,
    metrics_server: Option<obs::MetricsServer>,
    sampler: Option<obs::Sampler>,
    alert_engine: Option<Arc<obs::AlertEngine>>,
    fan_out: Option<Arc<crate::sink::FanOut>>,
}

impl SyslogListener {
    /// Bind TCP + UDP listeners on ephemeral loopback ports and start the
    /// accept loop and parser workers. Pass a [`MonitorService`] to
    /// classify records in flight (`None` stores them unclassified).
    pub fn start(
        store: Arc<LogStore>,
        service: Option<Arc<MonitorService>>,
        config: ListenerConfig,
    ) -> std::io::Result<SyslogListener> {
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        // The standard library listens with a backlog of 128; a
        // high-fanout connect storm (hundreds of forwarders reconnecting
        // at once) overflows that, and with `tcp_syncookies` the
        // overflow is silent: clients believe they connected while the
        // kernel dropped their handshake ACKs, so their first frames
        // crawl in on retransmit backoff. Resize the accept queue to
        // match the connection counts the front end is built for (the
        // kernel clamps to `net.core.somaxconn`). Best-effort: a kernel
        // that refuses leaves the default backlog in place.
        let _ = netpoll::set_listen_backlog(&tcp, 1024);
        tcp.set_nonblocking(true)?;
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        udp.set_read_timeout(Some(config.poll_interval))?;
        let tcp_addr = tcp.local_addr()?;
        let udp_addr = udp.local_addr()?;

        // With telemetry attached, every layer registers on the shared
        // registry so one `/metrics` scrape sees the whole pipeline;
        // without it, the exact same counters run detached.
        let telemetry = config.telemetry.clone();
        let (stats, dead_letters, batch_stats) = match &telemetry {
            Some(t) => {
                store.attach_telemetry(&t.registry);
                if let Some(service) = &service {
                    service.attach_telemetry(&t.registry);
                }
                (
                    Arc::new(IngestStats::registered(&t.registry)),
                    Arc::new(DeadLetterRing::registered(
                        config.dead_letter_capacity,
                        &t.registry,
                    )),
                    Arc::new(BatchStats::registered(&t.registry)),
                )
            }
            None => (
                Arc::new(IngestStats::default()),
                Arc::new(DeadLetterRing::new(config.dead_letter_capacity)),
                Arc::new(BatchStats::new()),
            ),
        };
        let spans = telemetry.as_ref().map(|t| t.spans.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // The shard fabric: one SPSC ring + one micro-batch worker per
        // shard (one shard per worker unless overridden), with the
        // configured queue depth split across the rings. The store gets
        // one write lane per shard when it has them; a single-lane store
        // still works, shards just share lane 0.
        let shards = if config.shards > 0 {
            config.shards
        } else {
            config.workers.max(1)
        };
        let (router, receivers) = ShardRouter::<WireFrame>::build(shards, config.queue_depth);
        let router = Arc::new(router);
        let shard_stats: Arc<Vec<Arc<ShardStats>>> = Arc::new(match &telemetry {
            Some(t) => (0..shards)
                .map(|k| Arc::new(ShardStats::registered(k, &t.registry)))
                .collect(),
            None => (0..shards)
                .map(|_| Arc::new(ShardStats::detached()))
                .collect(),
        });

        // Per-shard workers: each drains its own ring until the producers
        // are gone. With `max_batch > 1` and a classifier attached, the
        // worker runs the drain-up-to-B-or-deadline-T loop: the first
        // frame blocks on the ring, the batch then fills until `max_batch`
        // frames or `max_delay` elapses, and the whole batch goes through
        // one fused `MonitorService::ingest_frames` call and one
        // lane-affine store insert. An idle worker whose poll times out
        // steals a whole contiguous batch from the deepest sibling ring
        // whose backlog reached a full batch, so one hot connection can't
        // cap throughput at 1/N. The ring hanging up mid-fill flushes the
        // partial batch, so a graceful drain loses nothing.
        let max_batch = config.max_batch.max(1);
        let max_delay = config.max_delay;
        // A sibling is "skewed" once its backlog would fill a whole batch
        // (or its ring, if the ring is smaller): stealing below that costs
        // a lock to move frames the owner was about to drain anyway.
        let steal_threshold = max_batch.min(router.shard_capacity()).max(1);
        let idle_poll = max_delay.max(Duration::from_millis(1));
        let mut worker_threads = Vec::new();
        for receiver in receivers {
            let store = store.clone();
            let service = service.clone();
            let stats = stats.clone();
            let dead_letters = dead_letters.clone();
            let batch_stats = batch_stats.clone();
            let my_stats = shard_stats[receiver.shard].clone();
            let spans = spans.clone();
            let fallback_time = config.fallback_time;
            let fan_out = config.fan_out.clone();
            worker_threads.push(std::thread::spawn(move || {
                let shard = receiver.shard;
                let batched_service = if max_batch > 1 { service.clone() } else { None };
                let mut batch: Vec<WireFrame> = Vec::with_capacity(max_batch);
                loop {
                    batch.clear();
                    // Assemble one batch: drained from the own ring (with
                    // the drain's flush reason) or stolen whole from a
                    // skewed sibling.
                    let (reason, fill_latency, stolen_from) =
                        match receiver.own.recv_deadline(Instant::now() + idle_poll) {
                            Ok(first) => {
                                let fill_started = Instant::now();
                                batch.push(first);
                                let status = receiver.own.drain_into(
                                    &mut batch,
                                    max_batch,
                                    fill_started + max_delay,
                                );
                                (
                                    FlushReason::from_drain(status),
                                    fill_started.elapsed(),
                                    None,
                                )
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                match receiver.steal_batch(&mut batch, max_batch, steal_threshold) {
                                    Some((victim, stolen)) => {
                                        my_stats.steals.inc();
                                        my_stats.stolen_frames.add(stolen as u64);
                                        // A steal is triggered by backlog,
                                        // so a full claim reads as Full; a
                                        // race with the owner's drain can
                                        // leave less, which reads as a
                                        // deadline flush (the frames were
                                        // flushed because they waited).
                                        let reason = if stolen >= max_batch {
                                            FlushReason::Full
                                        } else {
                                            FlushReason::Deadline
                                        };
                                        (reason, Duration::ZERO, Some(victim))
                                    }
                                    None => continue,
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        };

                    // Sample queue depths at batch pickup: this shard's
                    // ring, and the aggregate across the whole fabric.
                    let own_depth = receiver.own.len();
                    my_stats.queue_depth.set(own_depth as i64);
                    let total_depth: usize = own_depth
                        + receiver
                            .siblings
                            .iter()
                            .map(|(_, s)| s.len())
                            .sum::<usize>();
                    stats.queue_depth.set(total_depth as i64);

                    let size = batch.len();
                    my_stats.processed.add(size as u64);
                    my_stats.batch_frames.record(size as u64);

                    let Some(batched_service) = &batched_service else {
                        // Scalar path: `max_batch = 1` (the honest bench
                        // baseline) or no classifier attached. Per-frame
                        // parse + classify, recorded as size-1 batches so
                        // the histogram invariants hold for every
                        // configuration.
                        for wf in batch.drain(..) {
                            let mut classified = 0u64;
                            match syslog_model::parse(&wf.frame) {
                                Ok(msg) => {
                                    let mut record = LogRecord::from_message(
                                        store.allocate_id(),
                                        &msg,
                                        fallback_time,
                                    );
                                    if let Some(service) = &service {
                                        if let Some(prediction) = service.ingest(&record.message) {
                                            record.category = Some(prediction.category);
                                            classified = 1;
                                        }
                                    }
                                    if let Some(fan_out) = &fan_out {
                                        fan_out.submit(std::slice::from_ref(&record));
                                    }
                                    store.insert(record);
                                    stats.ingested.inc();
                                }
                                Err(_) => {
                                    stats.parse_errors.inc();
                                    dead_letters.push(DeadLetter {
                                        reason: DropReason::ParseError,
                                        source: wf.source,
                                        frame: wf.frame,
                                    });
                                }
                            }
                            batch_stats.record_flush(
                                1,
                                classified,
                                Duration::ZERO,
                                FlushReason::Full,
                            );
                            batch_stats.record_queue_latency(wf.at.elapsed());
                        }
                        continue;
                    };

                    // One root span per batch (never per frame): tagged
                    // with the batch size (and steal provenance), with
                    // classify / store_insert children. Only slow ones are
                    // retained by the ring.
                    let mut root = spans.as_ref().map(|s| s.span("batch"));
                    let texts: Vec<&str> = batch.iter().map(|wf| wf.frame.as_str()).collect();
                    let classify_started = Instant::now();
                    let outcomes = {
                        let _classify = root.as_ref().map(|r| r.child("classify"));
                        batched_service.ingest_frames(&texts)
                    };
                    my_stats
                        .classify_us
                        .record_duration_us(classify_started.elapsed());
                    if let Some(root) = root.as_mut() {
                        root.set_tag(match stolen_from {
                            Some(victim) => format!("size={size} stolen_from={victim}"),
                            None => format!("size={size}"),
                        });
                    }
                    let mut classified = 0u64;
                    let mut records: Vec<LogRecord> = Vec::with_capacity(size);
                    for (wf, outcome) in batch.drain(..).zip(outcomes) {
                        match outcome {
                            FrameOutcome::Classified {
                                message,
                                prediction,
                            } => {
                                classified += 1;
                                let mut record = LogRecord::from_message_owned(
                                    store.allocate_id(),
                                    message,
                                    fallback_time,
                                );
                                record.category = Some(prediction.category);
                                records.push(record);
                            }
                            FrameOutcome::Prefiltered { message } => {
                                records.push(LogRecord::from_message_owned(
                                    store.allocate_id(),
                                    message,
                                    fallback_time,
                                ));
                            }
                            FrameOutcome::ParseError => {
                                stats.parse_errors.inc();
                                dead_letters.push(DeadLetter {
                                    reason: DropReason::ParseError,
                                    source: wf.source,
                                    frame: wf.frame,
                                });
                            }
                        }
                        batch_stats.record_queue_latency(wf.at.elapsed());
                    }
                    // One lane-lock acquisition and one counter update for
                    // the whole batch: shard k writes lane k, which no
                    // other pipeline shard ever locks (store affinity).
                    let stored = records.len() as u64;
                    // Fan the classified batch out to the sink lanes
                    // before the store consumes it (each lane clones its
                    // own copy; overload is handled per lane).
                    if let Some(fan_out) = &fan_out {
                        fan_out.submit(&records);
                    }
                    {
                        let _insert = root.as_ref().map(|r| r.child("store_insert"));
                        let insert_started = Instant::now();
                        store.insert_batch_affine(shard, records);
                        my_stats
                            .insert_us
                            .record_duration_us(insert_started.elapsed());
                    }
                    stats.ingested.add(stored);
                    batch_stats.record_flush(size, classified, fill_latency, reason);
                }
            }));
        }

        let sink = FrameSink {
            router: router.clone(),
            shard_stats: shard_stats.clone(),
            overload: config.overload,
            stats: stats.clone(),
            dead_letters: dead_letters.clone(),
        };

        // UDP: one datagram = one frame, no framing state to keep.
        let udp_thread = {
            let sink = sink.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                let mut buf = vec![0u8; 64 * 1024];
                while !shutdown.load(Ordering::Relaxed) {
                    match udp.recv_from(&mut buf) {
                        Ok((n, _peer)) => {
                            sink.stats.bytes.add(n as u64);
                            sink.stats.udp_datagrams.inc();
                            sink.stats.udp_bytes.add(n as u64);
                            // recv_from silently truncates oversized
                            // datagrams to the buffer; a read that fills
                            // the buffer exactly is indistinguishable
                            // from one, so it's counted as such.
                            if n == buf.len() {
                                sink.stats.udp_truncated.inc();
                            }
                            sink.stats.add_source(UDP_SOURCE, 1, n as u64);
                            let frame = String::from_utf8_lossy(&buf[..n])
                                .trim_end_matches(['\r', '\n'])
                                .to_string();
                            if !sink.submit(UDP_SOURCE, frame) {
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        // The TCP front end: event-driven reactor pool by default, with
        // the thread-per-connection loop kept as the escape hatch. Both
        // feed the exact same FrameSink, so everything downstream of the
        // socket — shard routing, overload policy, dead letters, the
        // drain — is front-end agnostic.
        let reactor_stats: Arc<Vec<Arc<crate::reactor::ReactorStats>>> =
            Arc::new(match &telemetry {
                Some(t) => (0..config.frontend.reactor_threads())
                    .map(|k| Arc::new(crate::reactor::ReactorStats::registered(k, &t.registry)))
                    .collect(),
                None => (0..config.frontend.reactor_threads())
                    .map(|_| Arc::new(crate::reactor::ReactorStats::detached()))
                    .collect(),
            });
        let (accept_thread, reactor) = match config.frontend {
            Frontend::Reactor { .. } => {
                let frontend = crate::reactor::ReactorFrontend::start(
                    tcp,
                    sink,
                    shutdown.clone(),
                    config.idle_timeout,
                    reactor_stats.iter().cloned().collect(),
                )?;
                (None, Some(frontend))
            }
            Frontend::Threads => {
                // TCP accept loop: nonblocking + poll so shutdown never
                // hangs in accept(2).
                let sink_template = sink;
                let shutdown = shutdown.clone();
                let conn_threads = conn_threads.clone();
                let next_conn_id = AtomicU64::new(1);
                let idle_timeout = config.idle_timeout;
                let poll_interval = config.poll_interval;
                let handle = std::thread::spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match tcp.accept() {
                            Ok((stream, _peer)) => {
                                let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
                                sink_template.stats.connections_opened.inc();
                                let sink = sink_template.clone();
                                let shutdown = shutdown.clone();
                                let handle = std::thread::spawn(move || {
                                    serve_connection(
                                        stream,
                                        conn_id,
                                        sink,
                                        shutdown,
                                        idle_timeout,
                                        poll_interval,
                                    );
                                });
                                // Reap finished connection threads before
                                // tracking the new one, so the vec stays
                                // bounded by the number of live
                                // connections under churn instead of
                                // growing for the listener's lifetime.
                                let mut conns = conn_threads.lock();
                                let mut i = 0;
                                while i < conns.len() {
                                    if conns[i].is_finished() {
                                        let finished = conns.swap_remove(i);
                                        let _ = finished.join();
                                    } else {
                                        i += 1;
                                    }
                                }
                                conns.push(handle);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(poll_interval);
                            }
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            // Transient accept failures (ECONNABORTED when
                            // a queued peer resets before accept(2) under a
                            // connect storm, fd-limit pressure) must not
                            // kill the accept loop and strand every later
                            // connection; back off briefly and keep going.
                            Err(_) => std::thread::sleep(poll_interval),
                        }
                    }
                });
                (Some(handle), None)
            }
        };

        // The flight recorder: a background sampler scraping the shared
        // registry into per-series rings, with the alert engine evaluated
        // against the fresh window after every sweep. Purely a reader of
        // the registry — it adds no instruments and no work to the hot
        // path beyond one periodic gather().
        let (sampler, alert_engine) = match (&telemetry, config.record_flight) {
            (Some(t), true) => {
                let engine = Arc::new(obs::AlertEngine::new(config.alert_rules.clone()));
                let sampler = obs::Sampler::start(
                    t.registry.clone(),
                    obs::SamplerConfig {
                        interval: config.flight_interval,
                        capacity: config.flight_capacity,
                    },
                    Some(engine.clone()),
                );
                (Some(sampler), Some(engine))
            }
            _ => (None, None),
        };

        // The scrape endpoint rides on the same runtime: `/metrics` is the
        // registry's Prometheus rendering; `/health` serializes the same
        // HealthSnapshot the API returns; `/spans` dumps recent slow
        // spans; `/alerts` and `/flight` expose the flight recorder.
        let metrics_server = match (&telemetry, config.serve_metrics) {
            (Some(t), true) => {
                let health_stats = stats.clone();
                let health_batches = batch_stats.clone();
                let health_service = service.clone();
                let health = obs::Route::new("/health", "application/json", move || {
                    let ingest = health_stats.snapshot();
                    let batching = health_batches.snapshot();
                    let snapshot = match &health_service {
                        Some(s) => s.health_with_batching(ingest, batching),
                        None => HealthSnapshot {
                            ingest,
                            batching,
                            ..HealthSnapshot::default()
                        },
                    };
                    serde_json::to_string(&snapshot).unwrap_or_default()
                });
                let span_log = t.spans.clone();
                let spans_route =
                    obs::Route::new("/spans", "application/json", move || span_log.render_json());
                let mut routes = vec![health, spans_route];
                if let Some(engine) = &alert_engine {
                    let engine = engine.clone();
                    routes.push(obs::Route::new("/alerts", "application/json", move || {
                        engine.render_json()
                    }));
                }
                if let Some(sampler) = &sampler {
                    let flight = sampler.store();
                    routes.push(obs::Route::new("/flight", "application/json", move || {
                        flight.export_json()
                    }));
                }
                Some(obs::MetricsServer::start(t.registry.clone(), routes)?)
            }
            _ => None,
        };

        Ok(SyslogListener {
            tcp_addr,
            udp_addr,
            stats,
            dead_letters,
            batch_stats,
            shard_stats,
            service,
            shutdown,
            accept_thread,
            reactor,
            reactor_stats,
            udp_thread: Some(udp_thread),
            conn_threads,
            worker_threads,
            router: Some(router),
            metrics_server,
            sampler,
            alert_engine,
            fan_out: config.fan_out,
        })
    }

    /// Address of the TCP listener.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Address of the UDP socket.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// Address of the metrics/health HTTP endpoint, when
    /// [`ListenerConfig::serve_metrics`] was set alongside `telemetry`.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.addr())
    }

    /// Live ingest counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The flight recorder's ring store, when the sampler is running.
    /// The handle stays valid across [`SyslogListener::shutdown`] for
    /// post-drain timeline export.
    pub fn flight_store(&self) -> Option<Arc<obs::TimeSeriesStore>> {
        self.sampler.as_ref().map(|s| s.store())
    }

    /// The alert engine evaluated by the flight recorder, when running.
    pub fn alert_engine(&self) -> Option<Arc<obs::AlertEngine>> {
        self.alert_engine.clone()
    }

    /// The dead-letter ring.
    pub fn dead_letters(&self) -> &DeadLetterRing {
        &self.dead_letters
    }

    /// Micro-batching counters: batch sizes, fill latencies,
    /// queue→prediction latencies, flush reasons.
    pub fn batch_stats(&self) -> BatchSnapshot {
        self.batch_stats.snapshot()
    }

    /// A handle to the live micro-batching counters that stays valid
    /// across [`SyslogListener::shutdown`], so callers can read the final
    /// histograms after the graceful drain completes.
    pub fn batch_stats_handle(&self) -> Arc<BatchStats> {
        self.batch_stats.clone()
    }

    /// Per-shard instruments, indexed by shard. The handle stays valid
    /// across [`SyslogListener::shutdown`] for post-drain accounting.
    pub fn shard_stats_handle(&self) -> Arc<Vec<Arc<ShardStats>>> {
        self.shard_stats.clone()
    }

    /// Number of pipeline shards this listener runs.
    pub fn n_shards(&self) -> usize {
        self.shard_stats.len()
    }

    /// Reactor threads serving TCP (0 when the thread-per-connection
    /// front end is active).
    pub fn n_reactors(&self) -> usize {
        self.reactor_stats.len()
    }

    /// Per-reactor instruments, indexed by reactor. Empty for the
    /// thread-per-connection front end; stays valid across
    /// [`SyslogListener::shutdown`] for post-drain accounting.
    pub fn reactor_stats_handle(&self) -> Arc<Vec<Arc<crate::reactor::ReactorStats>>> {
        self.reactor_stats.clone()
    }

    /// Connection-thread handles currently tracked by the
    /// thread-per-connection front end (always 0 under the reactor).
    /// Finished handles are reaped opportunistically at every accept, so
    /// under churn this stays bounded by the live connection count.
    pub fn conn_thread_count(&self) -> usize {
        self.conn_threads.lock().len()
    }

    /// Per-sink delivery ledgers, when a fan-out is attached. The handle
    /// inside [`ListenerConfig::fan_out`] stays valid across
    /// [`SyslogListener::shutdown`] for post-drain accounting.
    pub fn sink_snapshots(&self) -> Option<Vec<crate::sink::SinkSnapshot>> {
        self.fan_out.as_ref().map(|f| f.snapshots())
    }

    /// Combined transport + classification health, when a
    /// [`MonitorService`] is attached.
    pub fn health(&self) -> Option<HealthSnapshot> {
        self.service
            .as_ref()
            .map(|service| service.health_with_batching(self.stats.snapshot(), self.batch_stats()))
    }

    /// Graceful drain: stop accepting, join every connection thread (each
    /// flushes its decoder tail on the way out), close the queue, join the
    /// parser workers after they empty it, and return the final counters.
    pub fn shutdown(mut self) -> IngestSnapshot {
        self.stop();
        self.stats.snapshot()
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Reactor front end: the eventfd wake interrupts epoll_wait
        // immediately (no poll-interval latency); each reactor flushes
        // its connections' decoder tails before joining.
        if let Some(mut reactor) = self.reactor.take() {
            reactor.stop();
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // After the accept loop exits, no new connection threads appear.
        let conns: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for handle in conns {
            let _ = handle.join();
        }
        if let Some(handle) = self.udp_thread.take() {
            let _ = handle.join();
        }
        // Every socket thread is gone; dropping the router drops every
        // shard's producer, letting each worker drain its ring (and its
        // siblings' leftovers stay with their own workers) before
        // observing the hangup.
        drop(self.router.take());
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        // Workers are gone, so every stored batch has been fanned out.
        // The drain now extends downstream: wait for sink acks or spill
        // the remainder durably, so shutdown never strands an in-flight
        // sink batch (idempotent — a caller-owned FanOut may already be
        // shut down).
        if let Some(fan_out) = &self.fan_out {
            fan_out.shutdown(Duration::from_secs(5));
        }
        // Sampler last among the data paths so the final drained counter
        // values land in the flight ring before the timeline freezes.
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        if let Some(server) = &mut self.metrics_server {
            server.stop();
        }
    }
}

impl Drop for SyslogListener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One TCP connection: read with a short poll timeout, decode through a
/// per-connection [`FrameDecoder`](syslog_model::FrameDecoder), enforce the
/// idle deadline, and flush the decoder tail when the peer goes away (or
/// the listener shuts down).
fn serve_connection(
    mut stream: std::net::TcpStream,
    conn_id: u64,
    sink: FrameSink,
    shutdown: Arc<AtomicBool>,
    idle_timeout: Duration,
    poll_interval: Duration,
) {
    let _ = stream.set_read_timeout(Some(poll_interval));
    let mut decoder = syslog_model::FrameDecoder::new();
    let mut decoder_dropped = 0u64;
    let mut last_activity = Instant::now();
    // A large read buffer turns a backlogged stream into few big reads,
    // and each read's frames go to the queue in one bulk submit.
    let mut buf = vec![0u8; 64 * 1024];
    let mut idled_out = false;

    'read: while !shutdown.load(Ordering::Relaxed) {
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: peer closed cleanly.
            Ok(n) => {
                last_activity = Instant::now();
                sink.stats.bytes.add(n as u64);
                let decode_started = Instant::now();
                let frames = decoder.push(&buf[..n]);
                sink.stats
                    .decode_us
                    .record_duration_us(decode_started.elapsed());
                let dropped_now = decoder.dropped() - decoder_dropped;
                if dropped_now > 0 {
                    decoder_dropped = decoder.dropped();
                    sink.stats.decode_dropped.add(dropped_now);
                }
                sink.stats
                    .add_source(conn_id, frames.len() as u64, n as u64);
                if !sink.submit_many(conn_id, frames) {
                    break 'read;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() >= idle_timeout {
                    idled_out = true;
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }

    // Flush the decoder tail: an unterminated trailing frame still counts
    // (its octet-count prefix, if any, is stripped by `finish`).
    if let Some(tail) = decoder.finish() {
        sink.stats.add_source(conn_id, 1, 0);
        sink.submit(conn_id, tail);
    }
    let dropped_now = decoder.dropped() - decoder_dropped;
    if dropped_now > 0 {
        sink.stats.decode_dropped.add(dropped_now);
    }
    if idled_out {
        sink.stats.idle_closed.inc();
    }
    sink.stats.connections_closed.inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_letter_ring_evicts_oldest() {
        let ring = DeadLetterRing::new(2);
        for i in 0..5 {
            ring.push(DeadLetter {
                reason: DropReason::QueueFull,
                source: 1,
                frame: format!("frame {i}"),
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_recorded(), 5);
        let kept = ring.snapshot();
        assert_eq!(kept[0].frame, "frame 3");
        assert_eq!(kept[1].frame, "frame 4");
    }

    #[test]
    fn stats_snapshot_maps_to_core_format() {
        let stats = IngestStats::default();
        stats.frames.add(10);
        stats.shed.add(3);
        stats.parse_errors.inc();
        stats.add_source(1, 6, 600);
        stats.add_source(1, 4, 400);
        let snap = stats.snapshot();
        assert_eq!(snap.frames, 10);
        assert_eq!(snap.total_dropped(), 4);
        assert_eq!(
            stats.per_source(),
            vec![(
                1,
                SourceCounters {
                    frames: 10,
                    bytes: 1000
                }
            )]
        );
    }

    #[test]
    fn drop_reasons_have_stable_labels() {
        assert_eq!(DropReason::QueueFull.as_str(), "queue_full");
        assert_eq!(DropReason::ParseError.as_str(), "parse_error");
    }
}
