//! Template-mined columnar segments — the LogShrink-style cold tier
//! behind [`LogStore`](crate::LogStore) (ROADMAP item 2, DESIGN.md §6).
//!
//! A sealed batch of [`LogRecord`]s is collapsed into one [`Segment`]:
//!
//! * a **template dictionary** mined per segment
//!   ([`textproc::template`]: bucket by word count, similarity-cluster
//!   ≥ 0.5, non-constant positions → `<*>`),
//! * a **template-id column** (one varint per row),
//! * **delta-encoded timestamps** and record ids (zigzag varints over
//!   consecutive differences),
//! * **dictionary-encoded** node / app columns and raw byte columns for
//!   severity / facility / category,
//! * **per-slot variable columns**: the variable words of every row,
//!   grouped by `(template, slot)` so a histogram over one slot touches
//!   exactly one block,
//! * cheap **block compression** ([`compress_block`], an LZ77 variant
//!   with hash-chain matching — no external codec dependency), applied
//!   per column so template-native queries decompress only what they
//!   read.
//!
//! The round trip is lossless: [`Segment::decode_all`] returns the
//! original records byte-identically, in insert order. Template-native
//! queries ([`Segment::count_rows_by_template`],
//! [`Segment::variable_values`], [`Segment::template_scan`]) skip
//! decompression where possible: per-template row counts live in the
//! uncompressed header, so counting over a fully-covered segment reads
//! zero blocks.

use crate::record::LogRecord;
use hetsyslog_core::Category;
use syslog_model::{Facility, Severity};
use textproc::template::{Template, TemplateMiner, TemplateToken};

// ---------------------------------------------------------------- varints

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed delta into varint-friendly space.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------- block compression

const LZ_MIN_MATCH: usize = 4;
const LZ_MAX_MATCH: usize = 1 << 12;
const LZ_WINDOW: usize = 1 << 16;
const LZ_HASH_BITS: u32 = 15;
const LZ_CHAIN_DEPTH: usize = 16;
const OP_LITERAL: u8 = 0;
const OP_MATCH: u8 = 1;

fn lz_hash(window: &[u8]) -> usize {
    let key = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (key.wrapping_mul(0x9e37_79b1) >> (32 - LZ_HASH_BITS)) as usize
}

/// Compress one column block: a greedy LZ77 with hash-chain match search
/// (64 KiB window, ≥ 4-byte matches). The format is a varint of the
/// uncompressed length followed by ops — `0x00 len bytes…` literal runs
/// and `0x01 len dist` back-references. Deterministic, allocation-light,
/// and fast enough for seal-time; repetitive variable columns (the
/// common case) shrink dramatically, already-dense ones cost two bytes
/// of framing per run.
pub fn compress_block(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_varint(&mut out, input.len() as u64);
    let mut head = vec![-1i64; 1 << LZ_HASH_BITS];
    let mut prev = vec![-1i64; input.len()];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            out.push(OP_LITERAL);
            put_varint(out, (to - from) as u64);
            out.extend_from_slice(&input[from..to]);
        }
    };
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + LZ_MIN_MATCH <= input.len() {
            let slot = lz_hash(&input[i..]);
            let mut candidate = head[slot];
            let mut depth = 0;
            while candidate >= 0 && depth < LZ_CHAIN_DEPTH {
                let c = candidate as usize;
                let dist = i - c;
                if dist > LZ_WINDOW {
                    break;
                }
                let limit = (input.len() - i).min(LZ_MAX_MATCH);
                let mut l = 0usize;
                while l < limit && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                }
                candidate = prev[c];
                depth += 1;
            }
            prev[i] = head[slot];
            head[slot] = i as i64;
        }
        if best_len >= LZ_MIN_MATCH {
            flush_literals(&mut out, literal_start, i);
            out.push(OP_MATCH);
            put_varint(&mut out, best_len as u64);
            put_varint(&mut out, best_dist as u64);
            // Index the interior of the match so later data can still
            // reference it (skipping the full chain insert for speed —
            // only every position's head slot is updated).
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + LZ_MIN_MATCH <= input.len() {
                let slot = lz_hash(&input[j..]);
                prev[j] = head[slot];
                head[slot] = j as i64;
                j += 1;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompress a [`compress_block`] block. Returns `None` on any
/// malformed input (bad op, out-of-window distance, length mismatch).
pub fn decompress_block(block: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let n = get_varint(block, &mut pos)? as usize;
    let mut out: Vec<u8> = Vec::with_capacity(n);
    while pos < block.len() {
        let op = block[pos];
        pos += 1;
        match op {
            OP_LITERAL => {
                let len = get_varint(block, &mut pos)? as usize;
                let bytes = block.get(pos..pos + len)?;
                out.extend_from_slice(bytes);
                pos += len;
            }
            OP_MATCH => {
                let len = get_varint(block, &mut pos)? as usize;
                let dist = get_varint(block, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                // Byte-by-byte: matches may overlap their own output.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return None,
        }
    }
    (out.len() == n).then_some(out)
}

// ----------------------------------------------------------- the segment

/// String helpers: length-prefixed concatenation for string columns.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = get_varint(buf, pos)? as usize;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Encoded-but-queryable header data kept uncompressed: everything a
/// count-by-template needs without touching a block.
#[derive(Debug, Clone)]
struct TemplateEntry {
    template: Template,
    pattern: String,
    n_vars: usize,
    rows: u64,
}

/// One sealed, immutable columnar segment.
#[derive(Debug)]
pub struct Segment {
    n_rows: usize,
    min_unix: i64,
    max_unix: i64,
    templates: Vec<TemplateEntry>,
    /// Row-ordered compressed columns.
    template_ids: Vec<u8>,
    timestamps: Vec<u8>,
    record_ids: Vec<u8>,
    nodes: Vec<u8>,
    apps: Vec<u8>,
    flags: Vec<u8>,
    /// Per-`(template, slot)` variable columns; index via
    /// `var_block_offsets[template] + slot`.
    var_blocks: Vec<Vec<u8>>,
    var_block_offsets: Vec<usize>,
    /// Shared string dictionary for node/app values.
    strings: Vec<String>,
    /// What the rows cost as JSONL (the hot tier's at-rest format).
    raw_bytes: u64,
}

/// Summary statistics for telemetry and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Rows encoded.
    pub rows: u64,
    /// Distinct templates in the dictionary.
    pub templates: u64,
    /// Encoded size (headers + compressed blocks).
    pub encoded_bytes: u64,
    /// JSONL size of the same rows.
    pub raw_bytes: u64,
}

impl Segment {
    /// Mine templates over `records` and encode them columnar. `threshold`
    /// is the clustering similarity (use
    /// [`TemplateMiner::DEFAULT_THRESHOLD`]).
    pub fn build(records: &[LogRecord], threshold: f64) -> Segment {
        let mut miner = TemplateMiner::with_threshold(threshold);
        let row_templates: Vec<u32> = records.iter().map(|r| miner.observe(&r.message)).collect();
        let templates = miner.finalize();

        let mut entries: Vec<TemplateEntry> = templates
            .into_iter()
            .map(|t| TemplateEntry {
                pattern: t.pattern(),
                n_vars: t.n_vars(),
                rows: 0,
                template: t,
            })
            .collect();
        for &id in &row_templates {
            entries[id as usize].rows += 1;
        }

        // String dictionary over node/app (highly repetitive).
        let mut strings: Vec<String> = Vec::new();
        let mut string_ids: std::collections::HashMap<String, u64> =
            std::collections::HashMap::new();
        let mut intern = |s: &str, strings: &mut Vec<String>| -> u64 {
            if let Some(&id) = string_ids.get(s) {
                return id;
            }
            let id = strings.len() as u64;
            strings.push(s.to_string());
            string_ids.insert(s.to_string(), id);
            id
        };

        let mut template_ids = Vec::new();
        let mut timestamps = Vec::new();
        let mut record_ids = Vec::new();
        let mut nodes = Vec::new();
        let mut apps = Vec::new();
        let mut flags = Vec::new();
        let mut var_cols: Vec<Vec<u8>> = {
            let total: usize = entries.iter().map(|e| e.n_vars).sum();
            vec![Vec::new(); total]
        };
        let mut var_block_offsets = Vec::with_capacity(entries.len());
        let mut off = 0usize;
        for e in &entries {
            var_block_offsets.push(off);
            off += e.n_vars;
        }

        let mut prev_ts = 0i64;
        let mut prev_id = 0i64;
        let mut min_unix = i64::MAX;
        let mut max_unix = i64::MIN;
        let mut raw_bytes = 0u64;
        for (record, &tid) in records.iter().zip(&row_templates) {
            raw_bytes += record.to_json().len() as u64 + 1;
            put_varint(&mut template_ids, u64::from(tid));
            put_varint(
                &mut timestamps,
                zigzag(record.unix_seconds.wrapping_sub(prev_ts)),
            );
            prev_ts = record.unix_seconds;
            put_varint(
                &mut record_ids,
                zigzag((record.id as i64).wrapping_sub(prev_id)),
            );
            prev_id = record.id as i64;
            put_varint(&mut nodes, intern(&record.node, &mut strings));
            put_varint(&mut apps, intern(&record.app, &mut strings));
            flags.push(record.severity.code());
            flags.push(record.facility.code());
            flags.push(record.category.map_or(0xff, |c| c.index() as u8));
            min_unix = min_unix.min(record.unix_seconds);
            max_unix = max_unix.max(record.unix_seconds);
            let entry = &entries[tid as usize];
            let vars = entry
                .template
                .extract_vars(&record.message)
                .expect("record fits its mined template");
            let base = var_block_offsets[tid as usize];
            for (slot, var) in vars.iter().enumerate() {
                put_str(&mut var_cols[base + slot], var);
            }
        }
        if records.is_empty() {
            min_unix = 0;
            max_unix = 0;
        }

        Segment {
            n_rows: records.len(),
            min_unix,
            max_unix,
            templates: entries,
            template_ids: compress_block(&template_ids),
            timestamps: compress_block(&timestamps),
            record_ids: compress_block(&record_ids),
            nodes: compress_block(&nodes),
            apps: compress_block(&apps),
            flags: compress_block(&flags),
            var_blocks: var_cols.into_iter().map(|c| compress_block(&c)).collect(),
            var_block_offsets,
            strings,
            raw_bytes,
        }
    }

    /// Rows in the segment.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Earliest row timestamp (0 for an empty segment).
    pub fn min_unix_seconds(&self) -> i64 {
        self.min_unix
    }

    /// Latest row timestamp (0 for an empty segment).
    pub fn max_unix_seconds(&self) -> i64 {
        self.max_unix
    }

    /// Rendered template patterns, dictionary order.
    pub fn template_patterns(&self) -> Vec<&str> {
        self.templates.iter().map(|e| e.pattern.as_str()).collect()
    }

    /// Per-template row counts, dictionary order (header data — free).
    pub fn rows_per_template(&self) -> Vec<u64> {
        self.templates.iter().map(|e| e.rows).collect()
    }

    /// Size of the encoded segment: compressed blocks plus the header's
    /// template dictionary and string dictionary.
    pub fn encoded_bytes(&self) -> u64 {
        let blocks = self.template_ids.len()
            + self.timestamps.len()
            + self.record_ids.len()
            + self.nodes.len()
            + self.apps.len()
            + self.flags.len()
            + self.var_blocks.iter().map(Vec::len).sum::<usize>();
        let dict: usize = self
            .templates
            .iter()
            .map(|e| {
                e.template
                    .tokens()
                    .iter()
                    .map(|t| match t {
                        TemplateToken::Const(w) => w.len() + 2,
                        TemplateToken::Var => 1,
                    })
                    .sum::<usize>()
                    + 16
            })
            .sum();
        let strings: usize = self.strings.iter().map(|s| s.len() + 2).sum();
        (blocks + dict + strings + 64) as u64
    }

    /// JSONL bytes the rows would occupy in the hot tier.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Summary stats for telemetry.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            rows: self.n_rows as u64,
            templates: self.templates.len() as u64,
            encoded_bytes: self.encoded_bytes(),
            raw_bytes: self.raw_bytes,
        }
    }

    /// True when no row can fall inside `[from, to)`.
    pub fn disjoint_from(&self, from: i64, to: i64) -> bool {
        self.n_rows == 0 || to <= self.min_unix || from > self.max_unix
    }

    /// Per-template row counts restricted to `[from, to)`, accumulated
    /// into `acc` keyed by pattern. When the range covers the whole
    /// segment this is pure header arithmetic — **no block is
    /// decompressed**; a partial overlap decodes only the template-id and
    /// timestamp columns.
    pub fn count_rows_by_template(
        &self,
        from: i64,
        to: i64,
        acc: &mut std::collections::BTreeMap<String, u64>,
    ) {
        if self.disjoint_from(from, to) {
            return;
        }
        if from <= self.min_unix && self.max_unix < to {
            for e in &self.templates {
                *acc.entry(e.pattern.clone()).or_default() += e.rows;
            }
            return;
        }
        let tids = decompress_block(&self.template_ids).expect("segment template-id column");
        let tss = decompress_block(&self.timestamps).expect("segment timestamp column");
        let (mut tp, mut sp) = (0usize, 0usize);
        let mut prev_ts = 0i64;
        for _ in 0..self.n_rows {
            let tid = get_varint(&tids, &mut tp).expect("template id") as usize;
            let ts = prev_ts.wrapping_add(unzigzag(get_varint(&tss, &mut sp).expect("timestamp")));
            prev_ts = ts;
            if ts >= from && ts < to {
                *acc.entry(self.templates[tid].pattern.clone()).or_default() += 1;
            }
        }
    }

    /// Decode every row, in insert order — the lossless inverse of
    /// [`Segment::build`].
    pub fn decode_all(&self) -> Vec<LogRecord> {
        let mut out = Vec::with_capacity(self.n_rows);
        self.scan_filtered(|_| true, |r| out.push(r.clone()));
        out
    }

    /// Run `f` over every decoded row whose timestamp is in `[from, to)`,
    /// in insert order.
    pub fn scan_range<F: FnMut(&LogRecord)>(&self, from: i64, to: i64, mut f: F) {
        if self.disjoint_from(from, to) {
            return;
        }
        self.scan_filtered(
            |_| true,
            |r| {
                if r.unix_seconds >= from && r.unix_seconds < to {
                    f(r);
                }
            },
        );
    }

    /// Run `f` over decoded rows whose template id passes `keep`. Rows of
    /// excluded templates are skipped cheaply: their variable columns are
    /// never decompressed (the row-ordered metadata columns still stream
    /// past, since they are shared).
    pub fn scan_filtered<K, F>(&self, keep: K, mut f: F)
    where
        K: Fn(usize) -> bool,
        F: FnMut(&LogRecord),
    {
        if self.n_rows == 0 {
            return;
        }
        let tids = decompress_block(&self.template_ids).expect("segment template-id column");
        let tss = decompress_block(&self.timestamps).expect("segment timestamp column");
        let rids = decompress_block(&self.record_ids).expect("segment record-id column");
        let nodes = decompress_block(&self.nodes).expect("segment node column");
        let apps = decompress_block(&self.apps).expect("segment app column");
        let flags = decompress_block(&self.flags).expect("segment flags column");
        let kept: Vec<bool> = (0..self.templates.len()).map(&keep).collect();
        // Decode a template's variable columns only if it is kept and
        // actually has variables.
        let mut var_cols: Vec<Option<Vec<String>>> = vec![None; self.var_blocks.len()];
        for (t, e) in self.templates.iter().enumerate() {
            if !kept[t] {
                continue;
            }
            let base = self.var_block_offsets[t];
            for slot in 0..e.n_vars {
                let raw =
                    decompress_block(&self.var_blocks[base + slot]).expect("segment var column");
                let mut pos = 0usize;
                let mut vals = Vec::with_capacity(e.rows as usize);
                while pos < raw.len() {
                    vals.push(get_str(&raw, &mut pos).expect("segment var value"));
                }
                var_cols[base + slot] = Some(vals);
            }
        }

        let (mut tp, mut sp, mut ip, mut np, mut ap) = (0usize, 0usize, 0usize, 0usize, 0usize);
        let mut prev_ts = 0i64;
        let mut prev_id = 0i64;
        // Every kept row needs its variable *occurrence index*, which is
        // the count of earlier rows of the same template — so excluded
        // templates still advance their cursors.
        let mut row_of_template: Vec<usize> = vec![0; self.templates.len()];
        let mut scratch_vars: Vec<String> = Vec::new();
        for row in 0..self.n_rows {
            let tid = get_varint(&tids, &mut tp).expect("template id") as usize;
            let ts = prev_ts.wrapping_add(unzigzag(get_varint(&tss, &mut sp).expect("timestamp")));
            prev_ts = ts;
            let id = prev_id.wrapping_add(unzigzag(get_varint(&rids, &mut ip).expect("record id")));
            prev_id = id;
            let node = get_varint(&nodes, &mut np).expect("node id") as usize;
            let app = get_varint(&apps, &mut ap).expect("app id") as usize;
            let (sev, fac, cat) = (flags[row * 3], flags[row * 3 + 1], flags[row * 3 + 2]);
            let occurrence = row_of_template[tid];
            row_of_template[tid] += 1;
            if !kept[tid] {
                continue;
            }
            let e = &self.templates[tid];
            scratch_vars.clear();
            let base = self.var_block_offsets[tid];
            for slot in 0..e.n_vars {
                let col = var_cols[base + slot]
                    .as_ref()
                    .expect("kept template column");
                scratch_vars.push(col[occurrence].clone());
            }
            let record = LogRecord {
                id: id as u64,
                unix_seconds: ts,
                node: self.strings[node].clone(),
                app: self.strings[app].clone(),
                severity: Severity::from_code(sev).expect("stored severity code"),
                facility: Facility::from_code(fac).expect("stored facility code"),
                message: e.template.reconstruct(&scratch_vars),
                category: if cat != 0xff {
                    Category::from_index(cat as usize)
                } else {
                    None
                },
            };
            f(&record);
        }
    }

    /// Decode only the rows of template `template_idx` (dictionary
    /// order), via [`Segment::scan_filtered`].
    pub fn template_scan<F: FnMut(&LogRecord)>(&self, template_idx: usize, f: F) {
        self.scan_filtered(|t| t == template_idx, f);
    }

    /// The variable values of one `(template, slot)` column, row order.
    /// Decompresses exactly that one block. Returns `None` for an
    /// out-of-range template or slot.
    pub fn variable_values(&self, template_idx: usize, slot: usize) -> Option<Vec<String>> {
        let e = self.templates.get(template_idx)?;
        if slot >= e.n_vars {
            return None;
        }
        let raw = decompress_block(&self.var_blocks[self.var_block_offsets[template_idx] + slot])?;
        let mut pos = 0usize;
        let mut vals = Vec::with_capacity(e.rows as usize);
        while pos < raw.len() {
            vals.push(get_str(&raw, &mut pos)?);
        }
        Some(vals)
    }

    // ------------------------------------------------------ serialization

    /// Serialize the whole segment to a self-contained byte buffer
    /// (magic, header, dictionaries, compressed blocks).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"HSSG");
        put_varint(&mut out, 1); // format version
        put_varint(&mut out, self.n_rows as u64);
        put_varint(&mut out, zigzag(self.min_unix));
        put_varint(&mut out, zigzag(self.max_unix));
        put_varint(&mut out, self.raw_bytes);
        put_varint(&mut out, self.templates.len() as u64);
        for e in &self.templates {
            put_varint(&mut out, e.rows);
            put_varint(&mut out, e.template.tokens().len() as u64);
            for t in e.template.tokens() {
                match t {
                    TemplateToken::Const(w) => {
                        out.push(0);
                        put_str(&mut out, w);
                    }
                    TemplateToken::Var => out.push(1),
                }
            }
        }
        put_varint(&mut out, self.strings.len() as u64);
        for s in &self.strings {
            put_str(&mut out, s);
        }
        let put_block = |out: &mut Vec<u8>, block: &[u8]| {
            put_varint(out, block.len() as u64);
            out.extend_from_slice(block);
        };
        put_block(&mut out, &self.template_ids);
        put_block(&mut out, &self.timestamps);
        put_block(&mut out, &self.record_ids);
        put_block(&mut out, &self.nodes);
        put_block(&mut out, &self.apps);
        put_block(&mut out, &self.flags);
        put_varint(&mut out, self.var_blocks.len() as u64);
        for b in &self.var_blocks {
            put_block(&mut out, b);
        }
        out
    }

    /// Parse a [`Segment::to_bytes`] buffer. Returns `None` on any
    /// structural corruption.
    pub fn from_bytes(buf: &[u8]) -> Option<Segment> {
        let mut pos = 0usize;
        if buf.get(..4)? != b"HSSG" {
            return None;
        }
        pos += 4;
        if get_varint(buf, &mut pos)? != 1 {
            return None;
        }
        let n_rows = get_varint(buf, &mut pos)? as usize;
        let min_unix = unzigzag(get_varint(buf, &mut pos)?);
        let max_unix = unzigzag(get_varint(buf, &mut pos)?);
        let raw_bytes = get_varint(buf, &mut pos)?;
        let n_templates = get_varint(buf, &mut pos)? as usize;
        let mut templates = Vec::with_capacity(n_templates);
        let mut var_block_offsets = Vec::with_capacity(n_templates);
        let mut total_vars = 0usize;
        for _ in 0..n_templates {
            let rows = get_varint(buf, &mut pos)?;
            let n_tokens = get_varint(buf, &mut pos)? as usize;
            let mut tokens = Vec::with_capacity(n_tokens);
            for _ in 0..n_tokens {
                match *buf.get(pos)? {
                    0 => {
                        pos += 1;
                        tokens.push(TemplateToken::Const(get_str(buf, &mut pos)?));
                    }
                    1 => {
                        pos += 1;
                        tokens.push(TemplateToken::Var);
                    }
                    _ => return None,
                }
            }
            let template = Template::from_tokens(tokens);
            var_block_offsets.push(total_vars);
            total_vars += template.n_vars();
            templates.push(TemplateEntry {
                pattern: template.pattern(),
                n_vars: template.n_vars(),
                rows,
                template,
            });
        }
        let n_strings = get_varint(buf, &mut pos)? as usize;
        let mut strings = Vec::with_capacity(n_strings);
        for _ in 0..n_strings {
            strings.push(get_str(buf, &mut pos)?);
        }
        let get_block = |pos: &mut usize| -> Option<Vec<u8>> {
            let len = get_varint(buf, pos)? as usize;
            let bytes = buf.get(*pos..*pos + len)?;
            *pos += len;
            Some(bytes.to_vec())
        };
        let template_ids = get_block(&mut pos)?;
        let timestamps = get_block(&mut pos)?;
        let record_ids = get_block(&mut pos)?;
        let nodes = get_block(&mut pos)?;
        let apps = get_block(&mut pos)?;
        let flags = get_block(&mut pos)?;
        let n_var_blocks = get_varint(buf, &mut pos)? as usize;
        if n_var_blocks != total_vars {
            return None;
        }
        let mut var_blocks = Vec::with_capacity(n_var_blocks);
        for _ in 0..n_var_blocks {
            var_blocks.push(get_block(&mut pos)?);
        }
        Some(Segment {
            n_rows,
            min_unix,
            max_unix,
            templates,
            template_ids,
            timestamps,
            record_ids,
            nodes,
            apps,
            flags,
            var_blocks,
            var_block_offsets,
            strings,
            raw_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, t: i64, node: &str, message: &str) -> LogRecord {
        LogRecord {
            id,
            unix_seconds: t,
            node: node.to_string(),
            app: "kernel".to_string(),
            severity: Severity::Warning,
            facility: Facility::Kern,
            message: message.to_string(),
            category: id.is_multiple_of(2).then_some(Category::ThermalIssue),
        }
    }

    fn sample_records(n: usize) -> Vec<LogRecord> {
        (0..n)
            .map(|i| {
                rec(
                    i as u64,
                    1_000 + i as i64,
                    &format!("cn{:02}", i % 7),
                    &format!(
                        "temperature {}C on node cn{:02} above threshold",
                        70 + i % 30,
                        i % 7
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn lz_roundtrip_basic() {
        for input in [
            b"".to_vec(),
            b"abc".to_vec(),
            b"aaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            b"abcabcabcabcabcabcabcabc".to_vec(),
            (0u8..=255).collect::<Vec<u8>>(),
            b"the quick brown fox jumps over the lazy dog the quick brown fox".to_vec(),
        ] {
            let compressed = compress_block(&input);
            assert_eq!(decompress_block(&compressed).as_deref(), Some(&input[..]));
        }
    }

    #[test]
    fn lz_compresses_repetitive_input() {
        let input = b"temperature 91C on node cn01\n".repeat(200);
        let compressed = compress_block(&input);
        assert!(
            compressed.len() * 10 < input.len(),
            "repetitive input should shrink >10x: {} -> {}",
            input.len(),
            compressed.len()
        );
    }

    #[test]
    fn lz_rejects_corrupt_blocks() {
        let good = compress_block(b"hello hello hello hello");
        assert!(decompress_block(&good[..good.len() - 1]).is_none());
        let mut bad_op = good.clone();
        // First op byte follows the uncompressed-length varint (1 byte).
        bad_op[1] = 7;
        assert!(decompress_block(&bad_op).is_none());
    }

    #[test]
    fn segment_roundtrip_is_lossless() {
        let records = sample_records(500);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        assert_eq!(segment.n_rows(), 500);
        assert_eq!(segment.decode_all(), records);
    }

    #[test]
    fn segment_compresses() {
        let records = sample_records(2000);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        let stats = segment.stats();
        assert!(
            stats.encoded_bytes * 5 <= stats.raw_bytes,
            "expected >= 5x compression: raw {} encoded {}",
            stats.raw_bytes,
            stats.encoded_bytes
        );
    }

    #[test]
    fn count_by_template_full_range_matches_header() {
        let records = sample_records(300);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        let mut counts = std::collections::BTreeMap::new();
        segment.count_rows_by_template(i64::MIN, i64::MAX, &mut counts);
        assert_eq!(counts.values().sum::<u64>(), 300);
        // Oracle: decode and count.
        let mut oracle: std::collections::BTreeMap<String, u64> = Default::default();
        let patterns = segment
            .template_patterns()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>();
        let rows = segment.rows_per_template();
        for (p, r) in patterns.iter().zip(rows) {
            *oracle.entry(p.clone()).or_default() += r;
        }
        assert_eq!(counts, oracle);
    }

    #[test]
    fn count_by_template_partial_range_decodes_columns() {
        let records = sample_records(100);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        let mut counts = std::collections::BTreeMap::new();
        // Rows 0..50 have timestamps 1000..1050.
        segment.count_rows_by_template(1_000, 1_050, &mut counts);
        assert_eq!(counts.values().sum::<u64>(), 50);
    }

    #[test]
    fn variable_values_reads_one_slot() {
        let records = sample_records(50);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        // One template: "temperature <*> on node <*> above threshold".
        assert_eq!(segment.template_patterns().len(), 1);
        let temps = segment.variable_values(0, 0).expect("slot 0");
        assert_eq!(temps.len(), 50);
        assert_eq!(temps[0], "70C");
        assert!(segment.variable_values(0, 99).is_none());
        assert!(segment.variable_values(9, 0).is_none());
    }

    #[test]
    fn template_scan_filters_rows() {
        let mut records = sample_records(40);
        for i in 0..10u64 {
            records.push(rec(
                100 + i,
                2_000 + i as i64,
                "cn99",
                &format!("usb device {i} attached"),
            ));
        }
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        let patterns = segment.template_patterns();
        let usb = patterns
            .iter()
            .position(|p| p.starts_with("usb device"))
            .expect("usb template mined");
        let mut n = 0;
        segment.template_scan(usb, |r| {
            assert!(r.message.starts_with("usb device"));
            n += 1;
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn scan_range_is_half_open() {
        let records = sample_records(10);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        let mut seen = 0;
        segment.scan_range(1_000, 1_005, |_| seen += 1);
        assert_eq!(seen, 5);
    }

    #[test]
    fn serialization_roundtrip() {
        let records = sample_records(200);
        let segment = Segment::build(&records, TemplateMiner::DEFAULT_THRESHOLD);
        let bytes = segment.to_bytes();
        let back = Segment::from_bytes(&bytes).expect("parse serialized segment");
        assert_eq!(back.decode_all(), records);
        assert_eq!(back.rows_per_template(), segment.rows_per_template());
        assert!(Segment::from_bytes(&bytes[..bytes.len() / 2]).is_none());
        assert!(Segment::from_bytes(b"nope").is_none());
    }

    #[test]
    fn empty_segment() {
        let segment = Segment::build(&[], TemplateMiner::DEFAULT_THRESHOLD);
        assert_eq!(segment.n_rows(), 0);
        assert!(segment.decode_all().is_empty());
        let mut counts = std::collections::BTreeMap::new();
        segment.count_rows_by_template(i64::MIN, i64::MAX, &mut counts);
        assert!(counts.is_empty());
        let back = Segment::from_bytes(&segment.to_bytes()).expect("empty roundtrip");
        assert_eq!(back.n_rows(), 0);
    }
}
