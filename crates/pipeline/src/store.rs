//! Time-sharded inverted-index log store — the OpenSearch stand-in.
//!
//! Records land in fixed-width time shards; each shard keeps its documents
//! plus an inverted index token → local doc offsets. Shards take a
//! `parking_lot::RwLock` each, so concurrent ingest threads writing to
//! different shards don't contend and queries proceed under read locks.
//!
//! Time sharding alone does not help the *live* path: a real-time stream
//! lands every record in the current hour, so N pipeline shards writing
//! concurrently would all serialize on one time shard's write lock. Each
//! time slot is therefore split into [`LogStore::with_lanes`] independent
//! **lanes** — one `RwLock<Shard>` each — and a pipeline shard passes its
//! own index to [`LogStore::insert_batch_affine`] so its batches take a
//! lane lock no other shard touches (store-shard affinity). Queries and
//! retention see the union of lanes; a single-lane store (the default) is
//! exactly the old layout.

use crate::record::LogRecord;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Width of one time shard, seconds (hourly, like a rotating index).
pub const DEFAULT_SHARD_SECONDS: i64 = 3600;

#[derive(Debug, Default)]
struct Shard {
    docs: Vec<LogRecord>,
    /// token → offsets into `docs`, ascending.
    index: HashMap<String, Vec<u32>>,
}

impl Shard {
    fn insert(&mut self, record: LogRecord) {
        let offset = self.docs.len() as u32;
        // Stream tokens and look the index up by `&str`: a token String is
        // allocated only the first time a term is ever seen, not once per
        // occurrence. Indexing is on the hot ingest path in front of the
        // classifier, so per-token allocations dominate otherwise.
        let index = &mut self.index;
        textproc::Tokenizer::default()
            .tokenize_each(&record.message, |token| Self::post(index, token, offset));
        // Node and app are searchable terms too (Grafana-style filters).
        Self::post(index, &record.node, offset);
        Self::post(index, &record.app, offset);
        self.docs.push(record);
    }

    fn post(index: &mut HashMap<String, Vec<u32>>, token: &str, offset: u32) {
        if let Some(postings) = index.get_mut(token) {
            postings.push(offset);
        } else {
            index.insert(token.to_string(), vec![offset]);
        }
    }

    /// Offsets matching all `terms` (AND semantics); all offsets when
    /// `terms` is empty.
    fn matching(&self, terms: &[String]) -> Vec<u32> {
        if terms.is_empty() {
            return (0..self.docs.len() as u32).collect();
        }
        let mut postings: Vec<&Vec<u32>> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.index.get(t) {
                Some(p) => postings.push(p),
                None => return Vec::new(),
            }
        }
        // Intersect starting from the rarest posting list.
        postings.sort_by_key(|p| p.len());
        let mut result: Vec<u32> = postings[0].clone();
        result.dedup();
        for p in &postings[1..] {
            result.retain(|o| p.binary_search(o).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }
}

/// Registered instrument handles for the insert path, present once
/// [`LogStore::attach_telemetry`] has run. Un-attached stores pay one
/// read-lock check per insert call and nothing else.
#[derive(Debug)]
struct StoreMetrics {
    records: Arc<obs::Counter>,
    shards: Arc<obs::Gauge>,
    insert_us: Arc<obs::Histogram>,
}

/// One time window: `lanes` independently locked shards whose union is
/// the window's contents.
type TimeSlot = Vec<RwLock<Shard>>;

/// The sharded store.
#[derive(Debug)]
pub struct LogStore {
    shards: RwLock<BTreeMap<i64, TimeSlot>>,
    shard_seconds: i64,
    lanes: usize,
    next_id: AtomicU64,
    metrics: RwLock<Option<StoreMetrics>>,
}

impl Default for LogStore {
    fn default() -> LogStore {
        LogStore::new()
    }
}

impl LogStore {
    /// A store with hourly shards and a single lane.
    pub fn new() -> LogStore {
        LogStore::with_config(DEFAULT_SHARD_SECONDS, 1)
    }

    /// A store with custom shard width and a single lane.
    pub fn with_shard_seconds(shard_seconds: i64) -> LogStore {
        LogStore::with_config(shard_seconds, 1)
    }

    /// A store with hourly shards split into `lanes` write lanes — one per
    /// pipeline shard, so concurrent live writers never share a lock.
    pub fn with_lanes(lanes: usize) -> LogStore {
        LogStore::with_config(DEFAULT_SHARD_SECONDS, lanes)
    }

    /// A store with custom shard width and lane count.
    pub fn with_config(shard_seconds: i64, lanes: usize) -> LogStore {
        LogStore {
            shards: RwLock::new(BTreeMap::new()),
            shard_seconds: shard_seconds.max(1),
            lanes: lanes.max(1),
            next_id: AtomicU64::new(0),
            metrics: RwLock::new(None),
        }
    }

    /// Write lanes per time slot.
    pub fn n_lanes(&self) -> usize {
        self.lanes
    }

    fn new_slot(&self) -> TimeSlot {
        (0..self.lanes)
            .map(|_| RwLock::new(Shard::default()))
            .collect()
    }

    /// Register the store's instruments (record counter, shard gauge,
    /// insert-stage latency) on a shared telemetry registry. Records
    /// already stored are carried onto the counter so it always matches
    /// [`LogStore::len`]; re-attaching never double-counts.
    pub fn attach_telemetry(&self, registry: &obs::Registry) {
        let mut slot = self.metrics.write();
        let metrics = StoreMetrics {
            records: registry.counter(
                "hetsyslog_store_records_total",
                "Records inserted into the time-sharded store",
                &[],
            ),
            shards: registry.gauge("hetsyslog_store_shards", "Open time shards", &[]),
            insert_us: registry.histogram(
                "hetsyslog_stage_duration_us",
                "Per-stage batch processing time in microseconds",
                &[("stage", "store_insert")],
            ),
        };
        if slot.is_none() {
            metrics.records.add(self.len() as u64);
        }
        metrics.shards.set(self.n_shards() as i64);
        *slot = Some(metrics);
    }

    /// Allocate the next document id.
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_key(&self, unix_seconds: i64) -> i64 {
        unix_seconds.div_euclid(self.shard_seconds)
    }

    /// Insert a record (its `id` should come from [`LogStore::allocate_id`]).
    /// Multi-lane stores spread scalar inserts by record id.
    pub fn insert(&self, record: LogRecord) {
        let key = self.shard_key(record.unix_seconds);
        let lane = (record.id as usize) % self.lanes;
        // Fast path: slot exists, take the read lock on the map only.
        {
            let shards = self.shards.read();
            if let Some(slot) = shards.get(&key) {
                slot[lane].write().insert(record);
                if let Some(m) = self.metrics.read().as_ref() {
                    m.records.inc();
                }
                return;
            }
        }
        {
            let mut shards = self.shards.write();
            shards
                .entry(key)
                .or_insert_with(|| self.new_slot())
                .get(lane)
                .expect("lane within slot")
                .write()
                .insert(record);
        }
        if let Some(m) = self.metrics.read().as_ref() {
            m.records.inc();
            m.shards.set(self.n_shards() as i64);
        }
    }

    /// Insert a batch of records, acquiring each time shard's write lock
    /// once per contiguous run instead of once per record. Records from a
    /// live stream land overwhelmingly in the current shard, so a batch of
    /// N costs ~1 lock acquisition instead of N. Multi-lane stores put
    /// un-hinted batches in lane 0; sharded pipeline workers use
    /// [`LogStore::insert_batch_affine`] instead.
    pub fn insert_batch(&self, records: impl IntoIterator<Item = LogRecord>) {
        self.insert_batch_affine(0, records)
    }

    /// [`LogStore::insert_batch`] with store-shard affinity: the whole
    /// batch lands in lane `lane_hint % lanes` of each time slot it spans.
    /// Pipeline shard `k` passing `lane_hint = k` into a store with as
    /// many lanes as shards makes the batched insert a single-shard fast
    /// path — its lane lock is never contended by another pipeline shard,
    /// only by readers.
    pub fn insert_batch_affine(
        &self,
        lane_hint: usize,
        records: impl IntoIterator<Item = LogRecord>,
    ) {
        let lane = lane_hint % self.lanes;
        let attached = self.metrics.read().is_some();
        let start = attached.then(Instant::now);
        let mut inserted: u64 = 0;
        let mut records = records.into_iter().peekable();
        while let Some(first) = records.next() {
            let key = self.shard_key(first.unix_seconds);
            // Ensure the slot exists, then hold one lane's write lock for
            // the whole run of records mapping to the same key.
            loop {
                let shards = self.shards.read();
                let Some(slot) = shards.get(&key) else {
                    drop(shards);
                    self.shards
                        .write()
                        .entry(key)
                        .or_insert_with(|| self.new_slot());
                    continue;
                };
                let mut shard = slot[lane].write();
                shard.insert(first);
                inserted += 1;
                while records
                    .peek()
                    .is_some_and(|r| self.shard_key(r.unix_seconds) == key)
                {
                    shard.insert(records.next().expect("peeked"));
                    inserted += 1;
                }
                break;
            }
        }
        if attached {
            if let Some(m) = self.metrics.read().as_ref() {
                m.records.add(inserted);
                m.shards.set(self.n_shards() as i64);
                if let Some(start) = start {
                    m.insert_us.record_duration_us(start.elapsed());
                }
            }
        }
    }

    /// Total stored records.
    pub fn len(&self) -> usize {
        self.shards
            .read()
            .values()
            .flat_map(|slot| slot.iter())
            .map(|s| s.read().docs.len())
            .sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of time shards.
    pub fn n_shards(&self) -> usize {
        self.shards.read().len()
    }

    /// Run `f` over every record in `[from, to)` matching all `terms`,
    /// in shard order. The callback form avoids cloning the result set.
    pub fn scan<F: FnMut(&LogRecord)>(&self, from: i64, to: i64, terms: &[String], mut f: F) {
        let (k_from, k_to) = (self.shard_key(from), self.shard_key(to - 1));
        let shards = self.shards.read();
        for (_, slot) in shards.range(k_from..=k_to) {
            for shard in slot {
                let shard = shard.read();
                for offset in shard.matching(terms) {
                    let rec = &shard.docs[offset as usize];
                    if rec.unix_seconds >= from && rec.unix_seconds < to {
                        f(rec);
                    }
                }
            }
        }
    }

    /// Collect matching records (convenience over [`LogStore::scan`]).
    pub fn search(&self, from: i64, to: i64, terms: &[String]) -> Vec<LogRecord> {
        let mut out = Vec::new();
        self.scan(from, to, terms, |r| out.push(r.clone()));
        out
    }

    /// Drop whole shards older than `cutoff_unix_seconds` — the index
    /// lifecycle policy that let Tivan "store and search over thirty
    /// million log records a month" on eight servers without growing
    /// forever. Returns the number of records evicted.
    ///
    /// Eviction is shard-granular (a shard is dropped only when its whole
    /// window is older than the cutoff), matching time-rotated indices.
    pub fn evict_before(&self, cutoff_unix_seconds: i64) -> u64 {
        let cutoff_shard = self.shard_key(cutoff_unix_seconds);
        let mut shards = self.shards.write();
        let keep = shards.split_off(&cutoff_shard);
        let evicted: u64 = shards
            .values()
            .flat_map(|slot| slot.iter())
            .map(|s| s.read().docs.len() as u64)
            .sum();
        *shards = keep;
        evicted
    }

    /// Snapshot every record as JSON lines, in shard order — the
    /// OpenSearch-snapshot equivalent.
    pub fn export_jsonl<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<u64> {
        let mut count = 0u64;
        let shards = self.shards.read();
        for shard in shards.values().flat_map(|slot| slot.iter()) {
            let shard = shard.read();
            for record in &shard.docs {
                serde_json::to_writer(&mut writer, record).map_err(std::io::Error::other)?;
                writer.write_all(b"\n")?;
                count += 1;
            }
        }
        Ok(count)
    }

    /// Rebuild a store (indexes included) from a JSONL snapshot. Malformed
    /// lines are skipped and counted in the second return value.
    pub fn import_jsonl<R: std::io::BufRead>(
        reader: R,
        shard_seconds: i64,
    ) -> std::io::Result<(LogStore, u64)> {
        let store = LogStore::with_shard_seconds(shard_seconds);
        let mut skipped = 0u64;
        let mut max_id = 0u64;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match LogRecord::from_json(&line) {
                Ok(record) => {
                    max_id = max_id.max(record.id + 1);
                    store.insert(record);
                }
                Err(_) => skipped += 1,
            }
        }
        store.next_id.store(max_id, Ordering::Relaxed);
        Ok((store, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_core::Category;
    use syslog_model::{Facility, Severity};

    fn rec(store: &LogStore, t: i64, node: &str, message: &str) -> LogRecord {
        LogRecord {
            id: store.allocate_id(),
            unix_seconds: t,
            node: node.to_string(),
            app: "kernel".to_string(),
            severity: Severity::Warning,
            facility: Facility::Kern,
            message: message.to_string(),
            category: Some(Category::ThermalIssue),
        }
    }

    #[test]
    fn insert_and_search_terms() {
        let store = LogStore::new();
        store.insert(rec(&store, 100, "cn01", "cpu temperature above threshold"));
        store.insert(rec(&store, 200, "cn02", "usb device attached"));
        store.insert(rec(&store, 300, "cn01", "cpu throttled again"));

        let hits = store.search(0, 1000, &["cpu".to_string()]);
        assert_eq!(hits.len(), 2);
        let hits = store.search(0, 1000, &["cpu".to_string(), "temperature".to_string()]);
        assert_eq!(hits.len(), 1);
        let hits = store.search(0, 1000, &["nonexistent".to_string()]);
        assert!(hits.is_empty());
    }

    #[test]
    fn node_and_app_are_searchable() {
        let store = LogStore::new();
        store.insert(rec(&store, 50, "cn07", "some message"));
        assert_eq!(store.search(0, 100, &["cn07".to_string()]).len(), 1);
        assert_eq!(store.search(0, 100, &["kernel".to_string()]).len(), 1);
    }

    #[test]
    fn time_range_is_half_open() {
        let store = LogStore::new();
        store.insert(rec(&store, 100, "a", "x marker"));
        store.insert(rec(&store, 200, "b", "x marker"));
        assert_eq!(store.search(100, 200, &["marker".to_string()]).len(), 1);
        assert_eq!(store.search(100, 201, &["marker".to_string()]).len(), 2);
    }

    #[test]
    fn sharding_by_time() {
        let store = LogStore::with_shard_seconds(60);
        for i in 0..10 {
            store.insert(rec(&store, i * 60, "n", "m"));
        }
        assert_eq!(store.n_shards(), 10);
        assert_eq!(store.len(), 10);
    }

    #[test]
    fn negative_times_shard_correctly() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, -30, "n", "early marker"));
        assert_eq!(store.search(-100, 0, &["marker".to_string()]).len(), 1);
    }

    #[test]
    fn concurrent_ingest_is_consistent() {
        let store = std::sync::Arc::new(LogStore::with_shard_seconds(10));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    let r = LogRecord {
                        id: store.allocate_id(),
                        unix_seconds: (t * 250 + i) as i64,
                        node: format!("cn{t}"),
                        app: "kernel".to_string(),
                        severity: Severity::Informational,
                        facility: Facility::Kern,
                        message: format!("msg {i} shared token"),
                        category: None,
                    };
                    store.insert(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        assert_eq!(store.search(0, 2000, &["shared".to_string()]).len(), 1000);
    }

    #[test]
    fn retention_evicts_old_shards_only() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, 10, "a", "ancient marker"));
        store.insert(rec(&store, 70, "b", "old marker"));
        store.insert(rec(&store, 130, "c", "fresh marker"));
        assert_eq!(store.n_shards(), 3);
        // Cutoff inside the second shard: only the first is fully older.
        let evicted = store.evict_before(90);
        assert_eq!(evicted, 1);
        assert_eq!(store.len(), 2);
        assert!(store.search(0, 200, &["ancient".to_string()]).is_empty());
        assert_eq!(store.search(0, 200, &["old".to_string()]).len(), 1);
        // Shard-aligned cutoff evicts the second too.
        assert_eq!(store.evict_before(120), 1);
        assert_eq!(store.len(), 1);
        // Nothing left to evict below the cutoff.
        assert_eq!(store.evict_before(120), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_records_and_index() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, 10, "cn01", "cpu temperature high"));
        store.insert(rec(&store, 70, "cn02", "usb device attached"));
        let mut snapshot = Vec::new();
        let exported = store.export_jsonl(&mut snapshot).unwrap();
        assert_eq!(exported, 2);

        let (restored, skipped) =
            LogStore::import_jsonl(std::io::BufReader::new(&snapshot[..]), 60).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(restored.len(), 2);
        // The inverted index is rebuilt, not just the documents.
        assert_eq!(
            restored.search(0, 100, &["temperature".to_string()]).len(),
            1
        );
        // Id allocation continues past the snapshot's ids.
        assert!(restored.allocate_id() >= 2);
    }

    #[test]
    fn import_skips_malformed_lines() {
        let snapshot = b"{not json}\n\n";
        let (restored, skipped) =
            LogStore::import_jsonl(std::io::BufReader::new(&snapshot[..]), 60).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn lanes_are_query_transparent() {
        let store = LogStore::with_config(60, 4);
        assert_eq!(store.n_lanes(), 4);
        // Affine batches from 4 "pipeline shards" into distinct lanes of
        // the same time slot; queries must see the union.
        for lane in 0..4usize {
            let batch: Vec<LogRecord> = (0..5)
                .map(|i| {
                    rec(
                        &store,
                        30,
                        &format!("cn{lane}"),
                        &format!("lane marker {i}"),
                    )
                })
                .collect();
            store.insert_batch_affine(lane, batch);
        }
        assert_eq!(store.len(), 20);
        assert_eq!(store.n_shards(), 1, "one time slot despite 4 lanes");
        assert_eq!(store.search(0, 60, &["marker".to_string()]).len(), 20);
        assert_eq!(store.search(0, 60, &["cn2".to_string()]).len(), 5);
        // Retention and export see every lane.
        let mut out = Vec::new();
        assert_eq!(store.export_jsonl(&mut out).unwrap(), 20);
        assert_eq!(store.evict_before(60), 20);
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_affine_ingest_into_one_time_slot_is_consistent() {
        // The live-path shape: every writer hits the same time slot, each
        // pins its own lane, so writes proceed without shared-lock
        // serialization and nothing is lost or duplicated.
        let store = std::sync::Arc::new(LogStore::with_config(3600, 4));
        let mut handles = Vec::new();
        for lane in 0..4usize {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for chunk in 0..10 {
                    let batch: Vec<LogRecord> = (0..25)
                        .map(|i| {
                            let mut r = rec(
                                &store,
                                100,
                                &format!("cn{lane}"),
                                &format!("burst {chunk} msg {i} shared token"),
                            );
                            r.category = None;
                            r
                        })
                        .collect();
                    store.insert_batch_affine(lane, batch);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        assert_eq!(store.search(0, 3600, &["shared".to_string()]).len(), 1000);
    }

    #[test]
    fn duplicate_tokens_in_message_count_once() {
        let store = LogStore::new();
        store.insert(rec(&store, 1, "n", "cpu cpu cpu"));
        assert_eq!(store.search(0, 10, &["cpu".to_string()]).len(), 1);
    }
}
